//! Graph query languages and their TriAL* translations (Section 6.2).
//!
//! Builds a small property-graph, runs an RPQ, an NRE and a GXPath query
//! natively, and then runs their TriAL* translations over the triplestore
//! encoding `T_G`, demonstrating Theorem 7 / Corollary 2 on real data.
//! Finally it demonstrates the σ(·) encoding and why it loses information
//! (Proposition 1).
//!
//! Run with `cargo run -p trial-bench --example graph_queries`.

use trial_core::TriplestoreBuilder;
use trial_eval::evaluate;
use trial_graph::gxpath::{evaluate_path, NodeExpr, PathExpr};
use trial_graph::nre::{evaluate_nre, Nre};
use trial_graph::rpq::evaluate_rpq;
use trial_graph::sigma::sigma_encode;
use trial_graph::GraphDbBuilder;
use trial_graph::{graph_to_triplestore, nre_to_trial, path_to_trial, regex_to_trial, Regex};

fn main() {
    // A small collaboration graph.
    let mut b = GraphDbBuilder::new();
    b.edge("ada", "advises", "grace");
    b.edge("grace", "advises", "alan");
    b.edge("alan", "cites", "ada");
    b.edge("grace", "cites", "ada");
    b.edge("alan", "advises", "barbara");
    let graph = b.finish();
    let store = graph_to_triplestore(&graph);

    // RPQ: advised (transitively) by ada.
    let rpq = Regex::label("advises").plus();
    let native = evaluate_rpq(&graph, &rpq);
    let translated = evaluate(&regex_to_trial(&rpq), &store).unwrap();
    println!(
        "RPQ advises+ : {} pairs natively, {} via TriAL*",
        native.len(),
        translated.result.len()
    );
    assert_eq!(native.len(), translated.result.len());

    // NRE: advisees of someone who cites ada.
    let nre = Nre::label("cites").test().then(Nre::label("advises"));
    let native = evaluate_nre(&graph, &nre);
    let translated = evaluate(&nre_to_trial(&nre), &store).unwrap();
    println!(
        "NRE [cites]·advises : {} pairs natively, {} via TriAL*",
        native.len(),
        translated.result.len()
    );

    // GXPath with negation: pairs NOT related by advises*.
    let gx = PathExpr::label("advises").star().complement();
    let native = evaluate_path(&graph, &gx);
    let translated = evaluate(&path_to_trial(&gx), &store).unwrap();
    println!(
        "GXPath ~(advises*) : {} pairs natively, {} via TriAL*",
        native.len(),
        translated.result.len()
    );

    // A node expression: people who advise someone but are cited by no one.
    let phi = NodeExpr::exists(PathExpr::label("advises"))
        .and(NodeExpr::exists(PathExpr::inverse("cites")).not());
    let who: Vec<&str> = trial_graph::gxpath::evaluate_node(&graph, &phi)
        .into_iter()
        .map(|v| graph.node_name(v))
        .collect();
    println!("Advisors never cited: {who:?}");

    // The σ(·) encoding and its blind spot (Proposition 1).
    let mut b = TriplestoreBuilder::new();
    for (s, p, o) in [
        ("Edinburgh", "TrainOp1", "Manchester"),
        ("Newcastle", "TrainOp1", "London"),
        ("Edinburgh", "TrainOp3", "London"),
    ] {
        b.add_triple("E", s, p, o);
    }
    let d2 = b.finish();
    let mut b = d2.clone().into_builder();
    b.add_triple("E", "Edinburgh", "TrainOp1", "London");
    let d1 = b.finish();
    let g1 = sigma_encode(&d1, "E");
    let g2 = sigma_encode(&d2, "E");
    println!(
        "\nσ encodings: D1 has {} triples, D2 has {}, yet σ(D1) and σ(D2) both have {} edges — \
         the extra triple is invisible to any NRE over σ(·).",
        d1.triple_count(),
        d2.triple_count(),
        g1.edge_count()
    );
    assert_eq!(g1.edge_count(), g2.edge_count());
}
