//! Navigational RDF querying: why triple-based navigation matters.
//!
//! Replays the paper's motivating separation (Proposition 1 / Theorem 1) with
//! the native nSPARQL axis semantics, and shows what register automata add on
//! graphs with data (Proposition 6).
//!
//! Run with `cargo run -p trial-bench --example navigational_rdf`.

use trial_core::builder::queries;
use trial_eval::evaluate;
use trial_graph::nsparql::{evaluate_nsparql, sample_expressions};
use trial_graph::proposition1_documents;
use trial_graph::register::{distinct_values_expression, evaluate_rem, Cond, Rem};
use trial_graph::GraphDbBuilder;

fn main() {
    // --- Theorem 1: nSPARQL axes cannot express the query Q --------------
    let (d1, d2) = proposition1_documents();
    println!(
        "D1 has {} triples, D2 has {} (D2 lacks (Edinburgh, TrainOp1, London))",
        d1.triple_count(),
        d2.triple_count()
    );
    println!("\nnSPARQL axis expressions evaluated natively over the triples:");
    for (name, expr) in sample_expressions() {
        let on_d1 = evaluate_nsparql(&d1, "E", &expr).len();
        let on_d2 = evaluate_nsparql(&d2, "E", &expr).len();
        println!("  {name:<22} |D1| = {on_d1:<4} |D2| = {on_d2:<4} (identical answer sets)");
    }
    let q = queries::same_company_reachability("E");
    let q1 = evaluate(&q, &d1).expect("evaluation").result;
    let q2 = evaluate(&q, &d2).expect("evaluation").result;
    println!(
        "\nTriAL* query Q answers: {} on D1, {} on D2 — Q tells them apart,",
        q1.len(),
        q2.len()
    );
    println!("so no nSPARQL navigation over the σ(·) encoding can express Q (Theorem 1).");

    // --- Proposition 6: regular expressions with memory ------------------
    // A small itinerary graph where each stop carries a price band as data.
    let mut b = GraphDbBuilder::new();
    for (name, band) in [
        ("Edinburgh", 1i64),
        ("York", 2),
        ("London", 3),
        ("Paris", 2),
        ("Brussels", 1),
    ] {
        b.node_with_value(name, band);
    }
    for (s, t) in [
        ("Edinburgh", "York"),
        ("York", "London"),
        ("London", "Paris"),
        ("Paris", "Brussels"),
    ] {
        b.edge(s, "train", t);
    }
    let graph = b.finish();

    // "A trip whose next two hops stay in a *different* price band than the
    // origin": ↓x1 train[x1≠] train[x1≠].
    let changing_band = Rem::Down(
        vec![0],
        Box::new(
            Rem::label_if("train", Cond::NeqReg(0)).then(Rem::label_if("train", Cond::NeqReg(0))),
        ),
    );
    println!("\nRegister-automaton query ↓x1 train[x1≠] train[x1≠] (two hops, both leaving the");
    println!("origin's price band):");
    for (from, to) in evaluate_rem(&graph, &changing_band) {
        println!("  {} -> {}", graph.node_name(from), graph.node_name(to));
    }

    // The e_n family from Proposition 6: a path visiting n distinct bands.
    for n in [3usize, 4] {
        let e = distinct_values_expression("train", n);
        println!(
            "e_{n} (path through {n} distinct price bands) non-empty: {}",
            !evaluate_rem(&graph, &e).is_empty()
        );
    }
    println!("\nProperties like e_7 are beyond TriAL*, while TriAL*'s complement queries are");
    println!("beyond register automata — the two formalisms are incomparable (Proposition 6).");
}
