//! The social-network scenario of Section 2.3: users and connections are all
//! objects; connections carry `(type, created)` data in their ρ-value.
//!
//! The example answers two questions with TriAL:
//! 1. who is connected to whom through a chain of connections of the same
//!    kind (created together), and
//! 2. which pairs of users share a "rival" connection to the same person.
//!
//! Run with `cargo run -p trial-bench --example social_network`.

use trial_core::{output, Conditions, Expr, Pos};
use trial_eval::evaluate;
use trial_workloads::social::mario_network;
use trial_workloads::{social_network, SocialConfig};

fn main() {
    // The exact network from the paper (Mario, Luigi, Donkey Kong).
    let store = mario_network();
    println!("Paper network: {store}");

    // Connections with identical data values (same type and creation date):
    // (x, c, y) ✶ (x', c', y') with ρ(c) = ρ(c') and y = x' — i.e. a
    // friend-of-a-friend through identically-labelled connections.
    let fof = Expr::rel("E").join(
        Expr::rel("E"),
        output(Pos::L1, Pos::L2, Pos::R3),
        Conditions::new()
            .obj_eq(Pos::L3, Pos::R1)
            .data_eq(Pos::L2, Pos::R2),
    );
    println!("Friend-of-friend through equal connections: {fof}");
    let result = evaluate(&fof, &store).expect("evaluates");
    for t in result.result.iter() {
        println!(
            "  {} ~~> {} (via connection {})",
            store.object_name(t.s()),
            store.object_name(t.o()),
            store.object_name(t.p())
        );
    }
    if result.result.is_empty() {
        println!("  (none in the three-user example — expected)");
    }

    // Users who both point at the same person: (x, c, z) and (y, c', z).
    let co_targets = Expr::rel("E").join(
        Expr::rel("E"),
        output(Pos::L1, Pos::R1, Pos::L3),
        Conditions::new().obj_eq(Pos::L3, Pos::R3),
    );
    let result = evaluate(&co_targets, &store).expect("evaluates");
    println!("\nPairs of users connected to the same person:");
    for t in result.result.iter().filter(|t| t.s() != t.p()) {
        println!(
            "  {} and {} both know {}",
            store.object_name(t.s()),
            store.object_name(t.p()),
            store.object_name(t.o())
        );
    }

    // The same queries scale to generated networks.
    let big = social_network(&SocialConfig {
        users: 200,
        connections: 800,
        seed: 99,
    });
    let eval = evaluate(&fof, &big).expect("evaluates");
    println!(
        "\nGenerated network ({} users, {} connections): {} friend-of-friend pairs through \
         identical connection data, {} candidate pairs inspected.",
        200,
        big.triple_count(),
        eval.result.len(),
        eval.stats.pairs_considered
    );
}
