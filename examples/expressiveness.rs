//! Expressiveness tour (Section 6.1): translate between TriAL and
//! finite-variable logics and replay the separating examples from the proofs
//! of Theorems 4 and 5.
//!
//! Run with `cargo run -p trial-bench --example expressiveness`.

use trial_core::builder::queries;
use trial_eval::evaluate;
use trial_logic::structures::{
    at_least_k_objects_sentence, full_store, structure_a, structure_b, theorem4_fo4_sentence,
};
use trial_logic::{answers3, evaluate_closed, fo3_to_trial, trial_to_fo, Formula};
use trial_workloads::figure1_store;

fn main() {
    let store = figure1_store();

    // --- FO³ → TriAL (Theorem 4, part 2) --------------------------------
    // "x is connected to z by some service": ∃y E(x, y, z).
    let formula = Formula::exists("y", Formula::rel_vars("E", "x", "y", "z"));
    let expr = fo3_to_trial(&formula, ["x", "y", "z"]).expect("FO3 formula translates");
    println!("FO3 formula   : {formula}");
    println!("TriAL form    : {expr}");
    let algebra = evaluate(&expr, &store).expect("evaluation").result;
    let logic = answers3(&store, &formula, ["x", "y", "z"]).expect("evaluation");
    println!(
        "both give {} answer triples, identical = {}",
        algebra.len(),
        algebra.set_eq(&logic)
    );

    // --- TriAL → FO⁶ (Theorem 4, part 1) ---------------------------------
    let example2 = queries::example2("E");
    let report = trial_to_fo(&example2).expect("translation");
    println!("\nTriAL Example 2: {example2}");
    println!("FO translation : {}", report.formula);
    println!(
        "variables used : {} (Theorem 4 promises at most 6)",
        report.width
    );

    // --- "At least k objects" on the full stores T_n ---------------------
    println!("\nSeparating queries on the full stores T_n (Theorem 4):");
    let q4 = queries::at_least_four_objects();
    let s4 = at_least_k_objects_sentence(4);
    for n in [3usize, 4] {
        let t = full_store(n);
        let algebra = !evaluate(&q4, &t).expect("evaluation").result.is_empty();
        let logic = evaluate_closed(&t, &s4).expect("evaluation");
        println!("  T{n}: TriAL ≥4-objects = {algebra}, FO⁴ sentence = {logic}");
    }

    // --- Structures A and B (Theorem 4, part 3) --------------------------
    let a = structure_a();
    let b = structure_b();
    let phi = theorem4_fo4_sentence();
    println!("\nStructures A and B from the proof of Theorem 4:");
    println!(
        "  A: {} objects, {} triples; B: {} objects, {} triples",
        a.object_count(),
        a.triple_count(),
        b.object_count(),
        b.triple_count()
    );
    println!(
        "  FO⁴ sentence φ: on A = {}, on B = {} — while TriAL queries cannot tell them apart",
        evaluate_closed(&a, &phi).expect("evaluation"),
        evaluate_closed(&b, &phi).expect("evaluation")
    );
    let q = queries::same_company_reachability("E");
    println!(
        "  e.g. query Q is non-empty on A = {}, on B = {}",
        !evaluate(&q, &a).expect("evaluation").result.is_empty(),
        !evaluate(&q, &b).expect("evaluation").result.is_empty()
    );
}
