//! Importing RDF data: parse an N-Triples document, convert it into a
//! triplestore, and query it with the algebra, the text syntax and Datalog.
//!
//! Run with `cargo run -p trial-bench --example rdf_import`.

use trial_core::builder::queries;
use trial_datalog::{evaluate_program, parse_program};
use trial_eval::evaluate;
use trial_parser::parse;
use trial_rdf::convert::to_triplestore;
use trial_rdf::ntriples::{parse_ntriples, serialize_ntriples};

const DOCUMENT: &str = r#"
<http://transport.example/StAndrews> <http://transport.example/BusOp1> <http://transport.example/Edinburgh> .
<http://transport.example/Edinburgh> <http://transport.example/TrainOp1> <http://transport.example/London> .
<http://transport.example/London> <http://transport.example/TrainOp2> <http://transport.example/Brussels> .
<http://transport.example/BusOp1> <http://transport.example/partOf> <http://transport.example/NatExpress> .
<http://transport.example/TrainOp1> <http://transport.example/partOf> <http://transport.example/EastCoast> .
<http://transport.example/TrainOp2> <http://transport.example/partOf> <http://transport.example/Eurostar> .
<http://transport.example/EastCoast> <http://transport.example/partOf> <http://transport.example/NatExpress> .
"#;

fn main() {
    // 1. Parse the (ground) RDF document.
    let graph = parse_ntriples(DOCUMENT).expect("valid N-Triples");
    println!("parsed {} RDF triples", graph.len());

    // 2. Convert into a triplestore: URIs are interned into ObjectIds, the
    //    middle component stays a first-class object, exactly as the paper's
    //    model demands.
    let store = to_triplestore(&graph, "E");
    println!(
        "triplestore has {} objects and {} triples in relation E",
        store.object_count(),
        store.triple_count()
    );

    // 3. The flagship query Q from the introduction: pairs of cities
    //    connected by services operated by (recursively) the same company.
    let q = queries::same_company_reachability("E");
    let answers = evaluate(&q, &store).expect("evaluation").result;
    println!("\nQuery Q over the imported data:");
    for t in answers.iter() {
        println!(
            "  {} reaches {} under {}",
            store.object_name(t.s()),
            store.object_name(t.o()),
            store.object_name(t.p())
        );
    }

    // 4. The same query family is available in the text syntax …
    let reach = parse("STAR(E JOIN[1,2,3' | 3=1'])").expect("parses");
    let reachable = evaluate(&reach, &store).expect("evaluation").result;
    println!(
        "\nplain reachability (Reach->) finds {} pairs",
        reachable.len()
    );

    // 5. … and as a ReachTripleDatalog¬ program (Theorem 2).
    let program = parse_program(
        "Reach(x, y, z) :- E(x, y, z).
         Reach(x, y, z) :- Reach(x, y, w), E(w, u, z).
         Ans(x, y, z) :- Reach(x, y, z).",
    )
    .expect("parses");
    let datalog = evaluate_program(&program, &store)
        .expect("evaluates")
        .output_triples()
        .expect("ternary output");
    assert_eq!(datalog, reachable);
    println!("the Datalog formulation agrees with the algebra (Theorem 2)");

    // 6. Round-trip back out to N-Triples.
    let serialized = serialize_ntriples(&graph);
    println!(
        "\nround-tripped document has {} lines",
        serialized.lines().filter(|l| !l.trim().is_empty()).count()
    );
}
