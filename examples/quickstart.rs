//! Quickstart: build a triplestore, write a TriAL expression three ways
//! (builder, text syntax, Datalog) and evaluate it.
//!
//! Run with `cargo run -p trial-bench --example quickstart`.

use trial_core::builder::queries;
use trial_core::TriplestoreBuilder;
use trial_datalog::{evaluate_program, parse_program};
use trial_eval::evaluate;
use trial_parser::parse;

fn main() {
    // 1. The Figure 1 transport network from the paper.
    let mut b = TriplestoreBuilder::new();
    for (s, p, o) in [
        ("St.Andrews", "BusOp1", "Edinburgh"),
        ("Edinburgh", "TrainOp1", "London"),
        ("London", "TrainOp2", "Brussels"),
        ("BusOp1", "part_of", "NatExpress"),
        ("TrainOp1", "part_of", "EastCoast"),
        ("TrainOp2", "part_of", "Eurostar"),
        ("EastCoast", "part_of", "NatExpress"),
    ] {
        b.add_triple("E", s, p, o);
    }
    let store = b.finish();
    println!("{store}");

    // 2. Example 2 of the paper, built with the fluent API.
    let example2 = queries::example2("E");
    println!("Example 2 expression: {example2}");
    let result = evaluate(&example2, &store).expect("evaluation succeeds");
    println!("Example 2 result:");
    for line in store.display_triples(&result.result) {
        println!("  {line}");
    }

    // 3. The same query written in the concrete text syntax.
    let parsed = parse("(E JOIN[1,3',3 | 2=1'] E)").expect("parses");
    assert_eq!(parsed, example2);

    // 4. The flagship query Q: cities connected by services of one company.
    let q = queries::same_company_reachability("E");
    let result = evaluate(&q, &store).expect("evaluation succeeds");
    println!("\nQuery Q ({q}):");
    for t in result.result.iter() {
        println!(
            "  {} can reach {} with company {}",
            store.object_name(t.s()),
            store.object_name(t.o()),
            store.object_name(t.p())
        );
    }
    println!(
        "  [{} candidate pairs inspected, {} fixpoint rounds]",
        result.stats.pairs_considered, result.stats.fixpoint_rounds
    );

    // 5. Example 2 once more, as a TripleDatalog¬ program.
    let program =
        parse_program("Ans(x, c, y) :- E(x, op, y), E(op, p, c), p = 'part_of'.").expect("parses");
    let datalog = evaluate_program(&program, &store).expect("evaluates");
    let triples = datalog.output_triples().expect("arity 3");
    assert_eq!(triples, evaluate(&example2, &store).unwrap().result);
    println!("\nThe Datalog formulation agrees with the algebra — Proposition 2 in action.");
}
