//! Serving TriAL over HTTP: an in-process `trial-server` round trip.
//!
//! Spawns the query service on an ephemeral port, preloads the transport
//! workload (the scaled Figure 1 network behind the paper's query `Q`), and
//! issues Example 2 of the paper — plus its EXPLAIN — over real HTTP.
//!
//! ```bash
//! cargo run --example server_demo
//! ```

use trial::server::{client, preload_workload, Server};

fn main() -> std::io::Result<()> {
    let server = Server::spawn_ephemeral()?;
    let addr = server.addr();
    let store = preload_workload("transport").expect("transport is a known workload");
    println!(
        "serving http://{addr}  (store `transport`: {} triples)\n",
        store.triple_count()
    );
    server.registry().set("transport", store);

    // Example 2 of the paper: cities connected by a service, output with the
    // operating company in the middle —  E ✶^{1,3',3}_{2=1'} E.
    let example2 = "(E JOIN[1,3',3 | 2=1'] E)";

    println!("POST /explain  {example2}");
    let explain = client::post(addr, "/explain", example2)?;
    println!("  -> {}\n", explain.body);

    println!("POST /query    {example2}   (first time: cache miss)");
    let miss = client::post(addr, "/query?limit=3", example2)?;
    println!("  -> {}\n", miss.body);

    println!("POST /query    {example2}   (repeat: served from the LRU cache)");
    let hit = client::post(addr, "/query?limit=3", example2)?;
    println!("  -> {}\n", hit.body);
    assert!(hit.body.contains("\"cached\":true"));

    println!("GET  /healthz");
    let health = client::get(addr, "/healthz")?;
    println!("  -> {}\n", health.body);

    println!("Equivalent curl session against a standalone server:");
    println!("  cargo run --release -p trial-server --bin trial-serve -- --preload transport");
    println!("  curl -s localhost:7878/query -d \"{example2}\"");

    server.shutdown();
    Ok(())
}
