//! The transport-integration scenario from the paper's introduction, at a
//! realistic scale: which city pairs can be served with a single ticket
//! (i.e. by services that all belong to one company)?
//!
//! Run with `cargo run -p trial-bench --example transport_network --release`.

use trial_core::builder::queries;
use trial_core::fragment;
use trial_eval::{Engine, EvalOptions, NaiveEngine, SmartEngine};
use trial_workloads::{transport_network, TransportConfig};

fn main() {
    let config = TransportConfig {
        cities: 60,
        operators: 12,
        companies: 4,
        services: 200,
        ownership_depth: 3,
        seed: 2026,
    };
    let store = transport_network(&config);
    println!(
        "Transport network: {} objects, {} triples",
        store.object_count(),
        store.triple_count()
    );

    let q = queries::same_company_reachability("E");
    println!("Query Q: {q}");
    println!(
        "Fragment: {} — paper bound {}",
        fragment::classify(&q),
        fragment::classify(&q).paper_bound()
    );

    // Evaluate with the three strategies and compare their work.
    let engines: Vec<(&str, Box<dyn Engine>)> = vec![
        ("naive (Theorem 3)", Box::new(NaiveEngine::new())),
        (
            "semi-naive",
            Box::new(SmartEngine::with_options(EvalOptions {
                use_reach_specialisation: false,
                ..EvalOptions::default()
            })),
        ),
        ("smart (+ Prop. 5)", Box::new(SmartEngine::new())),
    ];
    let mut reference = None;
    for (name, engine) in engines {
        let start = std::time::Instant::now();
        let eval = engine.evaluate(&q, &store).expect("evaluation succeeds");
        let elapsed = start.elapsed();
        match &reference {
            None => reference = Some(eval.result.clone()),
            Some(r) => assert_eq!(r, &eval.result, "engines must agree"),
        }
        println!(
            "  {name:<22} {:>10} answers  {:>12} work units  {:>8.2?}",
            eval.result.len(),
            eval.stats.work(),
            elapsed
        );
    }

    // Show a few reachable city pairs with their companies.
    let result = reference.expect("at least one engine ran");
    println!("\nSample answers (city → city via company):");
    for t in result
        .iter()
        .filter(|t| {
            store.object_name(t.s()).starts_with("city")
                && store.object_name(t.o()).starts_with("city")
        })
        .take(10)
    {
        println!(
            "  {} → {} via {}",
            store.object_name(t.s()),
            store.object_name(t.o()),
            store.object_name(t.p())
        );
    }
}
