//! `EXPLAIN` for TriAL queries: shows the physical plans the cost-based
//! planner chooses for the paper's running examples on the Figure 1
//! transport database.
//!
//! Run with: `cargo run --example explain`

use trial_core::builder::queries;
use trial_core::{Conditions, Expr, Pos};
use trial_eval::{evaluate, explain};
use trial_workloads::figure1_store;

fn show(title: &str, expr: &Expr, store: &trial_core::Triplestore) {
    println!("== {title}");
    println!("   {expr}\n");
    println!("{}", explain(expr, store).expect("plannable"));
    let eval = evaluate(expr, store).expect("evaluates");
    println!(
        "-- {} answer triples, work = {} (pairs {}, scans {}, reach edges {}, memo hits {})\n",
        eval.result.len(),
        eval.stats.work(),
        eval.stats.pairs_considered,
        eval.stats.triples_scanned,
        eval.stats.reach_edges_traversed,
        eval.stats.memo_hits,
    );
}

fn main() {
    let store = figure1_store();

    // Example 2: one triple join with an equality key — planned as an index
    // nested-loop join probing E's cached permutation index.
    show(
        "Example 2: E ✶^{1,3',3}_{2=1'} E",
        &queries::example2("E"),
        &store,
    );

    // Example 2 extended: the join appears twice — the planner assigns it a
    // memo slot so it executes once.
    show(
        "Example 2 extended (shared sub-expression)",
        &queries::example2_extended("E"),
        &store,
    );

    // A selection with a constant: pushed into the scan as an index binding.
    show(
        "Selection pushdown: σ_{2='part_of'}(E)",
        &Expr::rel("E").select(Conditions::new().obj_eq_const(Pos::L2, "part_of")),
        &store,
    );

    // Query Q of Theorem 1: nested Kleene stars — the outer star matches the
    // same-label reachTA⁼ shape and runs as a Proposition 5 procedure, the
    // inner star runs as a build-once semi-naive fixpoint.
    show(
        "Query Q: same-company reachability (Example 4)",
        &queries::same_company_reachability("E"),
        &store,
    );
}
