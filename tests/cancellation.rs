//! Eval-layer cancellation: a deadline or explicit cancel surfaces as
//! [`trial_eval::Error::Cancelled`] promptly — within tens of milliseconds
//! of the cut-off, not after the evaluation would have finished anyway —
//! across the reach specialisation, the generic semi-naive fixpoint, and
//! every morsel degree.

use std::time::{Duration, Instant};
use trial_core::Error;
use trial_eval::{CancelReason, CancelToken, EvalOptions, SmartEngine};
use trial_workloads::chain_store;

/// A transitive closure whose full evaluation takes seconds in debug
/// builds — the deadline always fires long before it finishes.
const SLOW_QUERY: &str = "STAR(E JOIN[1,2,3' | 3=1'])";

/// How long after the deadline the error may surface. The acceptance bound
/// for the serving path is 50 ms end-to-end; the eval layer alone must be
/// comfortably inside that.
const RELEASE_BUDGET: Duration = Duration::from_millis(50);

fn expect_cancelled(result: Result<usize, Error>, slug: &str) {
    match result {
        Err(Error::Cancelled(reason)) => assert_eq!(reason, slug),
        other => panic!("expected Cancelled({slug}), got {other:?}"),
    }
}

#[test]
fn deadline_cancels_the_reach_closure_at_every_degree() {
    let store = chain_store(2000);
    let expr = trial_parser::parse(SLOW_QUERY).unwrap();
    let deadline = Duration::from_millis(200);
    for threads in [1usize, 2, 4] {
        let engine = SmartEngine::with_options(EvalOptions {
            threads,
            cancel: CancelToken::with_timeout(deadline),
            ..EvalOptions::default()
        });
        let started = Instant::now();
        let result = engine.evaluate_query(&expr, &store, None, None, None);
        let elapsed = started.elapsed();
        expect_cancelled(result.map(|e| e.result.len()), "deadline_exceeded");
        assert!(
            elapsed >= deadline,
            "threads={threads}: finished before the deadline: {elapsed:?}"
        );
        assert!(
            elapsed <= deadline + RELEASE_BUDGET,
            "threads={threads}: released {:?} after the deadline",
            elapsed - deadline
        );
    }
}

#[test]
fn deadline_cancels_the_generic_fixpoint_too() {
    // With the reach specialisation off the same query runs through the
    // semi-naive fixpoint, which checks the token once per round.
    let store = chain_store(2000);
    let expr = trial_parser::parse(SLOW_QUERY).unwrap();
    let deadline = Duration::from_millis(200);
    let engine = SmartEngine::with_options(EvalOptions {
        cancel: CancelToken::with_timeout(deadline),
        use_reach_specialisation: false,
        use_memo: false,
        ..EvalOptions::default()
    });
    let started = Instant::now();
    let result = engine.evaluate_query(&expr, &store, None, None, None);
    let elapsed = started.elapsed();
    expect_cancelled(result.map(|e| e.result.len()), "deadline_exceeded");
    assert!(
        elapsed <= deadline + RELEASE_BUDGET,
        "released {:?} after the deadline",
        elapsed - deadline
    );
}

#[test]
fn explicit_cancellation_preempts_evaluation_entirely() {
    // A token cancelled before evaluation starts (the shutdown drain does
    // exactly this) aborts at the entry checkpoint: no fixpoint rounds, no
    // closure, single-digit milliseconds.
    let store = chain_store(2000);
    let expr = trial_parser::parse(SLOW_QUERY).unwrap();
    let token = CancelToken::manual();
    token.cancel(CancelReason::Shutdown);
    let engine = SmartEngine::with_options(EvalOptions {
        cancel: token,
        ..EvalOptions::default()
    });
    let started = Instant::now();
    let result = engine.evaluate_query(&expr, &store, None, None, None);
    expect_cancelled(result.map(|e| e.result.len()), "shutdown");
    assert!(
        started.elapsed() < Duration::from_millis(50),
        "pre-cancelled evaluation still ran for {:?}",
        started.elapsed()
    );
}

#[test]
fn an_inert_token_never_cancels() {
    // `EvalOptions::default()` carries the inert token: the same closure
    // runs to completion and the deadline machinery costs nothing.
    let store = chain_store(400);
    let expr = trial_parser::parse(SLOW_QUERY).unwrap();
    let engine = SmartEngine::with_options(EvalOptions::default());
    let result = engine
        .evaluate_query(&expr, &store, None, None, None)
        .unwrap();
    assert!(result.result.len() > store.triple_count());
}
