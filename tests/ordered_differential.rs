//! Differential property tests for ordered execution: merge-join plans,
//! hash/index-join plans, the materialize-everything reference interpreter
//! and the naive Theorem-3 evaluator must agree on randomized stores and
//! expressions (both star directions, threads 1/2/4); `?order=`-style
//! streams must be *exactly* sorted under the requested permutation key;
//! and top-k (k ∈ {0, 1, n, ∞}) must return precisely the k smallest
//! distinct triples under the key — deterministically, with the heap never
//! buffering more than k rows and merge joins never building a hash table.

use proptest::prelude::*;
use trial_core::{output, Conditions, Expr, Permutation, Pos, TripleSet, TriplestoreBuilder};
use trial_eval::{Engine, EvalOptions, NaiveEngine, SmartEngine};

/// Strategy for a random store over at most 10 named objects, with data
/// values on some objects so η-conditions bite.
fn arb_store() -> impl Strategy<Value = trial_core::Triplestore> {
    (
        3u32..10,
        prop::collection::vec((0u32..10, 0u32..10, 0u32..10), 1..40),
    )
        .prop_map(|(n, triples)| {
            let mut b = TriplestoreBuilder::new();
            for i in 0..n {
                b.object_with_value(format!("o{i}"), trial_core::Value::int((i % 3) as i64));
            }
            b.relation("E");
            for (s, p, o) in triples {
                b.add_triple(
                    "E",
                    format!("o{}", s % n),
                    format!("o{}", p % n),
                    format!("o{}", o % n),
                );
            }
            b.finish()
        })
}

fn arb_pos() -> impl Strategy<Value = Pos> {
    prop::sample::select(Pos::ALL.to_vec())
}

/// Random expressions biased towards the shapes the ordered machinery
/// rewrites: keyed joins on every component pair (merge-join candidates),
/// unions of scans (merge unions / order delivery through both sides),
/// constant and data selections (order-preserving residual filters),
/// difference/intersection (left-side order propagation), complements, and
/// reachability-shaped plus general stars in **both directions**.
fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![Just(Expr::rel("E")), Just(Expr::Empty)];
    leaf.prop_recursive(3, 10, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.union(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.minus(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.intersect(b)),
            inner.clone().prop_map(|a| a.complement()),
            // Keyed joins over arbitrary component pairs and outputs: these
            // are the merge-join candidates (and, with identity-like
            // outputs, the very joins a naive ordering analysis would be
            // tempted to call ordered).
            (
                inner.clone(),
                inner.clone(),
                arb_pos(),
                arb_pos(),
                arb_pos(),
                arb_pos(),
                arb_pos()
            )
                .prop_map(|(a, b, i, j, k, x, y)| a.join(
                    b,
                    output(i, j, k),
                    Conditions::new().obj_eq(x, y.mirrored())
                )),
            // Reachability-shaped stars (plain and same-label).
            (inner.clone(), any::<bool>()).prop_map(|(a, same_label)| {
                let cond = if same_label {
                    Conditions::new()
                        .obj_eq(Pos::L3, Pos::R1)
                        .obj_eq(Pos::L2, Pos::R2)
                } else {
                    Conditions::new().obj_eq(Pos::L3, Pos::R1)
                };
                a.right_star(output(Pos::L1, Pos::L2, Pos::R3), cond)
            }),
            // General stars in both directions.
            (inner.clone(), any::<bool>()).prop_map(|(a, left)| {
                let out = output(Pos::L1, Pos::L2, Pos::R2);
                let cond = Conditions::new().obj_eq(Pos::L3, Pos::R1);
                if left {
                    a.left_star(out, cond)
                } else {
                    a.right_star(out, cond)
                }
            }),
            inner
                .clone()
                .prop_map(|a| a.select(Conditions::new().data_eq(Pos::L1, Pos::L3))),
            (inner.clone(), any::<bool>()).prop_map(|(a, known)| {
                let name = if known { "o1" } else { "zzz" };
                a.select(Conditions::new().obj_eq_const(Pos::L2, name))
            }),
        ]
    })
}

/// The production engine: merge joins on, streaming, at a given degree.
fn merging(threads: usize) -> SmartEngine {
    SmartEngine::with_options(EvalOptions {
        threads,
        parallel_min_rows: 0,
        ..EvalOptions::default()
    })
}

/// The differential arm with merge joins disabled: every join hashes or
/// index-probes, exactly the pre-ordered-execution planner.
fn hashing() -> SmartEngine {
    SmartEngine::with_options(EvalOptions {
        use_merge_join: false,
        threads: 1,
        ..EvalOptions::default()
    })
}

/// The materialize-everything reference interpreter (merge joins on).
fn reference() -> SmartEngine {
    SmartEngine::with_options(EvalOptions {
        streaming: false,
        threads: 1,
        ..EvalOptions::default()
    })
}

const DEGREES: [usize; 3] = [1, 2, 4];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Full results: merge-join plans, hash-join plans, the materialized
    /// reference and the naive evaluator all produce identical sets, at
    /// every thread count, and merge-join work totals match the reference
    /// pair-for-pair.
    #[test]
    fn merge_and_hash_plans_agree(store in arb_store(), expr in arb_expr()) {
        let naive = NaiveEngine::new().run(&expr, &store).unwrap();
        let hashed = hashing().evaluate(&expr, &store).unwrap();
        prop_assert_eq!(&hashed.result, &naive, "hash plans vs naive diverge on {}", expr);
        let materialized = reference().run(&expr, &store).unwrap();
        prop_assert_eq!(&materialized, &naive, "reference diverges on {}", expr);
        for threads in DEGREES {
            let merged = merging(threads).evaluate(&expr, &store).unwrap();
            prop_assert_eq!(
                &merged.result, &naive,
                "merge plans diverge at threads={} on {}", threads, expr
            );
        }
    }

    /// `?order=`-style streams are **exactly sorted**: strictly increasing
    /// permutation keys (hence duplicate-free) and set-equal to the full
    /// result, for every permutation — including plans that need an
    /// explicit sort breaker.
    #[test]
    fn ordered_streams_are_exactly_sorted(store in arb_store(), expr in arb_expr()) {
        let full = reference().run(&expr, &store).unwrap();
        for perm in Permutation::ALL {
            let mut stream = merging(1)
                .stream_query(&expr, &store, None, Some(perm), None)
                .unwrap();
            let mut rows = Vec::new();
            while let Some(t) = stream.next_triple() {
                rows.push(t);
            }
            prop_assert!(
                rows.windows(2).all(|w| perm.key(&w[0]) < perm.key(&w[1])),
                "rows not strictly {}-sorted for {}", perm, expr
            );
            let as_set: TripleSet = rows.iter().copied().collect();
            prop_assert_eq!(&as_set, &full, "ordered stream lost rows for {} under {}", expr, perm);
        }
    }

    /// Top-k (k ∈ {0, 1, half, ∞}) returns exactly the k smallest distinct
    /// triples under the permutation key — identical across the streaming
    /// heap, the materialized reference, and every thread count, with the
    /// heap bounded by k and ordered scan joins building no hash tables.
    #[test]
    fn topk_is_exactly_the_k_smallest(store in arb_store(), expr in arb_expr()) {
        let full = reference().run(&expr, &store).unwrap();
        for perm in Permutation::ALL {
            let mut sorted = full.as_slice().to_vec();
            sorted.sort_unstable_by_key(|t| perm.key(t));
            for k in [0usize, 1, full.len() / 2, usize::MAX] {
                let want: TripleSet = sorted.iter().take(k).copied().collect();
                let streamed = merging(1)
                    .evaluate_query(&expr, &store, None, Some(perm), Some(k))
                    .unwrap();
                prop_assert_eq!(
                    &streamed.result, &want,
                    "streamed top-{} under {} diverges on {}", k, perm, expr
                );
                prop_assert!(
                    (streamed.stats.topk_buffered_peak as usize) <= k,
                    "heap exceeded k={} on {}", k, expr
                );
                let materialized = reference()
                    .evaluate_query(&expr, &store, None, Some(perm), Some(k))
                    .unwrap();
                prop_assert_eq!(
                    &materialized.result, &want,
                    "materialized top-{} under {} diverges on {}", k, perm, expr
                );
                for threads in DEGREES {
                    let parallel = merging(threads)
                        .evaluate_query(&expr, &store, None, Some(perm), Some(k))
                        .unwrap();
                    prop_assert_eq!(
                        &parallel.result, &want,
                        "top-{} diverges at threads={} on {}", k, threads, expr
                    );
                }
            }
        }
    }

    /// The ordering-metadata regression: every plan root that **claims** an
    /// order really streams strictly key-ascending rows — with merge joins
    /// on and off, and with an explicitly requested order. A hash join
    /// whose mirrored build side scrambles the probe order (or any join
    /// duplicating projected rows) must therefore claim `None`.
    #[test]
    fn every_claimed_order_is_real(store in arb_store(), expr in arb_expr()) {
        for engine in [merging(1), hashing()] {
            for requested in [None, Some(Permutation::Spo), Some(Permutation::Pos), Some(Permutation::Osp)] {
                let plan = engine.plan_query(&expr, &store, None, requested, None).unwrap();
                if let Some(requested) = requested {
                    prop_assert_eq!(
                        plan.root.ordering(), Some(requested),
                        "requested order not delivered for {}", expr
                    );
                }
                let Some(claimed) = plan.root.ordering() else { continue };
                let mut stream = engine
                    .stream_query(&expr, &store, None, requested, None)
                    .unwrap();
                let mut prev: Option<trial_core::Triple> = None;
                while let Some(t) = stream.next_triple() {
                    if let Some(p) = prev {
                        prop_assert!(
                            claimed.key(&p) < claimed.key(&t),
                            "{} claims {} order but emitted {:?} before {:?}",
                            expr, claimed, p, t
                        );
                    }
                    prev = Some(t);
                }
            }
        }
    }

    /// Two-sided ordered scan joins execute allocation-free: when the plan
    /// is a merge join over scans, the whole evaluation builds zero hash
    /// tables (stars and memos aside, which this shape excludes).
    #[test]
    fn merge_joins_build_no_hash_tables(
        store in arb_store(),
        key in prop::sample::select(vec![
            (Pos::L1, Pos::R1), (Pos::L2, Pos::R1), (Pos::L3, Pos::R1),
            (Pos::L1, Pos::R2), (Pos::L2, Pos::R3), (Pos::L3, Pos::R2),
        ]),
    ) {
        let expr = Expr::rel("E").join(
            Expr::rel("E"),
            output(Pos::L1, Pos::L2, Pos::R3),
            Conditions::new().obj_eq(key.0, key.1),
        );
        let plan = merging(1).plan(&expr, &store).unwrap();
        prop_assert!(
            matches!(plan.root, trial_eval::PlanNode::MergeJoin { .. }),
            "two-sided scan join did not merge:\n{}", plan.explain()
        );
        for threads in DEGREES {
            let eval = merging(threads).evaluate(&expr, &store).unwrap();
            prop_assert_eq!(eval.stats.hash_tables_built, 0, "hash table built on {}", expr);
            prop_assert_eq!(
                &eval.result,
                &NaiveEngine::new().run(&expr, &store).unwrap(),
                "merge join wrong at threads={} on {}", threads, expr
            );
        }
    }
}
