//! Convergence differential for feedback-driven planning: on a skewed
//! store whose static selectivity heuristics are badly wrong, running the
//! same analyzed query twice must (a) shrink the plan's total estimate
//! error — the second plan draws on the observed cardinalities the first
//! run ingested — and (b) change **only** estimates, never answers: the
//! rendered result bytes must be identical cold vs. warm, at every tested
//! thread count, and equal to the naive Theorem-3 reference.

use std::sync::Arc;
use trial_core::{output, Conditions, Expr, Pos, TripleSet, Triplestore, TriplestoreBuilder};
use trial_eval::{Engine, EvalOptions, NaiveEngine, SmartEngine, StatsStore};

/// A store with heavy predicate skew: one `hot` chain of 300 edges and a
/// handful of `rare` edges feeding into it. The planner's uniform
/// `len / distinct` heuristic estimates both label bindings at ~150 rows —
/// far above `rare`'s 5 and far below `hot`'s 300.
fn skewed_store() -> Triplestore {
    let mut b = TriplestoreBuilder::new();
    for i in 0..300 {
        b.add_triple("E", format!("n{i}"), "hot", format!("n{}", i + 1));
    }
    for i in 0..5 {
        b.add_triple("E", format!("r{i}"), "rare", format!("n{}", i * 7));
    }
    b.finish()
}

/// A multi-join in SP²Bench shape: a selective access path (`rare`) probed
/// through two `hot` hops — the kind of plan whose join order and morsel
/// sizing hinge on getting the bound-scan cardinalities right.
fn skewed_query() -> Expr {
    let rare = Expr::rel("E").select(Conditions::new().obj_eq_const(Pos::L2, "rare"));
    let hot = || Expr::rel("E").select(Conditions::new().obj_eq_const(Pos::L2, "hot"));
    rare.join(
        hot(),
        output(Pos::L1, Pos::L2, Pos::R3),
        Conditions::new().obj_eq(Pos::L3, Pos::R1),
    )
    .join(
        hot(),
        output(Pos::L1, Pos::L2, Pos::R3),
        Conditions::new().obj_eq(Pos::L3, Pos::R1),
    )
}

/// Renders a result set to bytes: one `s p o` line per triple, in the
/// set's canonical order. Byte equality is the strongest answer-identity
/// check available — it covers content *and* canonical ordering.
fn render(store: &Triplestore, set: &TripleSet) -> String {
    let mut out = String::new();
    for t in set.iter() {
        out.push_str(store.object_name(t.s()));
        out.push(' ');
        out.push_str(store.object_name(t.p()));
        out.push(' ');
        out.push_str(store.object_name(t.o()));
        out.push('\n');
    }
    out
}

#[test]
fn feedback_shrinks_estimate_errors_and_never_changes_answers() {
    let store = skewed_store();
    let q = skewed_query();
    let stats = Arc::new(StatsStore::new());
    let engine = SmartEngine::with_stats(EvalOptions::default(), Arc::clone(&stats));

    let cold = engine.evaluate_analyzed(&q, &store, None).unwrap();
    assert!(
        cold.est_sources.iter().all(|s| !s),
        "the first plan must be purely heuristic"
    );
    let cold_feedback = cold
        .feedback
        .clone()
        .expect("stats engine reports feedback");
    assert!(cold_feedback.ingested > 0, "analyze must feed the stats");

    let warm = engine.evaluate_analyzed(&q, &store, None).unwrap();
    assert!(
        warm.est_sources.iter().any(|s| *s),
        "the second plan must draw on observed estimates"
    );
    let warm_feedback = warm.feedback.clone().unwrap();
    let err = |errors: &[u64]| errors.iter().sum::<u64>();
    assert!(
        err(&warm_feedback.est_errors) < err(&cold_feedback.est_errors),
        "estimate error must shrink: cold {:?} vs warm {:?}",
        cold_feedback.est_errors,
        warm_feedback.est_errors
    );
    assert!(stats.replans() >= 1);

    // Answers are invariant: cold vs. warm, every thread count, and the
    // naive reference all render to identical bytes.
    let reference = render(&store, &cold.evaluation.result);
    assert_eq!(render(&store, &warm.evaluation.result), reference);
    let naive = NaiveEngine::new().run(&q, &store).unwrap();
    assert_eq!(render(&store, &naive), reference);
    for threads in [1usize, 2, 4] {
        let engine = SmartEngine::with_stats(
            EvalOptions {
                threads,
                parallel_min_rows: 16,
                ..EvalOptions::default()
            },
            Arc::clone(&stats),
        );
        let result = engine.run(&q, &store).unwrap();
        assert_eq!(
            render(&store, &result),
            reference,
            "threads={threads} must render byte-identical results"
        );
    }
}
