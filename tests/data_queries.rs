//! Cross-crate tests for the data-aware and navigational comparisons:
//! register automata / regular expressions with memory (Proposition 6),
//! native nSPARQL axis navigation (Theorem 1), and their relationship to the
//! graph languages and the algebra.

use proptest::prelude::*;
use std::collections::{BTreeSet, HashSet};
use trial_core::builder::queries;
use trial_eval::evaluate;
use trial_graph::nsparql::{evaluate_nsparql, sample_expressions, Axis, NsExpr};
use trial_graph::register::{
    compile_rem, distinct_values_expression, evaluate_ra, evaluate_rem, Cond, Rem,
};
use trial_graph::rpq::evaluate_rpq;
use trial_graph::sigma::{sigma_encode, SIGMA_NEXT};
use trial_graph::{proposition1_documents, GraphDb, GraphDbBuilder, Nre, Regex};
use trial_workloads::random_graph;

/// Register-free REMs are just RPQs: on any graph, `a*` evaluated as a
/// regular path query and as a regular expression with memory agree.
#[test]
fn register_free_rems_agree_with_rpqs_on_random_graphs() {
    for seed in 0..6u64 {
        let graph = random_graph(12, 30, 2, seed);
        for (rem, regex) in [
            (Rem::label("l0"), Regex::label("l0")),
            (
                Rem::label("l0").then(Rem::label("l1")),
                Regex::label("l0").then(Regex::label("l1")),
            ),
            (
                Rem::label("l0").or(Rem::label("l1")).star(),
                Regex::label("l0").or(Regex::label("l1")).star(),
            ),
        ] {
            let via_rem = evaluate_rem(&graph, &rem);
            let via_rpq = evaluate_rpq(&graph, &regex);
            assert_eq!(
                via_rem, via_rpq,
                "REM {rem} and RPQ disagree on seed {seed}"
            );
        }
    }
}

/// Compiling a REM to a register automaton and evaluating the automaton is
/// the same as evaluating the REM directly (the REM evaluator *is* the
/// compiled automaton, so this pins the public API).
#[test]
fn compiled_register_automata_match_rem_evaluation() {
    let mut b = GraphDbBuilder::new();
    for (n, v) in [("a", 1i64), ("b", 2), ("c", 1), ("d", 3)] {
        b.node_with_value(n, v);
    }
    b.edge("a", "x", "b");
    b.edge("b", "x", "c");
    b.edge("c", "y", "d");
    let g = b.finish();
    let rem = Rem::Down(
        vec![0],
        Box::new(Rem::label("x").then(Rem::label_if("x", Cond::EqReg(0)))),
    )
    .or(Rem::label("y"));
    let direct = evaluate_rem(&g, &rem);
    let automaton = compile_rem(&rem);
    let via_ra = evaluate_ra(&g, &automaton);
    assert_eq!(direct, via_ra);
    assert!(direct.contains(&(g.node_id("a").unwrap(), g.node_id("c").unwrap())));
}

/// Proposition 6, first half: the e_n expressions detect n distinct data
/// values along a path, a property that grows strictly with n.
#[test]
fn distinct_value_expressions_form_a_strict_hierarchy() {
    let mut b = GraphDbBuilder::new();
    for i in 0..6 {
        b.node_with_value(format!("n{i}"), i as i64);
    }
    for i in 0..5 {
        b.edge(format!("n{i}"), "a", format!("n{}", i + 1));
    }
    let g = b.finish();
    // The 6-node distinct chain satisfies e_2 .. e_6 but not e_7.
    for n in 2..=6usize {
        assert!(
            !evaluate_rem(&g, &distinct_values_expression("a", n)).is_empty(),
            "e_{n} should have a witness on a 6-value chain"
        );
    }
    assert!(evaluate_rem(&g, &distinct_values_expression("a", 7)).is_empty());
}

/// Theorem 1: every nSPARQL axis expression answers identically on the
/// Proposition 1 documents, while the TriAL* query Q separates them.
#[test]
fn nsparql_axes_cannot_express_query_q() {
    let (d1, d2) = proposition1_documents();
    for (name, expr) in sample_expressions() {
        let to_names = |store: &trial_core::Triplestore,
                        pairs: &HashSet<(trial_core::ObjectId, trial_core::ObjectId)>|
         -> BTreeSet<(String, String)> {
            pairs
                .iter()
                .map(|(a, b)| {
                    (
                        store.object_name(*a).to_string(),
                        store.object_name(*b).to_string(),
                    )
                })
                .collect()
        };
        let on_d1 = to_names(&d1, &evaluate_nsparql(&d1, "E", &expr));
        let on_d2 = to_names(&d2, &evaluate_nsparql(&d2, "E", &expr));
        assert_eq!(on_d1, on_d2, "axis expression {name} distinguishes D1/D2");
    }
    let q = queries::same_company_reachability("E");
    let q1 = evaluate(&q, &d1).unwrap().result;
    let q2 = evaluate(&q, &d2).unwrap().result;
    assert!(!q1.set_eq(&q2), "Q must distinguish D1 from D2");
}

/// The `next` axis evaluated natively over the triples coincides with the
/// `next`-labelled edges of the σ(·) encoding — the two views of nSPARQL
/// navigation are consistent.
fn next_axis_matches_sigma(store: &trial_core::Triplestore) {
    let graph: GraphDb = sigma_encode(store, "E");
    let via_axis: BTreeSet<(String, String)> =
        evaluate_nsparql(store, "E", &NsExpr::axis(Axis::Next))
            .into_iter()
            .map(|(a, b)| {
                (
                    store.object_name(a).to_string(),
                    store.object_name(b).to_string(),
                )
            })
            .collect();
    let via_sigma: BTreeSet<(String, String)> = graph
        .label_pairs(SIGMA_NEXT)
        .into_iter()
        .map(|(a, b)| {
            (
                graph.node_name(a).to_string(),
                graph.node_name(b).to_string(),
            )
        })
        .collect();
    assert_eq!(via_axis, via_sigma);
}

#[test]
fn next_axis_and_sigma_encoding_agree_on_the_paper_documents() {
    let (d1, d2) = proposition1_documents();
    next_axis_matches_sigma(&d1);
    next_axis_matches_sigma(&d2);
    next_axis_matches_sigma(&trial_workloads::figure1_store());
}

/// The starred `next` axis is plain reachability, so it agrees with the NRE
/// `next*` over the σ-encoding.
#[test]
fn next_star_matches_nre_reachability() {
    let store = trial_workloads::figure1_store();
    let graph = sigma_encode(&store, "E");
    let via_axis: BTreeSet<(String, String)> =
        evaluate_nsparql(&store, "E", &NsExpr::axis(Axis::Next).star())
            .into_iter()
            .filter(|(a, b)| a != b)
            .map(|(a, b)| {
                (
                    store.object_name(a).to_string(),
                    store.object_name(b).to_string(),
                )
            })
            .collect();
    let via_nre: BTreeSet<(String, String)> =
        trial_graph::nre::evaluate_nre(&graph, &Nre::label(SIGMA_NEXT).plus())
            .into_iter()
            .filter(|(a, b)| a != b)
            .map(|(a, b)| {
                (
                    graph.node_name(a).to_string(),
                    graph.node_name(b).to_string(),
                )
            })
            .collect();
    assert_eq!(via_axis, via_nre);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Register-automaton queries are monotone: evaluating on a graph with
    /// one extra edge can only add answers (Proposition 6's second half
    /// relies on exactly this).
    #[test]
    fn rem_queries_are_monotone_under_edge_addition(
        seed in 0u64..1000,
        extra_src in 0usize..10,
        extra_dst in 0usize..10,
    ) {
        let small = random_graph(10, 18, 2, seed);
        // Re-create the same graph and add one extra edge.
        let mut b = GraphDbBuilder::new();
        for node in small.nodes() {
            b.node_with_value(small.node_name(node), small.value(node).clone());
        }
        for edge in small.edges() {
            b.edge(
                small.node_name(edge.source),
                edge.label.clone(),
                small.node_name(edge.target),
            );
        }
        b.edge(format!("n{extra_src}"), "l0", format!("n{extra_dst}"));
        let large = b.finish();

        let queries = [
            Rem::label("l0").star(),
            Rem::Down(vec![0], Box::new(Rem::label_if("l0", Cond::NeqReg(0)))).star(),
            Rem::label("l1").then(Rem::label("l0").or(Rem::Epsilon)),
        ];
        for q in queries {
            let to_names = |g: &GraphDb, pairs: &HashSet<(trial_graph::NodeId, trial_graph::NodeId)>| {
                pairs
                    .iter()
                    .map(|(a, b)| (g.node_name(*a).to_string(), g.node_name(*b).to_string()))
                    .collect::<BTreeSet<_>>()
            };
            let on_small = to_names(&small, &evaluate_rem(&small, &q));
            let on_large = to_names(&large, &evaluate_rem(&large, &q));
            prop_assert!(
                on_small.is_subset(&on_large),
                "REM {q} lost answers when an edge was added (seed {seed})"
            );
        }
    }
}
