//! Integration tests reproducing the worked examples and named queries of
//! the paper end-to-end: text syntax → algebra → evaluation → expected
//! answers, on the Figure 1 database.

use trial_core::builder::queries;
use trial_eval::evaluate;
use trial_parser::parse;
use trial_workloads::figure1_store;

#[test]
fn example2_from_text_syntax() {
    let store = figure1_store();
    let expr = parse("(E JOIN[1,3',3 | 2=1'] E)").unwrap();
    let result = evaluate(&expr, &store).unwrap();
    assert_eq!(
        store.display_triples(&result.result),
        vec![
            "(Edinburgh, EastCoast, London)",
            "(London, Eurostar, Brussels)",
            "(St.Andrews, NatExpress, Edinburgh)",
        ]
    );
}

#[test]
fn example2_extension_adds_natexpress() {
    // e ∪ (e ✶^{1,3',3}_{2=1'} E) lifts EastCoast to NatExpress (Example 2).
    let store = figure1_store();
    let result = evaluate(&queries::example2_extended("E"), &store).unwrap();
    let rendered = store.display_triples(&result.result);
    assert!(rendered.contains(&"(Edinburgh, NatExpress, London)".to_string()));
    assert!(rendered.contains(&"(Edinburgh, EastCoast, London)".to_string()));
}

#[test]
fn query_q_answers_match_the_paper() {
    // (Edinburgh, London) and (St.Andrews, London) are in Q(D);
    // (St.Andrews, Brussels) is not, because that trip needs two companies.
    let store = figure1_store();
    let q = parse("STAR(STAR(E JOIN[1,3',3 | 2=1']) JOIN[1,2,3' | 3=1',2=2'])").unwrap();
    assert_eq!(q, queries::same_company_reachability("E"));
    let result = evaluate(&q, &store).unwrap();
    let pairs: Vec<(String, String)> = result
        .result
        .iter()
        .map(|t| {
            (
                store.object_name(t.s()).to_owned(),
                store.object_name(t.o()).to_owned(),
            )
        })
        .collect();
    assert!(pairs.contains(&("Edinburgh".into(), "London".into())));
    assert!(pairs.contains(&("St.Andrews".into(), "London".into())));
    assert!(!pairs.contains(&("St.Andrews".into(), "Brussels".into())));
}

#[test]
fn example3_closure_directions_differ() {
    // Example 3: E = {(a,b,c), (c,d,e), (d,e,f)} — the right closure of
    // ✶^{1,2,2'}_{3=1'} yields two extra triples, the left closure one.
    let mut b = trial_core::TriplestoreBuilder::new();
    b.add_triple("E", "a", "b", "c");
    b.add_triple("E", "c", "d", "e");
    b.add_triple("E", "d", "e", "f");
    let store = b.finish();
    let right = parse("STAR(E JOIN[1,2,2' | 3=1'])").unwrap();
    let left = parse("STAR(JOIN[1,2,2' | 3=1'] E)").unwrap();
    let right_result = evaluate(&right, &store).unwrap().result;
    let left_result = evaluate(&left, &store).unwrap().result;
    assert_eq!(right_result.len(), 5);
    assert_eq!(left_result.len(), 4);
    assert!(left_result.iter().all(|t| right_result.contains(t)));
}

#[test]
fn reachability_queries_from_the_introduction() {
    let store = figure1_store();
    // Reach→ follows service edges: St.Andrews reaches Brussels (ignoring
    // companies), which is exactly what Q refuses to do.
    let reach = evaluate(&queries::reach_forward("E"), &store).unwrap();
    let pairs: Vec<(String, String)> = reach
        .result
        .iter()
        .map(|t| {
            (
                store.object_name(t.s()).to_owned(),
                store.object_name(t.o()).to_owned(),
            )
        })
        .collect();
    assert!(pairs.contains(&("St.Andrews".into(), "Brussels".into())));
    // Reach⇓ exists and produces a superset of E (it always contains E).
    let down = evaluate(&queries::reach_down("E"), &store).unwrap();
    let e = store.require_relation("E").unwrap();
    for t in e.iter() {
        assert!(down.result.contains(t));
    }
}

#[test]
fn definable_operations_behave_as_defined() {
    let store = figure1_store();
    // Intersection via join equals the primitive intersection.
    let via_join = parse("(E JOIN[1,2,3 | 1=1',2=2',3=3'] E)").unwrap();
    let prim = parse("(E INTERSECT E)").unwrap();
    assert_eq!(
        evaluate(&via_join, &store).unwrap().result,
        evaluate(&prim, &store).unwrap().result
    );
    // Complement is U − e and double complement is identity on E.
    let compl_twice = parse("COMPL(COMPL(E))").unwrap();
    assert_eq!(
        evaluate(&compl_twice, &store).unwrap().result,
        *store.require_relation("E").unwrap()
    );
}
