//! Differential property tests for morsel-driven parallel execution: at
//! every tested degree (`threads ∈ {1, 2, 4}`) the parallel executor must
//! produce exactly the result sets of the single-threaded materialized
//! reference and the naive Theorem-3 evaluator, over randomized stores and
//! expressions — including both star directions, limits, and the
//! empty/singleton-morsel edge cases — and must be deterministic across
//! repeated runs.
//!
//! `parallel_min_rows` is set to 0 so the morsel paths engage even on the
//! tiny randomized stores; a separate property keeps the default threshold
//! honest by checking that small inputs stay sequential under it.

use proptest::prelude::*;
use trial_core::{output, Conditions, Expr, Pos, TripleSet, TriplestoreBuilder};
use trial_eval::{Engine, EvalOptions, NaiveEngine, SmartEngine};

/// Strategy for a random store over at most 10 named objects, with data
/// values on some objects so η-conditions bite. Stores with a single triple
/// (or relations that filter down to nothing) exercise the singleton/empty
/// morsel edge cases.
fn arb_store() -> impl Strategy<Value = trial_core::Triplestore> {
    (
        3u32..10,
        prop::collection::vec((0u32..10, 0u32..10, 0u32..10), 1..40),
    )
        .prop_map(|(n, triples)| {
            let mut b = TriplestoreBuilder::new();
            for i in 0..n {
                b.object_with_value(format!("o{i}"), trial_core::Value::int((i % 3) as i64));
            }
            b.relation("E");
            for (s, p, o) in triples {
                b.add_triple(
                    "E",
                    format!("o{}", s % n),
                    format!("o{}", p % n),
                    format!("o{}", o % n),
                );
            }
            b.finish()
        })
}

fn arb_pos() -> impl Strategy<Value = Pos> {
    prop::sample::select(Pos::ALL.to_vec())
}

/// Random expressions covering every parallel strategy: keyed joins (hash
/// and index nested-loop), key-free nested loops, set operations whose
/// blocking sides materialise concurrently, complements, constant and data
/// selections (partitioned residual filtering), and reachability-shaped and
/// general stars in **both directions** (BFS fan-out and per-round delta
/// partitioning).
fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![Just(Expr::rel("E")), Just(Expr::Empty)];
    leaf.prop_recursive(3, 10, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.union(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.minus(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.intersect(b)),
            inner.clone().prop_map(|a| a.complement()),
            (
                inner.clone(),
                inner.clone(),
                arb_pos(),
                arb_pos(),
                arb_pos(),
                arb_pos(),
                arb_pos()
            )
                .prop_map(|(a, b, i, j, k, x, y)| a.join(
                    b,
                    output(i, j, k),
                    Conditions::new().obj_eq(x, y.mirrored())
                )),
            // Key-free join: the parallel nested loop.
            (inner.clone(), inner.clone(), arb_pos(), arb_pos()).prop_map(|(a, b, x, y)| a.join(
                b,
                output(Pos::L1, Pos::L2, Pos::R3),
                Conditions::new().obj_neq(x, y.mirrored())
            )),
            // Reachability-shaped stars (plain and same-label).
            (inner.clone(), any::<bool>()).prop_map(|(a, same_label)| {
                let cond = if same_label {
                    Conditions::new()
                        .obj_eq(Pos::L3, Pos::R1)
                        .obj_eq(Pos::L2, Pos::R2)
                } else {
                    Conditions::new().obj_eq(Pos::L3, Pos::R1)
                };
                a.right_star(output(Pos::L1, Pos::L2, Pos::R3), cond)
            }),
            // General stars in both directions.
            (inner.clone(), any::<bool>()).prop_map(|(a, left)| {
                let out = output(Pos::L1, Pos::L2, Pos::R2);
                let cond = Conditions::new().obj_eq(Pos::L3, Pos::R1);
                if left {
                    a.left_star(out, cond)
                } else {
                    a.right_star(out, cond)
                }
            }),
            inner
                .clone()
                .prop_map(|a| a.select(Conditions::new().data_eq(Pos::L1, Pos::L3))),
            (inner.clone(), any::<bool>()).prop_map(|(a, known)| {
                let name = if known { "o1" } else { "zzz" };
                a.select(Conditions::new().obj_eq_const(Pos::L2, name))
            }),
        ]
    })
}

/// The single-threaded streaming engine (the production default).
fn sequential() -> SmartEngine {
    SmartEngine::with_options(EvalOptions {
        threads: 1,
        ..EvalOptions::default()
    })
}

/// The single-threaded materialize-everything reference interpreter.
fn reference() -> SmartEngine {
    SmartEngine::with_options(EvalOptions {
        threads: 1,
        streaming: false,
        ..EvalOptions::default()
    })
}

/// A parallel engine at the given degree with morsel thresholds disabled, so
/// every qualifying operator actually fans out.
fn parallel(threads: usize) -> SmartEngine {
    SmartEngine::with_options(EvalOptions {
        threads,
        parallel_min_rows: 0,
        ..EvalOptions::default()
    })
}

const DEGREES: [usize; 3] = [1, 2, 4];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Full results: every thread count produces exactly the result set of
    /// the materialized single-threaded reference and the naive evaluator,
    /// twice in a row (determinism), with identical work counters.
    #[test]
    fn parallel_engines_agree_on_full_results(store in arb_store(), expr in arb_expr()) {
        let reference = reference().evaluate(&expr, &store).unwrap();
        let naive = NaiveEngine::new().run(&expr, &store).unwrap();
        prop_assert_eq!(&reference.result, &naive, "reference vs naive diverge on {}", expr);
        for threads in DEGREES {
            let engine = parallel(threads);
            let first = engine.evaluate(&expr, &store).unwrap();
            prop_assert_eq!(
                &first.result, &reference.result,
                "threads={} diverges on {}", threads, expr
            );
            let second = engine.evaluate(&expr, &store).unwrap();
            prop_assert_eq!(
                &second.result, &first.result,
                "threads={} is nondeterministic on {}", threads, expr
            );
            // Morsel execution reports the same work totals as the
            // sequential run (each pair/scan/edge is counted exactly once,
            // wherever it ran).
            prop_assert_eq!(
                first.stats.pairs_considered,
                reference.stats.pairs_considered,
                "pair counts diverge at threads={} on {}", threads, expr
            );
            prop_assert_eq!(
                first.stats.reach_edges_traversed,
                reference.stats.reach_edges_traversed,
                "edge counts diverge at threads={} on {}", threads, expr
            );
        }
    }

    /// Limits 0 / 1 / half / ∞: the parallel executor's limited results are
    /// identical to the sequential streaming executor's (the limit subtree
    /// is the explicit sequential fallback), at every degree.
    #[test]
    fn limits_are_thread_count_invariant(store in arb_store(), expr in arb_expr()) {
        let full = reference().run(&expr, &store).unwrap();
        let half = full.len() / 2;
        for k in [0usize, 1, half, usize::MAX] {
            let seq = sequential()
                .evaluate_limited(&expr, &store, Some(k))
                .unwrap()
                .result;
            prop_assert_eq!(seq.len(), full.len().min(k), "length for {} @ {}", expr, k);
            for t in seq.iter() {
                prop_assert!(full.contains(t), "phantom triple {:?} for {}", t, expr);
            }
            for threads in DEGREES {
                let par = parallel(threads)
                    .evaluate_limited(&expr, &store, Some(k))
                    .unwrap()
                    .result;
                prop_assert_eq!(
                    &par, &seq,
                    "limited results diverge at threads={} on {} @ {}", threads, expr, k
                );
                // Streams agree triple-for-triple too.
                let mut stream = parallel(threads).stream(&expr, &store, Some(k)).unwrap();
                let mut rows = Vec::new();
                while let Some(t) = stream.next_triple() {
                    rows.push(t);
                }
                let as_set: TripleSet = rows.iter().copied().collect();
                prop_assert_eq!(as_set.len(), rows.len(), "stream emitted duplicates for {}", expr);
                prop_assert_eq!(&as_set, &par, "stream diverges at threads={} on {}", threads, expr);
            }
        }
    }

    /// Under the default morsel threshold these tiny stores never fan out:
    /// the threshold really gates the parallel paths.
    #[test]
    fn default_threshold_keeps_tiny_inputs_sequential(store in arb_store(), expr in arb_expr()) {
        let engine = SmartEngine::with_options(EvalOptions {
            threads: 4,
            ..EvalOptions::default()
        });
        let eval = engine.evaluate(&expr, &store).unwrap();
        prop_assert_eq!(eval.stats.parallel_morsels, 0, "tiny input fanned out on {}", expr);
        prop_assert_eq!(
            &eval.result,
            &reference().run(&expr, &store).unwrap(),
            "threshold path diverges on {}",
            expr
        );
    }
}
