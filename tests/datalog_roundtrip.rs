//! Integration tests for the Proposition 2 / Theorem 2 capture results:
//! Datalog programs and algebra expressions translate into each other and
//! evaluate identically.

use trial_core::builder::queries;
use trial_core::Expr;
use trial_datalog::{
    evaluate_program, expr_to_program, parse_program, program_to_expr, ProgramClass,
};
use trial_eval::evaluate;
use trial_workloads::{figure1_store, transport_network, TransportConfig};

#[test]
fn query_q_as_a_reach_triple_datalog_program() {
    // The hand-written ReachTripleDatalog¬ program for query Q.
    let program = parse_program(
        "Lift(x, c, y) :- E(x, c, y).
         Lift(x, c, y) :- Lift(x, w, y), E(w, u, c).
         Same(x, c, y) :- Lift(x, c, y).
         Same(x, c, y) :- Same(x, c, w), Lift(w, c2, y), c = c2.
         Ans(x, c, y) :- Same(x, c, y).",
    )
    .unwrap();
    assert_eq!(program.classify(), ProgramClass::ReachTripleDatalog);
    let store = figure1_store();
    let datalog = evaluate_program(&program, &store)
        .unwrap()
        .output_triples()
        .unwrap();
    let algebra = evaluate(&queries::same_company_reachability("E"), &store)
        .unwrap()
        .result;
    assert_eq!(datalog, algebra);
    // And the program translates back into an equivalent TriAL* expression.
    let back = program_to_expr(&program).unwrap();
    assert!(back.is_recursive());
    assert_eq!(evaluate(&back, &store).unwrap().result, algebra);
}

#[test]
fn algebra_to_datalog_to_algebra_roundtrip_on_larger_data() {
    let store = transport_network(&TransportConfig {
        cities: 12,
        operators: 4,
        companies: 2,
        services: 30,
        ownership_depth: 2,
        seed: 19,
    });
    let rels: Vec<&str> = store.relation_names().collect();
    for expr in [
        queries::example2("E"),
        queries::reach_forward("E"),
        queries::same_company_reachability("E"),
        Expr::rel("E").minus(queries::example2("E")),
    ] {
        let program = expr_to_program(&expr, &rels).unwrap();
        let datalog = evaluate_program(&program, &store)
            .unwrap()
            .output_triples()
            .unwrap();
        let direct = evaluate(&expr, &store).unwrap().result;
        assert_eq!(datalog, direct, "program disagrees for {expr}");
        let back = program_to_expr(&program).unwrap();
        assert_eq!(
            evaluate(&back, &store).unwrap().result,
            direct,
            "roundtrip disagrees for {expr}"
        );
    }
}

#[test]
fn classification_matches_the_capture_theorems() {
    let store = figure1_store();
    let rels: Vec<&str> = store.relation_names().collect();
    // Non-recursive expressions land in TripleDatalog¬ (Proposition 2) …
    let p = expr_to_program(&queries::example2("E"), &rels).unwrap();
    assert_eq!(p.classify(), ProgramClass::NonRecursiveTripleDatalog);
    // … recursive ones in ReachTripleDatalog¬ (Theorem 2).
    let p = expr_to_program(&queries::same_company_reachability("E"), &rels).unwrap();
    assert_eq!(p.classify(), ProgramClass::ReachTripleDatalog);
}

#[test]
fn negation_and_sim_survive_both_translations() {
    let store = figure1_store();
    let program = parse_program(
        "Part(x, y, z) :- E(x, y, z), y = 'part_of'.
         Travel(x, y, z) :- E(x, y, z), not Part(x, y, z).
         Ans(x, y, z) :- Travel(x, y, z), not sim(x, z).",
    )
    .unwrap();
    let datalog = evaluate_program(&program, &store)
        .unwrap()
        .output_triples()
        .unwrap();
    // Travel triples are the three city-to-city services; none of the city
    // pairs share a data value (all ρ are null ⇒ sim always holds), so the
    // final negation empties nothing or everything — compute via the algebra
    // translation and compare rather than hard-coding.
    let expr = program_to_expr(&program).unwrap();
    let algebra = evaluate(&expr, &store).unwrap().result;
    assert_eq!(datalog, algebra);
}
