//! Differential property tests for the streaming cursor pipeline: the
//! streaming executor, the materialize-everything reference interpreter and
//! the naive Theorem-3 evaluator must agree on randomized stores and
//! expressions — and limits must behave like limits (exactly `min(k, |e(T)|)`
//! distinct result triples, early termination, no phantom or missing rows).

use proptest::prelude::*;
use trial_core::{output, Conditions, Expr, Pos, TripleSet, TriplestoreBuilder};
use trial_eval::{Engine, EvalOptions, NaiveEngine, SmartEngine};

/// Strategy for a random store over at most 10 named objects, with data
/// values on some objects so η-conditions bite.
fn arb_store() -> impl Strategy<Value = trial_core::Triplestore> {
    (
        3u32..10,
        prop::collection::vec((0u32..10, 0u32..10, 0u32..10), 1..40),
    )
        .prop_map(|(n, triples)| {
            let mut b = TriplestoreBuilder::new();
            for i in 0..n {
                b.object_with_value(format!("o{i}"), trial_core::Value::int((i % 3) as i64));
            }
            b.relation("E");
            for (s, p, o) in triples {
                b.add_triple(
                    "E",
                    format!("o{}", s % n),
                    format!("o{}", p % n),
                    format!("o{}", o % n),
                );
            }
            b.finish()
        })
}

fn arb_pos() -> impl Strategy<Value = Pos> {
    prop::sample::select(Pos::ALL.to_vec())
}

/// Random expressions covering every streaming operator and every breaker:
/// set operations (merge and chain unions, streamed difference and
/// intersection), keyed and key-free joins, reachability-shaped and general
/// stars in **both directions**, complements (streamed universe), and
/// constant selections (pushed through set operations into index scans).
fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![Just(Expr::rel("E")), Just(Expr::Empty)];
    leaf.prop_recursive(3, 10, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.union(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.minus(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.intersect(b)),
            inner.clone().prop_map(|a| a.complement()),
            (
                inner.clone(),
                inner.clone(),
                arb_pos(),
                arb_pos(),
                arb_pos(),
                arb_pos(),
                arb_pos()
            )
                .prop_map(|(a, b, i, j, k, x, y)| a.join(
                    b,
                    output(i, j, k),
                    Conditions::new().obj_eq(x, y.mirrored())
                )),
            // Reachability-shaped stars (plain and same-label).
            (inner.clone(), any::<bool>()).prop_map(|(a, same_label)| {
                let cond = if same_label {
                    Conditions::new()
                        .obj_eq(Pos::L3, Pos::R1)
                        .obj_eq(Pos::L2, Pos::R2)
                } else {
                    Conditions::new().obj_eq(Pos::L3, Pos::R1)
                };
                a.right_star(output(Pos::L1, Pos::L2, Pos::R3), cond)
            }),
            // General stars in both directions.
            (inner.clone(), any::<bool>()).prop_map(|(a, left)| {
                let out = output(Pos::L1, Pos::L2, Pos::R2);
                let cond = Conditions::new().obj_eq(Pos::L3, Pos::R1);
                if left {
                    a.left_star(out, cond)
                } else {
                    a.right_star(out, cond)
                }
            }),
            inner
                .clone()
                .prop_map(|a| a.select(Conditions::new().data_eq(Pos::L1, Pos::L3))),
            (inner.clone(), any::<bool>()).prop_map(|(a, known)| {
                let name = if known { "o1" } else { "zzz" };
                a.select(Conditions::new().obj_eq_const(Pos::L2, name))
            }),
        ]
    })
}

fn streaming() -> SmartEngine {
    SmartEngine::new()
}

fn materialized() -> SmartEngine {
    SmartEngine::with_options(EvalOptions {
        streaming: false,
        ..EvalOptions::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Full results: the streaming pipeline, the materialized reference
    /// interpreter and the naive evaluator produce identical `TripleSet`s.
    #[test]
    fn three_evaluators_agree_on_full_results(store in arb_store(), expr in arb_expr()) {
        let s = streaming().run(&expr, &store).unwrap();
        let m = materialized().run(&expr, &store).unwrap();
        let n = NaiveEngine::new().run(&expr, &store).unwrap();
        prop_assert_eq!(&s, &m, "streaming vs materialized diverge on {}", expr);
        prop_assert_eq!(&s, &n, "streaming vs naive diverge on {}", expr);
    }

    /// Limits 0 / 1 / n / ∞: a limit-`k` stream yields exactly
    /// `min(k, |e(T)|)` distinct triples, all drawn from the full result;
    /// when `k` covers the whole result the stream reproduces it exactly;
    /// and the materialized limited execution (the **ordered prefix**: the
    /// `k` smallest triples under the limit input's delivered stream order,
    /// canonical SPO when the input is unordered) agrees on cardinality and
    /// membership and is deterministic.
    #[test]
    fn limits_truncate_consistently(store in arb_store(), expr in arb_expr()) {
        let full = materialized().run(&expr, &store).unwrap();
        let half = full.len() / 2;
        for k in [0usize, 1, half, usize::MAX] {
            // Stream triple-by-triple so duplicate emissions would be caught
            // before any set-level deduplication can hide them.
            let mut stream = streaming().stream(&expr, &store, Some(k)).unwrap();
            let mut rows = Vec::new();
            while let Some(t) = stream.next_triple() {
                rows.push(t);
            }
            let expected = full.len().min(k);
            prop_assert_eq!(rows.len(), expected, "stream length for {} @ {}", expr, k);
            let as_set: TripleSet = rows.iter().copied().collect();
            prop_assert_eq!(as_set.len(), rows.len(), "stream emitted duplicates for {}", expr);
            for t in &rows {
                prop_assert!(full.contains(t), "phantom triple {:?} for {}", t, expr);
            }
            if k >= full.len() {
                prop_assert_eq!(&as_set, &full, "covering limit lost rows for {}", expr);
            }
            // The materialized limited execution: right cardinality, a
            // subset of the full result, deterministic across reruns.
            let m = materialized().evaluate_limited(&expr, &store, Some(k)).unwrap().result;
            prop_assert_eq!(m.len(), expected);
            for t in m.iter() {
                prop_assert!(full.contains(t), "materialized phantom {:?} for {}", t, expr);
            }
            let m2 = materialized().evaluate_limited(&expr, &store, Some(k)).unwrap().result;
            prop_assert_eq!(&m2, &m, "materialized limit is nondeterministic for {}", expr);
            // When the limited plan's root claims a delivered order, both
            // modes must return exactly the k smallest under that order —
            // which for SPO-ordered roots is the canonical prefix.
            let plan = materialized().plan_limited(&expr, &store, Some(k)).unwrap();
            if let Some(perm) = plan.root.ordering() {
                let mut sorted = full.as_slice().to_vec();
                sorted.sort_unstable_by_key(|t| perm.key(t));
                let want: TripleSet = sorted.iter().take(expected).copied().collect();
                prop_assert_eq!(
                    &m, &want,
                    "materialized limit is not the ordered prefix for {}", expr
                );
                prop_assert_eq!(
                    &as_set, &want,
                    "streamed ordered limit diverges from the ordered prefix for {}", expr
                );
            }
            // And the streaming limited evaluation agrees with itself on a
            // rerun (determinism).
            let again = streaming().evaluate_limited(&expr, &store, Some(k)).unwrap().result;
            prop_assert_eq!(&again, &as_set, "limited stream is nondeterministic for {}", expr);
        }
    }

    /// A bounded stream never does more work than the unbounded evaluation
    /// of the same expression.
    #[test]
    fn bounded_streams_do_no_extra_work(store in arb_store(), expr in arb_expr()) {
        let full = streaming().evaluate(&expr, &store).unwrap();
        let mut stream = streaming().stream(&expr, &store, Some(1)).unwrap();
        let _ = stream.next_triple();
        prop_assert!(
            stream.stats().work() <= full.stats.work(),
            "bounded stream did more work ({} vs {}) on {}",
            stream.stats().work(),
            full.stats.work(),
            expr
        );
    }
}
