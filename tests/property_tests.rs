//! Property-based tests on the core data structures and on engine
//! agreement, using randomly generated stores and expressions.

use proptest::prelude::*;
use trial_core::builder::queries;
use trial_core::{output, Conditions, Expr, ObjectId, Pos, Triple, TripleSet, TriplestoreBuilder};
use trial_eval::{Engine, EvalOptions, NaiveEngine, SmartEngine};
use trial_parser::parse;

/// Strategy for a small triple over at most `n` objects.
fn arb_triple(n: u32) -> impl Strategy<Value = Triple> {
    (0..n, 0..n, 0..n).prop_map(|(a, b, c)| Triple::new(ObjectId(a), ObjectId(b), ObjectId(c)))
}

fn arb_tripleset(n: u32) -> impl Strategy<Value = TripleSet> {
    prop::collection::vec(arb_triple(n), 0..40).prop_map(TripleSet::from_vec)
}

/// Strategy for a random store over `n` named objects with `m` triples.
fn arb_store() -> impl Strategy<Value = trial_core::Triplestore> {
    (
        3u32..10,
        prop::collection::vec((0u32..10, 0u32..10, 0u32..10), 1..40),
    )
        .prop_map(|(n, triples)| {
            let mut b = TriplestoreBuilder::new();
            // Give some objects data values so η-conditions are exercised.
            for i in 0..n {
                b.object_with_value(format!("o{i}"), trial_core::Value::int((i % 3) as i64));
            }
            b.relation("E");
            for (s, p, o) in triples {
                b.add_triple(
                    "E",
                    format!("o{}", s % n),
                    format!("o{}", p % n),
                    format!("o{}", o % n),
                );
            }
            b.finish()
        })
}

/// Strategy for a join position.
fn arb_pos() -> impl Strategy<Value = Pos> {
    prop::sample::select(Pos::ALL.to_vec())
}

/// Strategy for small non-recursive and recursive expressions over `E`,
/// covering every operator the planner handles: set operations, keyed and
/// key-free joins, reachability-shaped and general stars in both directions,
/// and selections with position, data and (known or unknown) constant
/// comparisons.
fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![Just(Expr::rel("E")), Just(Expr::Empty)];
    leaf.prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.union(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.minus(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.intersect(b)),
            (
                inner.clone(),
                inner.clone(),
                arb_pos(),
                arb_pos(),
                arb_pos(),
                arb_pos(),
                arb_pos()
            )
                .prop_map(|(a, b, i, j, k, x, y)| a.join(
                    b,
                    output(i, j, k),
                    Conditions::new().obj_eq(x, y.mirrored())
                )),
            (inner.clone(), any::<bool>()).prop_map(|(a, same_label)| {
                let cond = if same_label {
                    Conditions::new()
                        .obj_eq(Pos::L3, Pos::R1)
                        .obj_eq(Pos::L2, Pos::R2)
                } else {
                    Conditions::new().obj_eq(Pos::L3, Pos::R1)
                };
                a.right_star(output(Pos::L1, Pos::L2, Pos::R3), cond)
            }),
            // General (non-reachability) stars in both directions.
            (inner.clone(), any::<bool>()).prop_map(|(a, left)| {
                let out = output(Pos::L1, Pos::L2, Pos::R2);
                let cond = Conditions::new().obj_eq(Pos::L3, Pos::R1);
                if left {
                    a.left_star(out, cond)
                } else {
                    a.right_star(out, cond)
                }
            }),
            inner
                .clone()
                .prop_map(|a| a.select(Conditions::new().data_eq(Pos::L1, Pos::L3))),
            // Constant selections: `o1` exists in every generated store
            // (pushed into an index scan), `zzz` never does (folds to ∅).
            (inner.clone(), any::<bool>()).prop_map(|(a, known)| {
                let name = if known { "o1" } else { "zzz" };
                a.select(Conditions::new().obj_eq_const(Pos::L2, name))
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// TripleSet operations satisfy the usual set-algebra laws.
    #[test]
    fn tripleset_set_laws(a in arb_tripleset(6), b in arb_tripleset(6)) {
        let union = a.union(&b);
        let inter = a.intersection(&b);
        let diff = a.difference(&b);
        // |A ∪ B| + |A ∩ B| = |A| + |B|
        prop_assert_eq!(union.len() + inter.len(), a.len() + b.len());
        // A = (A − B) ∪ (A ∩ B)
        prop_assert_eq!(diff.union(&inter), a.clone());
        // Union is commutative, difference is anti-monotone in its right arg.
        prop_assert_eq!(union, b.union(&a));
        for t in diff.iter() {
            prop_assert!(!b.contains(t));
        }
    }

    /// Every triple in a set's active-object list really occurs in it.
    #[test]
    fn tripleset_active_objects_cover(a in arb_tripleset(6)) {
        let objs = a.active_objects();
        for t in a.iter() {
            for o in t.0 {
                prop_assert!(objs.binary_search(&o).is_ok());
            }
        }
    }

    /// The naive Theorem-3 engine and the planned, index-backed engine agree
    /// on random stores and random expressions (including stars in both
    /// directions and pushed-down constant selections).
    #[test]
    fn engines_agree_on_random_inputs(store in arb_store(), expr in arb_expr()) {
        let naive = NaiveEngine::new().run(&expr, &store).unwrap();
        let smart = SmartEngine::new().run(&expr, &store).unwrap();
        prop_assert_eq!(naive, smart);
    }

    /// Planner rewrites never change answers: with cost-based optimisation
    /// disabled (syntactic plans, rebuild-per-round stars) the engine still
    /// agrees with the fully optimised plans, and planning is deterministic.
    #[test]
    fn unplanned_execution_agrees_with_planned(store in arb_store(), expr in arb_expr()) {
        let planned = SmartEngine::new();
        let unplanned = SmartEngine::with_options(EvalOptions {
            optimize_plans: false,
            use_memo: false,
            ..EvalOptions::default()
        });
        let a = planned.run(&expr, &store).unwrap();
        let b = unplanned.run(&expr, &store).unwrap();
        prop_assert_eq!(a, b);
        let p1 = planned.plan(&expr, &store).unwrap();
        let p2 = planned.plan(&expr, &store).unwrap();
        prop_assert_eq!(p1.explain(), p2.explain());
    }

    /// Display → parse is the identity on randomly generated expressions.
    #[test]
    fn parser_roundtrips_random_expressions(expr in arb_expr()) {
        let text = expr.to_string();
        let parsed = parse(&text).unwrap();
        prop_assert_eq!(parsed, expr);
    }

    /// Kleene closures are monotone and contain their base (on stores where
    /// the base is E itself).
    #[test]
    fn star_contains_base(store in arb_store()) {
        let base = store.require_relation("E").unwrap().clone();
        let reach = SmartEngine::new()
            .run(&queries::reach_forward("E"), &store)
            .unwrap();
        for t in base.iter() {
            prop_assert!(reach.contains(t));
        }
        // The same-label closure is a subset of the unrestricted closure.
        let labelled = SmartEngine::new()
            .run(&queries::reach_same_label("E"), &store)
            .unwrap();
        for t in labelled.iter() {
            prop_assert!(reach.contains(t));
        }
    }
}
