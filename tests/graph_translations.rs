//! Integration tests for Section 6.2: graph query languages evaluated
//! natively agree with their TriAL* translations over the triplestore
//! encoding, on generated graphs; and the σ(·)-encoding separation of
//! Proposition 1 holds.

use std::collections::BTreeSet;
use trial_core::builder::queries;
use trial_eval::evaluate;
use trial_graph::gxpath::{evaluate_path, NodeExpr, PathExpr};
use trial_graph::nre::{evaluate_nre, Nre};
use trial_graph::rpq::evaluate_rpq;
use trial_graph::sigma::sigma_encode;
use trial_graph::{
    graph_to_triplestore, nre_to_trial, path_to_trial, regex_to_trial, GraphDb, Regex,
};
use trial_workloads::random_graph;

fn trial_pairs(
    expr: &trial_core::Expr,
    store: &trial_core::Triplestore,
) -> BTreeSet<(String, String)> {
    evaluate(expr, store)
        .unwrap()
        .result
        .iter()
        .map(|t| {
            (
                store.object_name(t.s()).to_owned(),
                store.object_name(t.o()).to_owned(),
            )
        })
        .collect()
}

fn native_pairs(
    graph: &GraphDb,
    pairs: impl IntoIterator<Item = (trial_graph::NodeId, trial_graph::NodeId)>,
) -> BTreeSet<(String, String)> {
    pairs
        .into_iter()
        .map(|(a, b)| (graph.node_name(a).to_owned(), graph.node_name(b).to_owned()))
        .collect()
}

#[test]
fn rpq_and_nre_translations_on_random_graphs() {
    for seed in 0..4u64 {
        let graph = random_graph(14, 45, 3, seed);
        let store = graph_to_triplestore(&graph);
        let rpqs = [
            Regex::label("l0").plus(),
            Regex::label("l0").then(Regex::label("l1")).star(),
            Regex::label("l2").or(Regex::label("l1").then(Regex::label("l0"))),
        ];
        for re in &rpqs {
            assert_eq!(
                native_pairs(&graph, evaluate_rpq(&graph, re)),
                trial_pairs(&regex_to_trial(re), &store),
                "RPQ {re} differs on seed {seed}"
            );
        }
        let nres = [
            Nre::label("l0").then(Nre::label("l1").test()).plus(),
            Nre::inverse("l0").or(Nre::label("l2")).star(),
        ];
        for e in &nres {
            assert_eq!(
                native_pairs(&graph, evaluate_nre(&graph, e)),
                trial_pairs(&nre_to_trial(e), &store),
                "NRE {e} differs on seed {seed}"
            );
        }
    }
}

#[test]
fn gxpath_translations_including_negation_and_data() {
    for seed in 0..3u64 {
        let graph = random_graph(10, 30, 3, 100 + seed);
        let store = graph_to_triplestore(&graph);
        let paths = [
            PathExpr::label("l0").star().complement(),
            PathExpr::label("l1").then(PathExpr::test(
                NodeExpr::exists(PathExpr::label("l0")).not(),
            )),
            PathExpr::label("l0")
                .or(PathExpr::label("l1"))
                .star()
                .data_eq(),
            PathExpr::label("l2").data_neq(),
        ];
        for alpha in &paths {
            assert_eq!(
                native_pairs(&graph, evaluate_path(&graph, alpha)),
                trial_pairs(&path_to_trial(alpha), &store),
                "GXPath {alpha} differs on seed {seed}"
            );
        }
    }
}

#[test]
fn proposition1_separation_end_to_end() {
    // Build the two documents from the appendix proof of Proposition 1.
    let shared = [
        ("StAndrews", "BusOp1", "Edinburgh"),
        ("Edinburgh", "TrainOp3", "London"),
        ("Edinburgh", "TrainOp1", "Manchester"),
        ("Newcastle", "TrainOp1", "London"),
        ("London", "TrainOp2", "Brussels"),
        ("BusOp1", "part_of", "NatExpress"),
        ("TrainOp1", "part_of", "EastCoast"),
        ("TrainOp2", "part_of", "Eurostar"),
        ("EastCoast", "part_of", "NatExpress"),
    ];
    let build = |extra: bool| {
        let mut b = trial_core::TriplestoreBuilder::new();
        for (s, p, o) in shared {
            b.add_triple("E", s, p, o);
        }
        if extra {
            b.add_triple("E", "Edinburgh", "TrainOp1", "London");
        }
        b.finish()
    };
    let d1 = build(true);
    let d2 = build(false);
    // 1. The σ encodings coincide.
    let edge_set = |g: &GraphDb| -> BTreeSet<String> {
        g.edges()
            .map(|e| {
                format!(
                    "{} {} {}",
                    g.node_name(e.source),
                    e.label,
                    g.node_name(e.target)
                )
            })
            .collect()
    };
    let g1 = sigma_encode(&d1, "E");
    let g2 = sigma_encode(&d2, "E");
    assert_eq!(edge_set(&g1), edge_set(&g2));
    // 2. Hence a sample of NREs over σ(·) cannot distinguish D1 from D2.
    for nre in [
        Nre::label("next").plus(),
        Nre::label("edge").then(Nre::label("node")).plus(),
        Nre::label("edge")
            .then(Nre::label("next").star().test())
            .then(Nre::label("node"))
            .star(),
    ] {
        let r1: BTreeSet<_> = native_pairs(&g1, evaluate_nre(&g1, &nre));
        let r2: BTreeSet<_> = native_pairs(&g2, evaluate_nre(&g2, &nre));
        assert_eq!(r1, r2, "NRE {nre} should not distinguish σ(D1) from σ(D2)");
    }
    // 3. But TriAL*'s query Q does distinguish the documents themselves.
    let q = queries::same_company_reachability("E");
    let witness = ("StAndrews".to_owned(), "London".to_owned());
    let q1 = trial_pairs(&q, &d1);
    let q2 = trial_pairs(&q, &d2);
    assert!(q1.contains(&witness));
    assert!(!q2.contains(&witness));
}
