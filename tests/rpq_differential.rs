//! Differential suite for regular path queries: the Thompson-NFA product
//! walk, the TriAL star lowering and an independent naive reference must
//! agree on random labelled graphs and random path expressions.
//!
//! The naive reference is deliberately implemented from scratch in this
//! file — pair-set fixpoints for the unbounded semantics, a path-length
//! bitmask DP for the `max_hops`-bounded semantics — so a shared bug in
//! `trial_eval::rpq` cannot vouch for itself.

use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};
use trial_core::{TripleSet, Triplestore, TriplestoreBuilder};
use trial_eval::rpq::{self, Nfa};
use trial_eval::{CancelToken, Engine, EvalStats, SmartEngine};
use trial_parser::PathExpr;

const LABELS: [&str; 3] = ["a", "b", "c"];

/// A random labelled graph: `edges[(u, v)]`-style triples `(nu, label, nv)`
/// over at most `n` nodes.
#[derive(Debug, Clone)]
struct Graph {
    edges: Vec<(u32, usize, u32)>,
}

impl Graph {
    fn store(&self) -> Triplestore {
        let mut b = TriplestoreBuilder::new();
        b.relation("E");
        for &(u, l, v) in &self.edges {
            b.add_triple("E", format!("n{u}"), LABELS[l], format!("n{v}"));
        }
        b.finish()
    }

    /// The identity universe: subjects ∪ objects of the relation (matching
    /// both `rpq::node_universe` and the lowering's `ident`).
    fn nodes(&self) -> BTreeSet<u32> {
        self.edges.iter().flat_map(|&(u, _, v)| [u, v]).collect()
    }

    fn pairs_for(&self, label: &str) -> BTreeSet<(u32, u32)> {
        self.edges
            .iter()
            .filter(|&&(_, l, _)| LABELS[l] == label)
            .map(|&(u, _, v)| (u, v))
            .collect()
    }
}

fn arb_graph() -> impl Strategy<Value = Graph> {
    prop::collection::vec((0u32..7, 0usize..LABELS.len(), 0u32..7), 0..24)
        .prop_map(|edges| Graph { edges })
}

fn arb_path() -> impl Strategy<Value = PathExpr> {
    let leaf = prop::sample::select(LABELS.to_vec()).prop_map(|l| PathExpr::Atom(l.to_owned()));
    leaf.prop_recursive(3, 10, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 2..4).prop_map(PathExpr::Seq),
            prop::collection::vec(inner.clone(), 2..4).prop_map(PathExpr::Alt),
            inner.clone().prop_map(|p| PathExpr::Star(Box::new(p))),
            inner.clone().prop_map(|p| PathExpr::Plus(Box::new(p))),
            inner.prop_map(|p| PathExpr::Opt(Box::new(p))),
        ]
    })
}

// ── Naive reference #1: unbounded pair-set fixpoint ─────────────────────────

fn compose(left: &BTreeSet<(u32, u32)>, right: &BTreeSet<(u32, u32)>) -> BTreeSet<(u32, u32)> {
    let mut by_src: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
    for &(u, v) in right {
        by_src.entry(u).or_default().push(v);
    }
    let mut out = BTreeSet::new();
    for &(u, mid) in left {
        if let Some(vs) = by_src.get(&mid) {
            out.extend(vs.iter().map(|&v| (u, v)));
        }
    }
    out
}

fn naive_pairs(path: &PathExpr, graph: &Graph) -> BTreeSet<(u32, u32)> {
    match path {
        PathExpr::Atom(l) => graph.pairs_for(l),
        PathExpr::Seq(parts) => parts
            .iter()
            .map(|p| naive_pairs(p, graph))
            .reduce(|acc, next| compose(&acc, &next))
            .unwrap_or_default(),
        PathExpr::Alt(parts) => parts.iter().flat_map(|p| naive_pairs(p, graph)).collect(),
        PathExpr::Plus(inner) => {
            let step = naive_pairs(inner, graph);
            let mut reach = step.clone();
            loop {
                let mut next = reach.clone();
                next.extend(compose(&reach, &step));
                if next == reach {
                    return reach;
                }
                reach = next;
            }
        }
        PathExpr::Star(inner) => {
            let mut reach = naive_pairs(&PathExpr::Plus(inner.clone()), graph);
            reach.extend(graph.nodes().into_iter().map(|n| (n, n)));
            reach
        }
        PathExpr::Opt(inner) => {
            let mut reach = naive_pairs(inner, graph);
            reach.extend(graph.nodes().into_iter().map(|n| (n, n)));
            reach
        }
    }
}

// ── Naive reference #2: bounded path-length bitmask DP ──────────────────────
//
// `LenMap[(u, v)]` is a bitmask: bit `L` set ⇔ some walk of exactly `L`
// graph edges from `u` to `v` matches the (sub)expression. All masks are
// truncated to lengths ≤ `H` via `mask`, which is sound for answering
// "is there a matching walk of ≤ H edges".

type LenMap = BTreeMap<(u32, u32), u128>;

fn hop_mask(h: usize) -> u128 {
    if h >= 127 {
        u128::MAX
    } else {
        (1u128 << (h + 1)) - 1
    }
}

fn len_or(into: &mut LenMap, from: &LenMap) {
    for (&k, &m) in from {
        *into.entry(k).or_insert(0) |= m;
    }
}

fn len_compose(left: &LenMap, right: &LenMap, mask: u128) -> LenMap {
    let mut by_src: BTreeMap<u32, Vec<(u32, u128)>> = BTreeMap::new();
    for (&(u, v), &m) in right {
        by_src.entry(u).or_default().push((v, m));
    }
    let mut out = LenMap::new();
    for (&(u, mid), &lm) in left {
        let Some(nexts) = by_src.get(&mid) else {
            continue;
        };
        for i in 0..128 {
            if lm & (1u128 << i) == 0 {
                continue;
            }
            for &(v, rm) in nexts {
                let shifted = (rm << i) & mask;
                if shifted != 0 {
                    *out.entry((u, v)).or_insert(0) |= shifted;
                }
            }
        }
    }
    out
}

fn len_pairs(path: &PathExpr, graph: &Graph, mask: u128) -> LenMap {
    match path {
        PathExpr::Atom(l) => graph
            .pairs_for(l)
            .into_iter()
            .map(|p| (p, 0b10 & mask))
            .filter(|&(_, m)| m != 0)
            .collect(),
        PathExpr::Seq(parts) => parts
            .iter()
            .map(|p| len_pairs(p, graph, mask))
            .reduce(|acc, next| len_compose(&acc, &next, mask))
            .unwrap_or_default(),
        PathExpr::Alt(parts) => {
            let mut out = LenMap::new();
            for p in parts {
                len_or(&mut out, &len_pairs(p, graph, mask));
            }
            out
        }
        PathExpr::Plus(inner) => {
            let step = len_pairs(inner, graph, mask);
            let mut reach = step.clone();
            loop {
                let mut next = reach.clone();
                len_or(&mut next, &len_compose(&reach, &step, mask));
                if next == reach {
                    return reach;
                }
                reach = next;
            }
        }
        PathExpr::Star(inner) => {
            let mut reach = len_pairs(&PathExpr::Plus(inner.clone()), graph, mask);
            for n in graph.nodes() {
                *reach.entry((n, n)).or_insert(0) |= 1;
            }
            reach
        }
        PathExpr::Opt(inner) => {
            let mut reach = len_pairs(inner, graph, mask);
            for n in graph.nodes() {
                *reach.entry((n, n)).or_insert(0) |= 1;
            }
            reach
        }
    }
}

fn bounded_naive(path: &PathExpr, graph: &Graph, max_hops: usize) -> BTreeSet<(u32, u32)> {
    len_pairs(path, graph, hop_mask(max_hops))
        .into_iter()
        .filter(|&(_, m)| m != 0)
        .map(|(p, _)| p)
        .collect()
}

// ── Evaluators under test ───────────────────────────────────────────────────

fn nfa_eval(
    store: &Triplestore,
    path: &PathExpr,
    max_hops: Option<usize>,
    threads: usize,
) -> TripleSet {
    let mut stats = EvalStats::new();
    rpq::eval_on_store(
        store,
        "E",
        path,
        max_hops,
        threads,
        &CancelToken::none(),
        &mut stats,
    )
    .unwrap()
}

fn lowered_eval(store: &Triplestore, path: &PathExpr) -> TripleSet {
    let lowered = rpq::lower(path, "E");
    SmartEngine::new().run(&lowered, store).unwrap()
}

/// Decodes an `(x, x, y)`-encoded result back to node pairs, checking the
/// encoding invariant along the way.
fn as_pairs(store: &Triplestore, set: &TripleSet) -> BTreeSet<(u32, u32)> {
    set.iter()
        .map(|t| {
            assert_eq!(t.s(), t.p(), "path results must be (x, x, y) encoded");
            let node = |id| {
                let name = store.object_name(id);
                name.strip_prefix('n')
                    .and_then(|n| n.parse::<u32>().ok())
                    .unwrap_or_else(|| panic!("unexpected node name {name}"))
            };
            (node(t.s()), node(t.o()))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// NFA product walk ≡ independent pair-set fixpoint (unbounded).
    #[test]
    fn nfa_matches_naive(graph in arb_graph(), path in arb_path()) {
        let store = graph.store();
        let got = as_pairs(&store, &nfa_eval(&store, &path, None, 1));
        prop_assert_eq!(got, naive_pairs(&path, &graph));
    }

    /// TriAL star lowering ≡ the same reference — and byte-identical to the
    /// NFA walk's result set.
    #[test]
    fn lowering_matches_naive_and_nfa(graph in arb_graph(), path in arb_path()) {
        let store = graph.store();
        let lowered = lowered_eval(&store, &path);
        prop_assert_eq!(as_pairs(&store, &lowered), naive_pairs(&path, &graph));
        prop_assert_eq!(lowered, nfa_eval(&store, &path, None, 1));
    }

    /// The parallel fan-out is deterministic: threads 1, 2 and 4 produce
    /// byte-identical result sets.
    #[test]
    fn threads_agree(graph in arb_graph(), path in arb_path(),
                     max_hops in prop_oneof![Just(None), (0usize..6).prop_map(Some)]) {
        let store = graph.store();
        let one = nfa_eval(&store, &path, max_hops, 1);
        prop_assert_eq!(&one, &nfa_eval(&store, &path, max_hops, 2));
        prop_assert_eq!(&one, &nfa_eval(&store, &path, max_hops, 4));
    }

    /// Bounded walks ≡ the independent path-length DP.
    #[test]
    fn bounded_matches_length_dp(graph in arb_graph(), path in arb_path(),
                                 max_hops in 0usize..6) {
        let store = graph.store();
        let got = as_pairs(&store, &nfa_eval(&store, &path, Some(max_hops), 1));
        prop_assert_eq!(got, bounded_naive(&path, &graph, max_hops));
    }

    /// A hop budget at least as large as the product graph's vertex count
    /// cannot cut any shortest matching walk: bounded ≡ unbounded.
    #[test]
    fn generous_bound_is_unbounded(graph in arb_graph(), path in arb_path()) {
        let store = graph.store();
        let diameter_bound = graph.nodes().len() * Nfa::compile(&path).state_count();
        let bounded = nfa_eval(&store, &path, Some(diameter_bound), 1);
        prop_assert_eq!(bounded, nfa_eval(&store, &path, None, 1));
    }

    /// Limits through the planner: `stream_path_query` with `?limit=`-style
    /// bounds 0 / 1 / half / full / none delivers exact prefixes of the
    /// SPO-ordered full result.
    #[test]
    fn limits_are_exact_prefixes(graph in arb_graph(), path in arb_path()) {
        let store = graph.store();
        let engine = SmartEngine::new();
        let collect = |limit: Option<usize>| -> Vec<trial_core::Triple> {
            let mut stream = engine
                .stream_path_query(&path, "E", &store, None, limit, None, None)
                .unwrap();
            let mut rows = Vec::new();
            while let Some(t) = stream.next_triple() {
                rows.push(t);
            }
            rows
        };
        let full = collect(None);
        prop_assert_eq!(full.clone(), nfa_eval(&store, &path, None, 1).into_vec());
        for limit in [0, 1, full.len() / 2, full.len(), full.len() + 7] {
            prop_assert_eq!(collect(Some(limit)), full[..limit.min(full.len())].to_vec());
        }
    }
}

/// Spot-checks pinning the pair encoding and the identity semantics on a
/// hand-built graph (cheap to eyeball when a proptest case shrinks here).
#[test]
fn star_identity_covers_relation_nodes_only() {
    let graph = Graph {
        edges: vec![(0, 0, 1), (1, 1, 2)],
    };
    let store = graph.store();
    let star = PathExpr::Star(Box::new(PathExpr::Atom("a".to_owned())));
    // Identity over {0,1,2} plus the single `a` edge (0,1).
    let got = as_pairs(&store, &nfa_eval(&store, &star, None, 1));
    let want: BTreeSet<(u32, u32)> = [(0, 0), (1, 1), (2, 2), (0, 1)].into_iter().collect();
    assert_eq!(got, want);
    assert_eq!(got, as_pairs(&store, &lowered_eval(&store, &star)));
}
