//! Golden-file explain corpus: ~16 representative TriAL queries over the
//! paper's Figure 1 transport store, each with its expected `explain()`
//! tree checked into `tests/golden/`. Planner regressions — a changed join
//! strategy, a lost ordering tag, a limit that stopped folding — surface as
//! readable text diffs instead of downstream result changes.
//!
//! Regenerate the corpus after an *intentional* planner change with:
//!
//! ```bash
//! TRIAL_BLESS=1 cargo test --test explain_golden
//! ```
//!
//! then review the `tests/golden/*.txt` diff like any other code change.

use std::sync::Arc;
use trial_core::{Permutation, Triplestore, TriplestoreBuilder};
use trial_eval::{EvalOptions, SmartEngine, StatsStore};

/// One golden case: a parsed query plus the planner knobs under test.
struct Case {
    /// Golden file stem under `tests/golden/`.
    name: &'static str,
    /// TriAL query text (parsed with `trial_parser`).
    query: &'static str,
    /// `?limit=`-style bound pushed into the plan.
    limit: Option<usize>,
    /// `?order=`-style output order.
    order: Option<Permutation>,
    /// `?topk=`-style bound.
    topk: Option<usize>,
    /// Parallel degree the plan is rendered for (tags `[parallel×N]`).
    threads: usize,
}

const fn case(name: &'static str, query: &'static str) -> Case {
    Case {
        name,
        query,
        limit: None,
        order: None,
        topk: None,
        threads: 1,
    }
}

const CASES: &[Case] = &[
    // Scans and selections.
    case("scan", "E"),
    Case {
        order: Some(Permutation::Pos),
        ..case("scan-order-pos", "E")
    },
    case("select-bound", "SELECT[2='part_of'](E)"),
    case("select-residual", "SELECT[1!=3](E)"),
    case("select-unknown-const", "SELECT[2='nope'](E)"),
    // Joins: merge (two permutation-ordered scans), index nested-loop
    // (small bound outer), hash (derived sides), plain nested loop (no key).
    case("join-merge-example2", "(E JOIN[1,3',3 | 2=1'] E)"),
    case("join-merge-osp", "(E JOIN[1,2,3' | 3=2'] E)"),
    case(
        "join-index-probe",
        "(SELECT[2='part_of'](E) JOIN[1,2,3' | 3=1'] E)",
    ),
    case(
        "join-hash-derived",
        "((E JOIN[1,2,3' | 3=1',rho(1)=rho(3')] E) JOIN[1,2,3' | 3=1'] SELECT[2='part_of'](E))",
    ),
    case("join-nested-loop", "(E JOIN[1,2,3' | 1!=1'] E)"),
    // Two label-bound scans joined on their third components: each bound
    // POS run is also OSP-sorted (the secondary order), so this merges
    // OSP⋈OSP where it previously had to hash.
    case(
        "join-merge-bound-bound",
        "(SELECT[2='part_of'](E) JOIN[1,2,3' | 3=3'] SELECT[2='BusOp1'](E))",
    ),
    // An identity-output (semijoin-shaped) join under ?order=osp: the merge
    // join inherits its left side's secondary order, so the requested order
    // arrives with no sort breaker.
    Case {
        order: Some(Permutation::Osp),
        ..case(
            "order-semijoin-no-sort",
            "(SELECT[2='part_of'](E) JOIN[1,2,3 | 3=1'] E)",
        )
    },
    // Set operations, stars, memoisation.
    case("union-pushdown", "SELECT[2='part_of']((E UNION E))"),
    case("diff-complement", "(E MINUS COMPL(E))"),
    case("star-reach", "STAR(E JOIN[1,2,3' | 3=1'])"),
    case("star-seminaive", "STAR(E JOIN[1,2,2' | 3=1'])"),
    case(
        "memo-shared-subquery",
        "((E JOIN[1,3',3 | 2=1'] E) UNION (E JOIN[1,3',3 | 2=1'] E))",
    ),
    // Limits, ordered delivery, top-k.
    Case {
        limit: Some(5),
        ..case("limit-union", "(E UNION (E JOIN[1,2,3' | 3=1'] E))")
    },
    Case {
        order: Some(Permutation::Pos),
        ..case("sort-breaker", "(E JOIN[1,3',3 | 2=1'] E)")
    },
    Case {
        order: Some(Permutation::Pos),
        topk: Some(3),
        ..case("topk-heap", "(E JOIN[1,3',3 | 2=1'] E)")
    },
    Case {
        order: Some(Permutation::Osp),
        topk: Some(3),
        ..case("topk-limit-collapse", "(E UNION E)")
    },
    Case {
        threads: 4,
        ..case("parallel-tags", "(E JOIN[1,3',3 | 2=1',1!=3'] E)")
    },
];

/// The Figure 1 transport store the whole corpus plans against.
fn store() -> Triplestore {
    let mut b = TriplestoreBuilder::new();
    for (s, p, o) in [
        ("St.Andrews", "BusOp1", "Edinburgh"),
        ("Edinburgh", "TrainOp1", "London"),
        ("London", "TrainOp2", "Brussels"),
        ("BusOp1", "part_of", "NatExpress"),
        ("TrainOp1", "part_of", "EastCoast"),
        ("TrainOp2", "part_of", "Eurostar"),
        ("EastCoast", "part_of", "NatExpress"),
    ] {
        b.add_triple("E", s, p, o);
    }
    b.finish()
}

/// Renders one case: a reproducibility header plus the explain tree.
///
/// With `warmed`, the engine carries a fresh `StatsStore` fed by one
/// analyzed execution of the same query, so the rendered plan is what a
/// server produces *after* feedback — the corpus pins both halves of the
/// adaptive loop. The store and feed run are fixed, so the warmed plans
/// are exactly as deterministic as the cold ones.
fn render(case: &Case, store: &Triplestore, warmed: bool) -> String {
    let expr = trial_parser::parse(case.query)
        .unwrap_or_else(|e| panic!("case `{}` does not parse: {e}", case.name));
    let options = EvalOptions {
        threads: case.threads,
        ..EvalOptions::default()
    };
    let engine = if warmed {
        let engine = SmartEngine::with_stats(options, Arc::new(StatsStore::new()));
        engine
            .evaluate_analyzed_query(&expr, store, case.limit, case.order, case.topk)
            .unwrap_or_else(|e| panic!("case `{}` does not warm up: {e}", case.name));
        engine
    } else {
        SmartEngine::with_options(options)
    };
    let plan = engine
        .plan_query(&expr, store, case.limit, case.order, case.topk)
        .unwrap_or_else(|e| panic!("case `{}` does not plan: {e}", case.name));
    let knob = |name: &str, v: Option<String>| match v {
        Some(v) => format!(" {name}={v}"),
        None => String::new(),
    };
    format!(
        "# query: {}\n# knobs:{}{}{}{}\n{}{}",
        case.query,
        knob("limit", case.limit.map(|k| k.to_string())),
        knob("order", case.order.map(|p| p.to_string())),
        knob("topk", case.topk.map(|k| k.to_string())),
        knob(
            "threads",
            (case.threads > 1).then(|| case.threads.to_string())
        ),
        if warmed { "# stats: warmed\n" } else { "" },
        plan.explain(),
    )
}

fn golden_path(subdir: &str, name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(subdir)
        .join(format!("{name}.txt"))
}

#[test]
fn golden_explain_corpus() {
    run_corpus("", false);
}

/// The same corpus planned with warmed statistics: every estimate the
/// feedback loop can improve — and every plan shape it can flip — is a
/// reviewed golden diff under `tests/golden/warmed/`, not a silent change.
#[test]
fn golden_explain_corpus_warmed() {
    run_corpus("warmed", true);
}

fn run_corpus(subdir: &str, warmed: bool) {
    let bless = std::env::var("TRIAL_BLESS")
        .map(|v| v == "1")
        .unwrap_or(false);
    let store = store();
    // Every case has a distinct golden file.
    let mut names: Vec<&str> = CASES.iter().map(|c| c.name).collect();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), CASES.len(), "duplicate golden case names");

    let mut failures = Vec::new();
    for case in CASES {
        let actual = render(case, &store, warmed);
        let path = golden_path(subdir, case.name);
        if bless {
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(&path, &actual).unwrap();
            continue;
        }
        let expected = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) => {
                failures.push(format!(
                    "── {}: missing golden file {} ({e}); run with TRIAL_BLESS=1 to create it",
                    case.name,
                    path.display()
                ));
                continue;
            }
        };
        if expected != actual {
            let mut diff = String::new();
            for line in diff_lines(&expected, &actual) {
                diff.push_str(&line);
                diff.push('\n');
            }
            failures.push(format!(
                "── {}: plan diverges from {} (TRIAL_BLESS=1 regenerates after review)\n{}",
                case.name,
                path.display(),
                diff
            ));
        }
    }
    if bless {
        eprintln!("blessed {} golden explain files", CASES.len());
        return;
    }
    assert!(
        failures.is_empty(),
        "golden explain corpus diverged:\n\n{}",
        failures.join("\n")
    );
}

/// A minimal line diff: shared lines print bare, divergences as -/+ pairs.
fn diff_lines(expected: &str, actual: &str) -> Vec<String> {
    let e: Vec<&str> = expected.lines().collect();
    let a: Vec<&str> = actual.lines().collect();
    let mut out = Vec::new();
    for i in 0..e.len().max(a.len()) {
        match (e.get(i), a.get(i)) {
            (Some(x), Some(y)) if x == y => out.push(format!("  {x}")),
            (Some(x), Some(y)) => {
                out.push(format!("- {x}"));
                out.push(format!("+ {y}"));
            }
            (Some(x), None) => out.push(format!("- {x}")),
            (None, Some(y)) => out.push(format!("+ {y}")),
            (None, None) => {}
        }
    }
    out
}
