//! Cross-engine agreement: the Theorem-3 naive engine, the semi-naive
//! engine and the Proposition-5 specialised engine must compute identical
//! answers on every expression and workload.

use trial_core::builder::{queries, ExprBuilderExt};
use trial_core::{Conditions, Expr, Pos};
use trial_eval::{Engine, EvalOptions, NaiveEngine, SmartEngine};
use trial_workloads::{
    chain_store, cycle_store, figure1_store, grid_store, random_store, social_network,
    transport_network, RandomStoreConfig, SocialConfig, TransportConfig,
};

fn engines() -> Vec<(&'static str, Box<dyn Engine>)> {
    vec![
        ("naive", Box::new(NaiveEngine::new())),
        (
            "seminaive",
            Box::new(SmartEngine::with_options(EvalOptions {
                use_reach_specialisation: false,
                use_memo: false,
                ..EvalOptions::default()
            })),
        ),
        ("smart", Box::new(SmartEngine::new())),
    ]
}

fn expressions() -> Vec<Expr> {
    vec![
        queries::example2("E"),
        queries::example2_extended("E"),
        queries::reach_forward("E"),
        queries::reach_down("E"),
        queries::reach_same_label("E"),
        queries::same_company_reachability("E"),
        Expr::rel("E").select(Conditions::new().obj_eq_const(Pos::L2, "part_of")),
        Expr::rel("E").minus(queries::example2("E")),
        Expr::rel("E").intersect_via_join(Expr::rel("E")),
        Expr::rel("E")
            .select(Conditions::new().data_eq(Pos::L1, Pos::L3))
            .reach_forward(),
        Expr::rel("E").join(
            Expr::rel("E"),
            trial_core::output(Pos::L1, Pos::R2, Pos::R3),
            Conditions::new()
                .obj_eq(Pos::L3, Pos::R1)
                .obj_neq(Pos::L1, Pos::R3),
        ),
    ]
}

fn stores() -> Vec<(&'static str, trial_core::Triplestore)> {
    vec![
        ("figure1", figure1_store()),
        ("chain(20)", chain_store(20)),
        ("cycle(12)", cycle_store(12)),
        ("grid(4)", grid_store(4)),
        (
            "random",
            random_store(&RandomStoreConfig {
                objects: 40,
                triples: 120,
                distinct_values: 4,
                seed: 77,
            }),
        ),
        (
            "transport",
            transport_network(&TransportConfig {
                cities: 15,
                operators: 5,
                companies: 2,
                services: 40,
                ownership_depth: 2,
                seed: 5,
            }),
        ),
        (
            "social",
            social_network(&SocialConfig {
                users: 20,
                connections: 50,
                seed: 1,
            }),
        ),
    ]
}

#[test]
fn all_engines_agree_on_all_workloads() {
    for (store_name, store) in stores() {
        for expr in expressions() {
            let mut reference = None;
            for (engine_name, engine) in engines() {
                let result = engine
                    .run(&expr, &store)
                    .unwrap_or_else(|e| panic!("{engine_name} failed on {store_name}: {e}"));
                match &reference {
                    None => reference = Some(result),
                    Some(r) => assert_eq!(
                        r, &result,
                        "{engine_name} disagrees on store {store_name}, expr {expr}"
                    ),
                }
            }
        }
    }
}

#[test]
fn stats_reflect_the_strategy_used() {
    let store = chain_store(60);
    let q = queries::reach_forward("E");
    let naive = NaiveEngine::new().evaluate(&q, &store).unwrap();
    let smart = SmartEngine::new().evaluate(&q, &store).unwrap();
    // The specialised engine does strictly less work on a reachability star.
    assert!(smart.stats.work() < naive.stats.work());
    assert!(smart.stats.reach_edges_traversed > 0);
    assert_eq!(naive.stats.reach_edges_traversed, 0);
}

#[test]
fn results_compose_through_materialisation() {
    // The algebra is compositional: materialising an intermediate result as a
    // new relation and continuing the query gives the same answer as the
    // nested expression.
    let store = figure1_store();
    let inner = Expr::rel("E").lift_middle();
    let inner_result = SmartEngine::new().run(&inner, &store).unwrap();
    let staged_store = store.with_relation("Lifted", inner_result);
    let outer_staged = Expr::rel("Lifted").right_star(
        trial_core::output(Pos::L1, Pos::L2, Pos::R3),
        Conditions::new()
            .obj_eq(Pos::L3, Pos::R1)
            .obj_eq(Pos::L2, Pos::R2),
    );
    let staged = SmartEngine::new()
        .run(&outer_staged, &staged_store)
        .unwrap();
    let nested = SmartEngine::new()
        .run(&queries::same_company_reachability("E"), &store)
        .unwrap();
    assert_eq!(staged, nested);
}
