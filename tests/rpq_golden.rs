//! Golden-file explain corpus for regular path queries: each case pins how
//! a path expression compiles — closure-free concatenation chains must keep
//! lowering to TriAL join plans the adaptive planner optimizes, while
//! closures and `max_hops` bounds must keep resolving to the `PathNfa`
//! product walk. The checked-in trees under `tests/golden/rpq/` make a
//! strategy flip (an RPQ silently degrading to the NFA walk, or a bounded
//! walk silently running a full fixpoint) a readable text diff.
//!
//! Regenerate after an *intentional* change with:
//!
//! ```bash
//! TRIAL_BLESS=1 cargo test --test rpq_golden
//! ```

use trial_core::{Permutation, Triplestore};
use trial_eval::rpq::{self, PathStrategy};
use trial_eval::SmartEngine;
use trial_workloads::labeled_chain_store;

/// One golden case: a path expression plus the `/path` endpoint knobs.
struct Case {
    /// Golden file stem under `tests/golden/rpq/`.
    name: &'static str,
    /// Path expression in `trial_parser::parse_path` concrete syntax.
    path: &'static str,
    /// `?algo=` strategy.
    strategy: PathStrategy,
    /// `?max_hops=` walk bound.
    max_hops: Option<usize>,
    /// `?limit=` bound pushed into the plan.
    limit: Option<usize>,
    /// `?order=` output order.
    order: Option<Permutation>,
    /// `?topk=` bound.
    topk: Option<usize>,
}

const fn case(name: &'static str, path: &'static str) -> Case {
    Case {
        name,
        path,
        strategy: PathStrategy::Auto,
        max_hops: None,
        limit: None,
        order: None,
        topk: None,
    }
}

const CASES: &[Case] = &[
    // Closure-free expressions: `auto` lowers these to TriAL algebra, so
    // the plans below are scans, σ-selections and joins — never a PathNfa.
    case("lower-atom", "a"),
    case("lower-seq2", "a/b"),
    case("lower-seq4", "a/b/a/b"),
    case("lower-alt", "a|b"),
    case("lower-opt", "a?/b"),
    case("lower-alt-seq", "(a|b)/(a|b)"),
    // Closures resolve to the NFA product walk.
    case("nfa-star-seq", "(a/b)*"),
    case("nfa-plus-alt", "(a|b)+"),
    // A hop bound forces the walk even on a closure-free expression: the
    // lowering evaluates full compositions and cannot count edges.
    Case {
        max_hops: Some(3),
        ..case("nfa-bounded-seq", "a/b")
    },
    // `?algo=nfa` overrides the lowering on a concatenation.
    Case {
        strategy: PathStrategy::Nfa,
        ..case("nfa-forced-seq", "a/b")
    },
    // Delivery knobs compose over the walk like over any other breaker.
    Case {
        limit: Some(5),
        ..case("nfa-limit", "(a|b)+")
    },
    Case {
        order: Some(Permutation::Pos),
        topk: Some(3),
        ..case("nfa-order-topk", "(a|b)+")
    },
    Case {
        order: Some(Permutation::Osp),
        ..case("lower-order-seq", "a/b")
    },
];

/// The `abab…`-labelled chain every case plans against.
fn store() -> Triplestore {
    labeled_chain_store(6, &["a", "b"])
}

/// Renders one case exactly the way `/path` compiles it: resolve the
/// strategy, then either lower to TriAL algebra and plan that expression,
/// or plan the NFA product walk.
fn render(case: &Case, store: &Triplestore) -> String {
    let path = trial_parser::parse_path(case.path)
        .unwrap_or_else(|e| panic!("case `{}` does not parse: {e}", case.name));
    let engine = SmartEngine::new();
    let to_nfa = case.strategy.resolves_to_nfa(&path, case.max_hops);
    let plan = if to_nfa {
        engine.plan_path_query(
            &path,
            "E",
            store,
            case.max_hops,
            case.limit,
            case.order,
            case.topk,
        )
    } else {
        engine.plan_query(
            &rpq::lower(&path, "E"),
            store,
            case.limit,
            case.order,
            case.topk,
        )
    }
    .unwrap_or_else(|e| panic!("case `{}` does not plan: {e}", case.name));
    let knob = |name: &str, v: Option<String>| match v {
        Some(v) => format!(" {name}={v}"),
        None => String::new(),
    };
    format!(
        "# path: {}\n# knobs: algo={}{}{}{}{}\n# resolved: {}\n{}",
        case.path,
        case.strategy.name(),
        knob("max_hops", case.max_hops.map(|h| h.to_string())),
        knob("limit", case.limit.map(|k| k.to_string())),
        knob("order", case.order.map(|p| p.to_string())),
        knob("topk", case.topk.map(|k| k.to_string())),
        if to_nfa { "nfa" } else { "lower" },
        plan.explain(),
    )
}

fn golden_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden/rpq")
        .join(format!("{name}.txt"))
}

/// The PR's acceptance criterion, independent of the golden files: a
/// concatenation RPQ compiles to a join plan, not an NFA walk.
#[test]
fn concatenation_lowers_to_joins_not_nfa() {
    let store = store();
    for case in CASES.iter().filter(|c| c.name.starts_with("lower-")) {
        let rendered = render(case, &store);
        assert!(
            !rendered.contains("PathNfa"),
            "case `{}` was expected to lower but planned a walk:\n{rendered}",
            case.name
        );
    }
    let seq2 = render(
        CASES.iter().find(|c| c.name == "lower-seq2").unwrap(),
        &store,
    );
    assert!(
        seq2.contains("Join"),
        "`a/b` should compile to a join plan:\n{seq2}"
    );
    for case in CASES.iter().filter(|c| c.name.starts_with("nfa-")) {
        let rendered = render(case, &store);
        assert!(
            rendered.contains("PathNfa"),
            "case `{}` was expected to walk the NFA product:\n{rendered}",
            case.name
        );
    }
}

#[test]
fn golden_rpq_corpus() {
    let bless = std::env::var("TRIAL_BLESS")
        .map(|v| v == "1")
        .unwrap_or(false);
    let store = store();
    let mut names: Vec<&str> = CASES.iter().map(|c| c.name).collect();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), CASES.len(), "duplicate golden case names");

    let mut failures = Vec::new();
    for case in CASES {
        let actual = render(case, &store);
        let path = golden_path(case.name);
        if bless {
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(&path, &actual).unwrap();
            continue;
        }
        let expected = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) => {
                failures.push(format!(
                    "── {}: missing golden file {} ({e}); run with TRIAL_BLESS=1 to create it",
                    case.name,
                    path.display()
                ));
                continue;
            }
        };
        if expected != actual {
            let mut diff = String::new();
            for line in diff_lines(&expected, &actual) {
                diff.push_str(&line);
                diff.push('\n');
            }
            failures.push(format!(
                "── {}: plan diverges from {} (TRIAL_BLESS=1 regenerates after review)\n{}",
                case.name,
                path.display(),
                diff
            ));
        }
    }
    if bless {
        eprintln!("blessed {} golden rpq files", CASES.len());
        return;
    }
    assert!(
        failures.is_empty(),
        "golden rpq corpus diverged:\n\n{}",
        failures.join("\n")
    );
}

/// A minimal line diff: shared lines print bare, divergences as -/+ pairs.
fn diff_lines(expected: &str, actual: &str) -> Vec<String> {
    let e: Vec<&str> = expected.lines().collect();
    let a: Vec<&str> = actual.lines().collect();
    let mut out = Vec::new();
    for i in 0..e.len().max(a.len()) {
        match (e.get(i), a.get(i)) {
            (Some(x), Some(y)) if x == y => out.push(format!("  {x}")),
            (Some(x), Some(y)) => {
                out.push(format!("- {x}"));
                out.push(format!("+ {y}"));
            }
            (Some(x), None) => out.push(format!("- {x}")),
            (None, Some(y)) => out.push(format!("+ {y}")),
            (None, None) => {}
        }
    }
    out
}
