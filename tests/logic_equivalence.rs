//! Property-based cross-checks of the Section 6.1 translations:
//!
//! * random FO³ formulas evaluate identically to their TriAL translations
//!   (Theorem 4, part 2 / Theorem 5);
//! * random star-free TriAL expressions evaluate identically to their FO
//!   translations and stay within six variables (Theorem 4, part 1);
//! * positive FO³ formulas translate into the equality-only fragment TriAL⁼
//!   (Theorem 5).
//!
//! Stores are kept tiny (≤ 5 objects) because the logic side is evaluated by
//! exhaustive active-domain enumeration.

use proptest::prelude::*;
use trial_core::{output, Conditions, Expr, Pos, Triplestore, TriplestoreBuilder};
use trial_eval::{Engine, SmartEngine};
use trial_logic::{answers3, fo3_to_trial, trial_to_fo, Formula};

const VARS: [&str; 3] = ["x", "y", "z"];

/// A random store over at most 5 named objects (some sharing data values).
fn arb_small_store() -> impl Strategy<Value = Triplestore> {
    (
        2u32..5,
        prop::collection::vec((0u32..4, 0u32..4, 0u32..4), 1..10),
    )
        .prop_map(|(n, triples)| {
            let mut b = TriplestoreBuilder::new();
            for i in 0..n {
                b.object_with_value(format!("o{i}"), trial_core::Value::int((i % 2) as i64));
            }
            b.relation("E");
            for (s, p, o) in triples {
                b.add_triple(
                    "E",
                    format!("o{}", s % n),
                    format!("o{}", p % n),
                    format!("o{}", o % n),
                );
            }
            b.finish()
        })
}

/// A random answer variable.
fn arb_var() -> impl Strategy<Value = String> {
    prop::sample::select(vec!["x".to_string(), "y".to_string(), "z".to_string()])
}

/// A random FO³ formula over relation `E`, `∼`, `=` and the three answer
/// variables, with bounded quantifier depth.
fn arb_fo3() -> impl Strategy<Value = Formula> {
    let leaf = prop_oneof![
        (arb_var(), arb_var(), arb_var()).prop_map(|(a, b, c)| Formula::rel_vars("E", a, b, c)),
        (arb_var(), arb_var()).prop_map(|(a, b)| Formula::eq_vars(a, b)),
        (arb_var(), arb_var()).prop_map(|(a, b)| Formula::sim_vars(a, b)),
        Just(Formula::True),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.clone().prop_map(Formula::not),
            (arb_var(), inner.clone()).prop_map(|(v, f)| Formula::exists(v, f)),
            (arb_var(), inner).prop_map(|(v, f)| Formula::forall(v, f)),
        ]
    })
}

/// A random join position.
fn arb_pos() -> impl Strategy<Value = Pos> {
    prop::sample::select(Pos::ALL.to_vec())
}

/// A random star-free TriAL expression over `E` (joins, selections, set
/// operations, complement) — the Theorem 4 fragment.
fn arb_star_free_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        3 => Just(Expr::rel("E")),
        1 => Just(Expr::Universe),
        1 => Just(Expr::Empty),
    ];
    leaf.prop_recursive(2, 8, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.union(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.minus(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.intersect(b)),
            inner.clone().prop_map(Expr::complement),
            (
                inner.clone(),
                inner.clone(),
                arb_pos(),
                arb_pos(),
                arb_pos(),
                arb_pos(),
                arb_pos()
            )
                .prop_map(|(a, b, i, j, k, x, y)| {
                    a.join(
                        b,
                        output(i, j, k),
                        Conditions::new().obj_eq(x, y.mirrored()),
                    )
                }),
            (
                inner.clone(),
                arb_pos(),
                arb_pos(),
                arb_pos(),
                any::<bool>()
            )
                .prop_map(|(a, i, j, k, data)| {
                    let cond = if data {
                        Conditions::new().data_eq(Pos::L1, Pos::L3)
                    } else {
                        Conditions::new().obj_neq(Pos::L1, Pos::L2)
                    };
                    a.join(Expr::rel("E"), output(i, j, k), Conditions::new())
                        .select(cond)
                }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Theorem 4.2 / Theorem 5: a random FO3 formula and its TriAL
    /// translation compute the same ternary query.
    #[test]
    fn fo3_formulas_agree_with_their_trial_translation(
        store in arb_small_store(),
        formula in arb_fo3(),
    ) {
        let expr = fo3_to_trial(&formula, VARS).expect("every FO3 formula translates");
        let algebra = SmartEngine::new().run(&expr, &store).expect("algebra evaluation");
        let logic = answers3(&store, &formula, VARS).expect("logic evaluation");
        prop_assert!(
            algebra.set_eq(&logic),
            "disagreement for {} on a store with {} triples",
            formula,
            store.triple_count()
        );
    }

    /// Theorem 4.1: a random star-free TriAL expression and its FO
    /// translation compute the same ternary query, using at most six
    /// variables.
    #[test]
    fn star_free_expressions_agree_with_their_fo_translation(
        store in arb_small_store(),
        expr in arb_star_free_expr(),
    ) {
        let report = trial_to_fo(&expr).expect("star-free expressions always translate");
        prop_assert!(report.formula.is_first_order());
        prop_assert!(
            report.width <= 6,
            "Theorem 4: expected at most 6 variables, got {} for {}",
            report.width,
            expr
        );
        let [x, y, z] = &report.answer_vars;
        let logic = answers3(&store, &report.formula, [x, y, z]).expect("logic evaluation");
        let algebra = SmartEngine::new().run(&expr, &store).expect("algebra evaluation");
        prop_assert!(
            algebra.set_eq(&logic),
            "disagreement for {} on a store with {} triples",
            expr,
            store.triple_count()
        );
    }

    /// The FO3 → TriAL translation never introduces inequalities (Theorem 5):
    /// formulas built without negation land in the TriAL⁼ fragment.
    #[test]
    fn positive_fo3_translations_stay_equality_only(formula in arb_fo3()) {
        let positive = formula
            .subformulas()
            .iter()
            .all(|f| !matches!(f, Formula::Not(_) | Formula::Forall(_, _)));
        prop_assume!(positive);
        let expr = fo3_to_trial(&formula, VARS).expect("FO3 translation");
        let report = trial_core::fragment::analyze(&expr);
        prop_assert!(
            report.fragment().equalities_only(),
            "expected a TriAL= expression for {}, got {:?}",
            formula,
            report.fragment()
        );
    }
}
