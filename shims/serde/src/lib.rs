//! Offline stand-in for the `serde` facade.
//!
//! The workspace pins `serde` to this local path crate because the build
//! environment has no network access to crates.io. The data-model crates use
//! `#[derive(Serialize, Deserialize)]` purely as forward-looking annotations;
//! no code path serializes anything yet. The traits here are empty markers and
//! the re-exported derives expand to nothing, so swapping in the real serde
//! later is a one-line Cargo.toml change.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Empty marker matching `serde::Serialize`'s role in type bounds.
pub trait Serialize {}

/// Empty marker matching `serde::Deserialize`'s role in type bounds.
pub trait Deserialize<'de> {}
