//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace pins
//! `proptest` to this local path crate. It reimplements the subset of the
//! proptest API the test-suite uses — the [`Strategy`] trait with
//! `prop_map` / `prop_recursive` / `boxed`, ranges and tuples as strategies,
//! `prop::collection::vec`, `prop::sample::select`, `Just`, `any::<bool>()`,
//! weighted `prop_oneof!`, and the `proptest!` test macro with
//! `ProptestConfig` — as a *generate-only* harness:
//!
//! * values are generated from a deterministic per-test RNG (seeded from the
//!   test's module path and name), so failures are reproducible;
//! * there is **no shrinking**: a failing case panics with the standard
//!   assertion message and the generated values are best inspected via the
//!   assertion's own formatting;
//! * `prop_assume!` rejects the sample and draws a fresh one, exactly like
//!   the real crate.

#![forbid(unsafe_code)]

use std::marker::PhantomData;
use std::ops::Range;

pub mod test_runner {
    //! Test-driver types referenced by the [`proptest!`](crate::proptest) macro.

    /// How many accepted samples each property runs.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of accepted (non-rejected) samples per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` samples.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 32 }
        }
    }

    /// Marker returned by `prop_assume!` when a sample is rejected.
    #[derive(Debug)]
    pub struct Reject;

    /// Deterministic SplitMix64 generator used to drive strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from an arbitrary string (test name).
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the name gives a stable per-test seed.
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for byte in name.bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: hash }
        }

        /// Next raw 64 bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw below `bound` (> 0).
        pub fn below(&mut self, bound: usize) -> usize {
            (self.next_u64() % bound as u64) as usize
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use super::test_runner::TestRng;
    use std::rc::Rc;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Builds a bounded recursive strategy: `f` receives the strategy for
        /// the previous depth level and returns the strategy for one level
        /// deeper; leaves are mixed in at every level so generation always
        /// terminates. `_desired_size` and `_expected_branch` are accepted
        /// for API compatibility and ignored.
        fn prop_recursive<F, S>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
            S: Strategy<Value = Self::Value> + 'static,
        {
            let leaf = self.boxed();
            let mut current = leaf.clone();
            for _ in 0..depth {
                let deeper = f(current.clone()).boxed();
                current = Union::new(vec![(1, leaf.clone()), (3, deeper)]).boxed();
            }
            current
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// A cheaply clonable type-erased strategy.
    pub struct BoxedStrategy<T>(pub(crate) Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Weighted choice between type-erased strategies ([`prop_oneof!`](crate::prop_oneof)).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u32,
    }

    impl<T> Union<T> {
        /// Builds a weighted union. Weights must sum to a positive value.
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total = arms.iter().map(|(w, _)| *w).sum();
            assert!(total > 0, "prop_oneof! needs at least one weighted arm");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total as usize) as u32;
            for (weight, arm) in &self.arms {
                if pick < *weight {
                    return arm.generate(rng);
                }
                pick -= weight;
            }
            unreachable!("weights are positive and sum to total")
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

use strategy::Strategy;
use test_runner::TestRng;

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Strategy for types with a canonical "any value" distribution.
pub struct Any<T>(PhantomData<T>);

/// The canonical strategy for `T` (only `bool` is needed by this workspace).
pub fn any<T>() -> Any<T> {
    Any(PhantomData)
}

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

pub mod prop {
    //! The `prop::` namespace (`collection`, `sample`).

    pub mod collection {
        //! Collection strategies.
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use std::ops::Range;

        /// Strategy for `Vec`s with a length drawn from `len`.
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        /// Generates vectors of values from `element` with length in `len`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let span = self.len.end.saturating_sub(self.len.start).max(1);
                let len = self.len.start + rng.below(span);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    pub mod sample {
        //! Sampling strategies.
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Uniform choice from a fixed list.
        pub struct Select<T: Clone>(Vec<T>);

        /// Picks uniformly from `options` (must be non-empty).
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select from an empty list");
            Select(options)
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn generate(&self, rng: &mut TestRng) -> T {
                self.0[rng.below(self.0.len())].clone()
            }
        }
    }
}

pub mod prelude {
    //! Everything the tests import via `use proptest::prelude::*`.
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Weighted or unweighted choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Asserts inside a property; panics (no shrinking) on failure.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Rejects the current sample; the driver draws a fresh one.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::Reject);
        }
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...)` body runs for
/// `cases` accepted samples with deterministically generated arguments.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        #[allow(clippy::redundant_closure_call)]
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            while accepted < config.cases {
                attempts += 1;
                assert!(
                    attempts <= config.cases.saturating_mul(100).saturating_add(1000),
                    "too many samples rejected by prop_assume!"
                );
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                let outcome: ::std::result::Result<(), $crate::test_runner::Reject> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if outcome.is_ok() {
                    accepted += 1;
                }
            }
        }
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    (($cfg:expr);) => {};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_and_tuples((a, b) in (0u32..10, 5usize..9), flag in any::<bool>()) {
            prop_assert!(a < 10);
            prop_assert!((5..9).contains(&b));
            let _ = flag;
        }

        #[test]
        fn assume_rejects(v in 0u32..100) {
            prop_assume!(v % 2 == 0);
            prop_assert_eq!(v % 2, 0);
        }
    }

    proptest! {
        #[test]
        fn recursive_strategies_terminate(n in arb_nested()) {
            prop_assert!(depth(&n) <= 4);
        }
    }

    #[derive(Debug, Clone)]
    enum Nested {
        Leaf(#[allow(dead_code)] u32),
        Node(Box<Nested>, Box<Nested>),
    }

    fn depth(n: &Nested) -> usize {
        match n {
            Nested::Leaf(_) => 1,
            Nested::Node(a, b) => 1 + depth(a).max(depth(b)),
        }
    }

    fn arb_nested() -> impl Strategy<Value = Nested> {
        (0u32..10)
            .prop_map(Nested::Leaf)
            .prop_recursive(3, 8, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| Nested::Node(Box::new(a), Box::new(b)))
            })
    }

    #[test]
    fn select_and_vec() {
        let mut rng = crate::test_runner::TestRng::deterministic("select_and_vec");
        let sel = prop::sample::select(vec![1, 2, 3]);
        for _ in 0..20 {
            assert!((1..=3).contains(&sel.generate(&mut rng)));
        }
        let v = prop::collection::vec(0u32..5, 2..6).generate(&mut rng);
        assert!((2..6).contains(&v.len()));
    }

    #[test]
    fn oneof_respects_arms() {
        let mut rng = crate::test_runner::TestRng::deterministic("oneof");
        let s = prop_oneof![3 => Just(1u32), 1 => Just(2u32)];
        let mut seen = [0u32; 3];
        for _ in 0..200 {
            seen[s.generate(&mut rng) as usize - 1] += 1;
        }
        assert!(seen[0] > seen[1]);
        assert!(seen[1] > 0);
    }
}
