//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no access to crates.io, so the workspace pins
//! `criterion` to this local path crate. It keeps the API surface the bench
//! files use (`Criterion`, `benchmark_group`, `bench_with_input`,
//! `bench_function`, `BenchmarkId`, `black_box`, `criterion_group!`,
//! `criterion_main!`) and implements a small but honest wall-clock harness:
//! a warm-up iteration, then `sample_size` timed samples, reporting the
//! median, minimum and maximum per-iteration time.
//!
//! It produces no HTML reports and performs no statistical regression
//! analysis; swapping the real criterion back in is a one-line Cargo.toml
//! change.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of a single benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A two-part id `function/parameter`.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Passed to the closure of every benchmark; times the supplied routine.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`: one warm-up call, then `sample_size` timed samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn report(name: &str, samples: &mut [Duration]) {
    if samples.is_empty() {
        println!("{name:<60} (no samples)");
        return;
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let min = samples[0];
    let max = samples[samples.len() - 1];
    println!(
        "{name:<60} time: [{:>10.3?} {:>10.3?} {:>10.3?}]  ({} samples)",
        min,
        median,
        max,
        samples.len()
    );
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
    };
    f(&mut bencher);
    report(name, &mut bencher.samples);
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Upper bound on measurement time — accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id.into());
        run_bench(&name, self.sample_size, |b| f(b, input));
        self
    }

    /// Benchmarks a plain routine.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.name, id.into());
        run_bench(&name, self.sample_size, f);
        self
    }

    /// Ends the group (prints a separating blank line).
    pub fn finish(&mut self) {
        println!();
    }
}

/// The harness entry point handed to every `criterion_group!` function.
#[derive(Default)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Criterion {
    /// Creates a harness with the default sample size (10).
    pub fn new() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size.max(1);
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            _criterion: self,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size.max(1);
        run_bench(name, sample_size, f);
        self
    }
}

/// Declares a group function running each listed benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::new();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
