//! Offline stand-in for the `rand` crate (0.9-style API surface).
//!
//! The build environment has no access to crates.io, so the workspace pins
//! `rand` to this local path crate. It implements exactly the surface the
//! workload generators and tests use: `StdRng::seed_from_u64`,
//! `Rng::random_range`, `Rng::random_bool` and `Rng::random::<bool>()`,
//! backed by the SplitMix64 generator — deterministic, seedable, and easily
//! good enough for synthetic-workload generation (it is the seeding
//! generator recommended by the xoshiro authors).

#![forbid(unsafe_code)]

use std::ops::Range;

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be drawn uniformly from a `Range`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Maps a raw 64-bit draw into `lo..hi` (half-open, `lo < hi`).
    fn from_draw(draw: u64, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn from_draw(draw: u64, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                let offset = (draw as u128 % span) as i128;
                (lo as i128 + offset) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The subset of `rand::Rng` the workspace uses.
pub trait Rng {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform draw from a half-open range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        assert!(range.start < range.end, "cannot sample from an empty range");
        T::from_draw(self.next_u64(), range.start, range.end)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn random_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }

    /// A fair coin flip (the only `random::<T>()` instantiation used).
    fn random(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// SplitMix64: tiny, seedable, passes BigCrush on 64-bit outputs.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.random_range(10usize..20);
            assert!((10..20).contains(&v));
            let w = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn bools_take_both_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let heads = (0..100).filter(|_| rng.random_bool(0.5)).count();
        assert!(heads > 20 && heads < 80);
    }
}
