//! No-op stand-ins for serde's derive macros.
//!
//! The workspace builds in an offline environment, so the real `serde_derive`
//! is unavailable. The crates only use `#[derive(Serialize, Deserialize)]` as
//! forward-looking annotations (nothing serializes yet), so the derives here
//! accept the syntax (including `#[serde(...)]` helper attributes) and emit no
//! code at all.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
