//! The FO³ → TriAL translation of Theorem 4 (part 2) / Theorem 5.
//!
//! Theorem 4 shows that every FO³ formula over the vocabulary
//! `⟨E1, …, En, ∼⟩` has an equivalent TriAL expression, and the construction
//! never introduces inequalities, so the image actually lands in the
//! equality-only fragment TriAL⁼ (Theorem 5). The key idea from the proof is
//! that projection is not needed: because the answer always has exactly three
//! slots, positions belonging to variables that a sub-formula does not
//! mention simply range over the whole active domain, which the algebra
//! expresses by joining with the universal relation `U`.
//!
//! [`fo3_to_trial`] implements the construction relative to a fixed ordered
//! triple of variable names `(v1, v2, v3)`: the resulting expression returns
//! exactly the triples `(a1, a2, a3)` such that the formula holds under
//! `v1 ↦ a1, v2 ↦ a2, v3 ↦ a3` (with unmentioned slots unconstrained) — the
//! same convention [`crate::eval::answers3`] uses, so the two can be compared
//! triple-for-triple.

use crate::fo::{Formula, Term};
use std::fmt;
use trial_core::{output, Conditions, Expr, Pos};

/// Errors raised by the FO³ → TriAL translation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fo3Error {
    /// The formula uses a variable name outside the three answer variables,
    /// i.e. it is not an FO³ formula over those names.
    TooManyVariables(String),
    /// The formula uses the transitive-closure operator; Theorem 4's
    /// construction covers plain FO only (Theorem 6 handles TrCl³ with a
    /// separate construction not implemented here).
    TransitiveClosureUnsupported,
    /// A `∼` atom with an object constant argument — the one-sorted
    /// vocabulary of the paper has no such atoms.
    SimWithConstant(String),
    /// The answer variables are not pairwise distinct.
    DuplicateAnswerVariable(String),
}

impl fmt::Display for Fo3Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fo3Error::TooManyVariables(v) => write!(
                f,
                "variable `{v}` is not one of the three answer variables — the formula is not FO3"
            ),
            Fo3Error::TransitiveClosureUnsupported => {
                write!(f, "trcl operators are outside the FO3 -> TriAL translation")
            }
            Fo3Error::SimWithConstant(c) => {
                write!(f, "~ atom with constant argument `{c}` is not supported")
            }
            Fo3Error::DuplicateAnswerVariable(v) => {
                write!(f, "answer variable `{v}` is repeated")
            }
        }
    }
}

impl std::error::Error for Fo3Error {}

/// Result alias for the translation.
pub type Result<T> = std::result::Result<T, Fo3Error>;

const SLOT_POS: [Pos; 3] = [Pos::L1, Pos::L2, Pos::L3];
const PAD_POS: [Pos; 3] = [Pos::R1, Pos::R2, Pos::R3];

/// Index of a variable among the answer variables.
fn slot_of(vars: &[&str; 3], name: &str) -> Result<usize> {
    vars.iter()
        .position(|v| *v == name)
        .ok_or_else(|| Fo3Error::TooManyVariables(name.to_string()))
}

/// Translates an FO³ formula (over the answer variables `vars`) into a TriAL
/// expression following Theorem 4, part 2.
///
/// The expression evaluates (with `trial-eval`) to exactly the triple set
/// that [`crate::eval::answers3`]`(store, formula, vars)` computes, for every
/// triplestore. The construction uses only equalities in its join and
/// selection conditions, so the image is inside TriAL⁼ whenever the formula
/// itself has no negated equalities hidden under an odd number of negations —
/// in general it is plain TriAL (Theorem 5 discusses the equality-only case).
pub fn fo3_to_trial(formula: &Formula, vars: [&str; 3]) -> Result<Expr> {
    if vars[0] == vars[1] || vars[0] == vars[2] || vars[1] == vars[2] {
        let dup = if vars[0] == vars[1] { vars[1] } else { vars[2] };
        return Err(Fo3Error::DuplicateAnswerVariable(dup.to_string()));
    }
    translate(formula, &vars)
}

fn translate(formula: &Formula, vars: &[&str; 3]) -> Result<Expr> {
    match formula {
        Formula::True => Ok(Expr::Universe),
        Formula::False => Ok(Expr::Empty),
        Formula::Rel { rel, args } => atom_to_expr(rel, args, vars),
        Formula::Eq(a, b) => equality_to_expr(a, b, vars, /*data=*/ false),
        Formula::Sim(a, b) => equality_to_expr(a, b, vars, /*data=*/ true),
        Formula::Not(inner) => Ok(translate(inner, vars)?.complement()),
        Formula::And(a, b) => Ok(translate(a, vars)?.intersect(translate(b, vars)?)),
        Formula::Or(a, b) => Ok(translate(a, vars)?.union(translate(b, vars)?)),
        Formula::Exists(v, body) => {
            let slot = slot_of(vars, v)?;
            let inner = translate(body, vars)?;
            Ok(project_out(inner, slot))
        }
        Formula::Forall(v, body) => {
            // ∀v φ ≡ ¬∃v ¬φ.
            let slot = slot_of(vars, v)?;
            let inner = translate(body, vars)?.complement();
            Ok(project_out(inner, slot).complement())
        }
        Formula::Trcl { .. } => Err(Fo3Error::TransitiveClosureUnsupported),
    }
}

/// Replaces slot `slot` of the result by an unconstrained active-domain
/// object: `e ✶^{…}_{} U` keeping the other two slots from `e` and taking
/// slot `slot` from `U`. This is exactly how the proof of Theorem 4 handles
/// `∃x_i φ` without a projection operator.
fn project_out(expr: Expr, slot: usize) -> Expr {
    let mut spec = [Pos::L1, Pos::L2, Pos::L3];
    spec[slot] = PAD_POS[slot];
    expr.join(
        Expr::Universe,
        output(spec[0], spec[1], spec[2]),
        Conditions::new(),
    )
}

/// Translates a relation atom `E(t1, t2, t3)`.
fn atom_to_expr(rel: &str, args: &[Term; 3], vars: &[&str; 3]) -> Result<Expr> {
    // Selection conditions on the base relation: constants pin positions,
    // repeated variables force equality between positions.
    let mut cond = Conditions::new();
    // first_occurrence[m] = base position (0..3) where answer variable m
    // first appears in the atom, if it appears at all.
    let mut first_occurrence: [Option<usize>; 3] = [None; 3];
    for (base_pos, term) in args.iter().enumerate() {
        match term {
            Term::Const(name) => {
                cond = cond.obj_eq_const(SLOT_POS[base_pos], name.clone());
            }
            Term::Var(v) => {
                let m = slot_of(vars, v)?;
                match first_occurrence[m] {
                    None => first_occurrence[m] = Some(base_pos),
                    Some(first) => {
                        cond = cond.obj_eq(SLOT_POS[first], SLOT_POS[base_pos]);
                    }
                }
            }
        }
    }
    let base = if cond.is_empty() {
        Expr::rel(rel)
    } else {
        Expr::rel(rel).select(cond)
    };
    // Arrange the output: slot m comes from the base position where the
    // variable occurs, or from the universal relation if it does not occur.
    let mut spec = [Pos::R1, Pos::R2, Pos::R3];
    let mut any_missing = false;
    for m in 0..3 {
        match first_occurrence[m] {
            Some(base_pos) => spec[m] = SLOT_POS[base_pos],
            None => {
                spec[m] = PAD_POS[m];
                any_missing = true;
            }
        }
    }
    if any_missing || spec != [Pos::L1, Pos::L2, Pos::L3] {
        Ok(base.join(
            Expr::Universe,
            output(spec[0], spec[1], spec[2]),
            Conditions::new(),
        ))
    } else {
        Ok(base)
    }
}

/// Translates `t1 = t2` (or `∼(t1, t2)` when `data` is true).
fn equality_to_expr(a: &Term, b: &Term, vars: &[&str; 3], data: bool) -> Result<Expr> {
    match (a, b) {
        (Term::Var(va), Term::Var(vb)) => {
            let sa = slot_of(vars, va)?;
            let sb = slot_of(vars, vb)?;
            if sa == sb && !data {
                return Ok(Expr::Universe);
            }
            if sa == sb && data {
                // ρ(x) = ρ(x) is always true.
                return Ok(Expr::Universe);
            }
            let cond = if data {
                Conditions::new().data_eq(SLOT_POS[sa], SLOT_POS[sb])
            } else {
                Conditions::new().obj_eq(SLOT_POS[sa], SLOT_POS[sb])
            };
            Ok(Expr::Universe.select(cond))
        }
        (Term::Var(v), Term::Const(c)) | (Term::Const(c), Term::Var(v)) => {
            if data {
                return Err(Fo3Error::SimWithConstant(c.clone()));
            }
            let slot = slot_of(vars, v)?;
            Ok(Expr::Universe.select(Conditions::new().obj_eq_const(SLOT_POS[slot], c.clone())))
        }
        (Term::Const(c1), Term::Const(c2)) => {
            if data {
                return Err(Fo3Error::SimWithConstant(c1.clone()));
            }
            // Distinct object names denote distinct objects.
            if c1 == c2 {
                Ok(Expr::Universe)
            } else {
                Ok(Expr::Empty)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::answers3;
    use trial_core::{Triplestore, TriplestoreBuilder};
    use trial_eval::evaluate;
    use trial_workloads::transport::figure1_store;

    const VARS: [&str; 3] = ["x", "y", "z"];

    fn check_equivalent(formula: &Formula, store: &Triplestore) {
        let expr = fo3_to_trial(formula, VARS).expect("translation succeeds");
        let algebra = evaluate(&expr, store).expect("algebra evaluation").result;
        let logic = answers3(store, formula, VARS).expect("logic evaluation");
        assert!(
            algebra.set_eq(&logic),
            "FO3 translation disagrees for {formula}:\n algebra {:?}\n logic   {:?}",
            store.display_triples(&algebra),
            store.display_triples(&logic)
        );
    }

    fn small_store() -> Triplestore {
        let mut b = TriplestoreBuilder::new();
        b.add_triple("E", "a", "b", "c");
        b.add_triple("E", "c", "b", "a");
        b.add_triple("E", "a", "a", "a");
        b.finish()
    }

    #[test]
    fn relation_atom_in_answer_order() {
        let store = small_store();
        check_equivalent(&Formula::rel_vars("E", "x", "y", "z"), &store);
    }

    #[test]
    fn relation_atom_with_permuted_variables() {
        let store = small_store();
        check_equivalent(&Formula::rel_vars("E", "z", "x", "y"), &store);
        check_equivalent(&Formula::rel_vars("E", "y", "z", "x"), &store);
    }

    #[test]
    fn relation_atom_with_repeated_variables_and_constants() {
        let store = small_store();
        check_equivalent(&Formula::rel_vars("E", "x", "x", "z"), &store);
        check_equivalent(&Formula::rel_vars("E", "x", "x", "x"), &store);
        check_equivalent(
            &Formula::rel("E", Term::var("x"), Term::constant("b"), Term::var("z")),
            &store,
        );
    }

    #[test]
    fn equalities_and_boolean_connectives() {
        let store = small_store();
        check_equivalent(&Formula::eq_vars("x", "y"), &store);
        check_equivalent(&Formula::Eq(Term::var("x"), Term::constant("a")), &store);
        check_equivalent(
            &Formula::rel_vars("E", "x", "y", "z").and(Formula::eq_vars("x", "z").not()),
            &store,
        );
        check_equivalent(
            &Formula::rel_vars("E", "x", "y", "z").or(Formula::rel_vars("E", "z", "y", "x")),
            &store,
        );
    }

    #[test]
    fn quantifiers_translate_to_universe_joins() {
        let store = figure1_store();
        // ∃y E(x, y, z): "x connected to z by some service".
        let f = Formula::exists("y", Formula::rel_vars("E", "x", "y", "z"));
        check_equivalent(&f, &store);
        // ∃y∃z E(x, y, z): "x has an outgoing triple".
        let g = Formula::exists_many(["y", "z"], Formula::rel_vars("E", "x", "y", "z"));
        check_equivalent(&g, &store);
        // ∀x ∃y∃z E(x,y,z) as a "sentence" padded to three slots.
        let h = Formula::forall(
            "x",
            Formula::exists_many(["y", "z"], Formula::rel_vars("E", "x", "y", "z")),
        );
        check_equivalent(&h, &store);
    }

    #[test]
    fn sim_atoms_translate_to_data_equalities() {
        let mut b = TriplestoreBuilder::new();
        let a = b.object_with_value("a", 1i64);
        let c = b.object_with_value("c", 1i64);
        let d = b.object_with_value("d", 2i64);
        b.add_triple_ids("E", a, c, d);
        b.add_triple_ids("E", d, c, a);
        let store = b.finish();
        check_equivalent(&Formula::sim_vars("x", "y"), &store);
        check_equivalent(
            &Formula::rel_vars("E", "x", "y", "z").and(Formula::sim_vars("x", "z").not()),
            &store,
        );
    }

    #[test]
    fn variable_reuse_via_requantification_stays_in_fo3() {
        let store = figure1_store();
        // ∃y (E(x,y,z) ∧ ∃x E(y,x,z)) — re-quantifies x, still FO3.
        let f = Formula::exists(
            "y",
            Formula::rel_vars("E", "x", "y", "z")
                .and(Formula::exists("x", Formula::rel_vars("E", "y", "x", "z"))),
        );
        assert_eq!(f.width(), 3);
        check_equivalent(&f, &store);
    }

    #[test]
    fn fourth_variable_is_rejected() {
        let f = Formula::exists("w", Formula::rel_vars("E", "x", "y", "w"));
        assert!(matches!(
            fo3_to_trial(&f, VARS),
            Err(Fo3Error::TooManyVariables(_))
        ));
    }

    #[test]
    fn trcl_is_rejected() {
        let f = Formula::Trcl {
            xs: vec!["x".into()],
            ys: vec!["y".into()],
            phi: Box::new(Formula::True),
            from: vec![Term::var("x")],
            to: vec![Term::var("y")],
        };
        assert!(matches!(
            fo3_to_trial(&f, VARS),
            Err(Fo3Error::TransitiveClosureUnsupported)
        ));
    }

    #[test]
    fn duplicate_answer_variables_are_rejected() {
        assert!(matches!(
            fo3_to_trial(&Formula::True, ["x", "x", "z"]),
            Err(Fo3Error::DuplicateAnswerVariable(_))
        ));
    }

    #[test]
    fn constant_equalities_fold_to_universe_or_empty() {
        let store = small_store();
        check_equivalent(
            &Formula::Eq(Term::constant("a"), Term::constant("a")),
            &store,
        );
        check_equivalent(
            &Formula::Eq(Term::constant("a"), Term::constant("b")),
            &store,
        );
    }

    #[test]
    fn image_of_translation_is_equality_only_for_positive_formulas() {
        // Theorem 5: the construction introduces no inequalities.
        let f = Formula::exists(
            "y",
            Formula::rel_vars("E", "x", "y", "z").and(Formula::sim_vars("x", "z")),
        );
        let expr = fo3_to_trial(&f, VARS).unwrap();
        let report = trial_core::fragment::analyze(&expr);
        assert!(
            report.fragment().equalities_only(),
            "expected a TriAL= expression, got {:?}",
            report.fragment()
        );
    }
}
