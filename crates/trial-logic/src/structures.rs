//! The separating structures used in the proofs of Theorems 4–6.
//!
//! Section 6.1 separates TriAL from finite-variable logics by exhibiting
//! pairs of structures that one language distinguishes and the other cannot:
//!
//! * the **full stores** `T_n` with `n` objects and `E = O_n³` (all sharing a
//!   single data value) — `T_3`/`T_4` witness that "at least four distinct
//!   objects" is TriAL-definable but not FO³-definable, and `T_5`/`T_6` do
//!   the same for "at least six objects" against FO⁵;
//! * the structures **A** and **B** from the proof of Theorem 4 (part 3),
//!   which agree on all TriAL (in fact all FO³-join) queries yet are
//!   distinguished by an FO⁴ sentence built from the auxiliary formula `ψ`;
//! * the corresponding **FO formulas**: the "at least k distinct objects"
//!   sentences and the `ψ` / `φ` formulas of the proof.
//!
//! These constructors feed the expressiveness tests and the `tables` harness
//! entry that replays the separations empirically.

use crate::fo::Formula;
use trial_core::{Triplestore, TriplestoreBuilder, Value};

/// The full triplestore `T_n`: objects `o1, …, on`, a single relation
/// `E = {o1,…,on}³`, and the same data value on every object.
///
/// Used in the proofs of Theorems 4 and 6: `T_3` and `T_4` are
/// indistinguishable in (infinitary) three-variable logic, `T_5` and `T_6`
/// in five-variable logic.
pub fn full_store(n: usize) -> Triplestore {
    let mut b = TriplestoreBuilder::new();
    let ids: Vec<_> = (1..=n)
        .map(|i| b.object_with_value(format!("o{i}"), Value::int(1)))
        .collect();
    for &s in &ids {
        for &p in &ids {
            for &o in &ids {
                b.add_triple_ids("E", s, p, o);
            }
        }
    }
    b.finish()
}

/// The FO sentence "there exist at least `k` pairwise-distinct objects",
/// using exactly `k` variables — so it lies in FO^k but (provably) not in
/// FO^(k−1).
pub fn at_least_k_objects_sentence(k: usize) -> Formula {
    let vars: Vec<String> = (0..k).map(|i| format!("x{i}")).collect();
    let mut distinct = Vec::new();
    for i in 0..k {
        for j in (i + 1)..k {
            distinct.push(Formula::eq_vars(vars[i].clone(), vars[j].clone()).not());
        }
    }
    Formula::exists_many(vars, Formula::and_all(distinct))
}

/// The auxiliary formula `ψ(x, y, z)` from the proof of Theorem 4 (part 3):
///
/// `ψ(x, y, z) = ∃w (E(x,w,y) ∧ E(y,w,x) ∧ E(y,w,z) ∧ E(z,w,y) ∧ E(x,w,z) ∧ E(z,w,x) ∧ x≠y ∧ x≠z ∧ y≠z)`
///
/// i.e. "x, y, z are pairwise distinct and mutually connected through a
/// common middle object w".
pub fn theorem4_psi(x: &str, y: &str, z: &str) -> Formula {
    let atoms = Formula::and_all([
        Formula::rel_vars("E", x, "w", y),
        Formula::rel_vars("E", y, "w", x),
        Formula::rel_vars("E", y, "w", z),
        Formula::rel_vars("E", z, "w", y),
        Formula::rel_vars("E", x, "w", z),
        Formula::rel_vars("E", z, "w", x),
        Formula::eq_vars(x, y).not(),
        Formula::eq_vars(x, z).not(),
        Formula::eq_vars(y, z).not(),
    ]);
    Formula::exists("w", atoms)
}

/// The FO⁴ sentence from the proof of Theorem 4 (part 3) that distinguishes
/// [`structure_a`] from [`structure_b`] but is not expressible in TriAL:
///
/// `∃x∃y∃z∃w (ψ(x,y,w) ∧ ψ(x,w,z) ∧ ψ(w,y,z) ∧ ψ(x,y,z) ∧ pairwise-distinct)`.
pub fn theorem4_fo4_sentence() -> Formula {
    // The inner ∃z is pushed past the conjuncts that do not mention z, so the
    // exhaustive evaluator short-circuits on the (x, y, v) triples that fail
    // ψ — semantically this is exactly the sentence from the proof.
    let inner = Formula::and_all([
        theorem4_psi("x", "v", "z"),
        theorem4_psi("v", "y", "z"),
        theorem4_psi("x", "y", "z"),
        Formula::eq_vars("x", "z").not(),
        Formula::eq_vars("y", "z").not(),
        Formula::eq_vars("z", "v").not(),
    ]);
    let body = Formula::and_all([
        theorem4_psi("x", "y", "v"),
        Formula::eq_vars("x", "y").not(),
        Formula::eq_vars("x", "v").not(),
        Formula::eq_vars("y", "v").not(),
        Formula::exists("z", inner),
    ]);
    Formula::exists_many(["x", "y", "v"], body)
}

fn add_symmetric(b: &mut TriplestoreBuilder, u: &str, label: &str, v: &str) {
    b.add_triple("E", u, label, v);
    b.add_triple("E", v, label, u);
}

/// Structure **A** from the proof of Theorem 4 (part 3).
///
/// Objects `a, b, c`, `d1, …, d9` and middle objects `e1, …, e12`; the core
/// triangle `a, b, c` is connected through *every* `e_i`, and each `d_j` is
/// connected to all of `a, b, c` through `e_1, …, e_4`. (The appendix text
/// indexes the `d`s up to 12 in the edge list while introducing nine of them;
/// we follow the object declaration — `d1 … d9` — so that A and B share the
/// same object set, which is what the back-and-forth argument needs.)
pub fn structure_a() -> Triplestore {
    let mut b = TriplestoreBuilder::new();
    let core = ["a", "b", "c"];
    for i in 1..=12 {
        let label = format!("e{i}");
        for (x_idx, x) in core.iter().enumerate() {
            for y in core.iter().skip(x_idx + 1) {
                add_symmetric(&mut b, x, &label, y);
            }
        }
    }
    for i in 1..=4 {
        let label = format!("e{i}");
        for j in 1..=9 {
            let d = format!("d{j}");
            for x in core {
                add_symmetric(&mut b, x, &label, &d);
            }
        }
    }
    b.finish()
}

/// Structure **B** from the proof of Theorem 4 (part 3).
///
/// The same objects as [`structure_a`], but the witnesses are "spread out":
/// the triangle `a, b, c` only shares the middles `e1, …, e3`, and each pair
/// from the triangle forms its own little gadget with a private block of
/// `d_j`s and `e_i`s, so no *single* middle object connects four pairwise
/// distinct objects the way the FO⁴ sentence requires.
pub fn structure_b() -> Triplestore {
    let mut b = TriplestoreBuilder::new();
    let core = ["a", "b", "c"];
    // Triangle a,b,c through e1..e3.
    for i in 1..=3 {
        let label = format!("e{i}");
        for (x_idx, x) in core.iter().enumerate() {
            for y in core.iter().skip(x_idx + 1) {
                add_symmetric(&mut b, x, &label, y);
            }
        }
    }
    // (a, b) with d1..d3 through e4..e6.
    for i in 4..=6 {
        let label = format!("e{i}");
        add_symmetric(&mut b, "a", &label, "b");
        for j in 1..=3 {
            let d = format!("d{j}");
            add_symmetric(&mut b, "a", &label, &d);
            add_symmetric(&mut b, "b", &label, &d);
        }
    }
    // (a, c) with d4..d6 through e7..e9.
    for i in 7..=9 {
        let label = format!("e{i}");
        add_symmetric(&mut b, "a", &label, "c");
        for j in 4..=6 {
            let d = format!("d{j}");
            add_symmetric(&mut b, "a", &label, &d);
            add_symmetric(&mut b, "c", &label, &d);
        }
    }
    // (b, c) with d7..d9 through e10..e12.
    for i in 10..=12 {
        let label = format!("e{i}");
        add_symmetric(&mut b, "b", &label, "c");
        for j in 7..=9 {
            let d = format!("d{j}");
            add_symmetric(&mut b, "b", &label, &d);
            add_symmetric(&mut b, "c", &label, &d);
        }
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate_closed;
    use trial_core::builder::queries;
    use trial_eval::evaluate;

    #[test]
    fn full_stores_have_the_expected_shape() {
        for n in 1..=4 {
            let t = full_store(n);
            assert_eq!(t.object_count(), n);
            assert_eq!(t.triple_count(), n * n * n);
            // All objects share the same data value.
            let objs: Vec<_> = t.objects().collect();
            for &o in &objs {
                assert!(t.data_eq(objs[0], o));
            }
        }
    }

    #[test]
    fn at_least_k_objects_sentence_counts_correctly() {
        let sentence4 = at_least_k_objects_sentence(4);
        assert_eq!(sentence4.width(), 4);
        assert!(!evaluate_closed(&full_store(3), &sentence4).unwrap());
        assert!(evaluate_closed(&full_store(4), &sentence4).unwrap());
        assert!(evaluate_closed(&full_store(5), &sentence4).unwrap());
    }

    #[test]
    fn trial_separating_queries_agree_with_the_sentences_on_full_stores() {
        // Theorem 4: the TriAL query "≥ 4 objects" distinguishes T3 from T4;
        // "≥ 6 objects" distinguishes T5 from T6 (and needs 6 variables).
        let four = queries::at_least_four_objects();
        assert!(evaluate(&four, &full_store(3)).unwrap().result.is_empty());
        assert!(!evaluate(&four, &full_store(4)).unwrap().result.is_empty());
        let six = queries::at_least_six_objects();
        assert!(evaluate(&six, &full_store(5)).unwrap().result.is_empty());
        assert!(!evaluate(&six, &full_store(6)).unwrap().result.is_empty());
    }

    #[test]
    fn psi_has_width_four_and_detects_triangles_through_a_common_middle() {
        let psi = theorem4_psi("x", "y", "z");
        assert_eq!(psi.width(), 4);
        let a = structure_a();
        // In structure A the triple (a, b, c) is connected through every e_i.
        let mut asg = crate::eval::Assignment::new();
        asg.bind("x", a.object_id("a").unwrap());
        asg.bind("y", a.object_id("b").unwrap());
        asg.bind("z", a.object_id("c").unwrap());
        assert!(crate::eval::satisfies(&a, &psi, &mut asg).unwrap());
        // But not for three of the d_j, which are never mutually connected.
        asg.bind("x", a.object_id("d1").unwrap());
        asg.bind("y", a.object_id("d2").unwrap());
        asg.bind("z", a.object_id("d3").unwrap());
        assert!(!crate::eval::satisfies(&a, &psi, &mut asg).unwrap());
    }

    #[test]
    fn structures_a_and_b_have_the_same_objects() {
        let a = structure_a();
        let b = structure_b();
        assert_eq!(a.object_count(), b.object_count());
        assert!(a.triple_count() > b.triple_count());
        // Both contain the triangle objects and the d/e families.
        for name in ["a", "b", "c", "d1", "d9", "e1", "e12"] {
            assert!(a.object_id(name).is_some(), "A misses {name}");
            assert!(b.object_id(name).is_some(), "B misses {name}");
        }
    }

    #[test]
    fn fo4_sentence_mentions_exactly_four_variables_plus_witness() {
        let phi = theorem4_fo4_sentence();
        // x, y, z, v plus the inner ψ-witness w: the paper counts this as an
        // FO4 formula because w re-uses one of the four names after
        // requantification; our explicit construction spells it as five
        // names, which is still ≤ 5 < 6 and outside TriAL's reach per Thm 4.
        assert!(phi.width() <= 5);
        assert!(phi.free_variables().is_empty());
    }

    #[test]
    fn fo4_sentence_separates_a_from_b() {
        let phi = theorem4_fo4_sentence();
        assert!(evaluate_closed(&structure_a(), &phi).unwrap());
        assert!(!evaluate_closed(&structure_b(), &phi).unwrap());
    }
}
