//! # trial-logic
//!
//! The *relational-language* side of Section 6.1 of "TriAL for RDF: Adapting
//! Graph Query Languages for RDF Data" (Libkin, Reutter, Vrgoč, PODS 2013).
//!
//! The paper compares the Triple Algebra with finite-variable fragments of
//! First-Order Logic (FO^k) and of Transitive-Closure Logic (TrCl^k) over the
//! relational representation `I_T = ⟨E1, …, En, ∼⟩` of a triplestore
//! `T = (O, E1, …, En, ρ)`, where `∼(x, y)` holds iff `ρ(x) = ρ(y)`.
//!
//! This crate provides:
//!
//! * a [`Formula`] AST for FO and TrCl over that vocabulary ([`fo`]);
//! * active-domain **evaluation** of formulas over a
//!   [`Triplestore`](trial_core::Triplestore) ([`eval`]), exact on the small
//!   structures used throughout the paper's proofs;
//! * the **TriAL → FO** translation of Theorem 4 (and its TrCl extension for
//!   TriAL\*, Theorem 6) ([`to_fo`]);
//! * the **FO³ → TriAL** translation of Theorem 4, part 2 ([`from_fo3`]);
//! * the **separating structures** used in the proofs of Theorems 4–6
//!   ([`structures`]): the full stores `T_n`, the structures `A` and `B`,
//!   and the queries that distinguish them.
//!
//! Together these let the test-suite and the benchmark harness check the
//! expressiveness claims of Section 6.1 *empirically*: translated queries
//! agree with direct evaluation, the separating queries produce exactly the
//! true/false pattern the theorems predict, and the variable-width accounting
//! matches the FO³ / FO⁴ / FO⁶ boundaries the paper draws.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod eval;
pub mod fo;
pub mod from_fo3;
pub mod structures;
pub mod to_fo;

pub use eval::{answers3, evaluate_closed, satisfies, Assignment};
pub use fo::{Formula, Term};
pub use from_fo3::{fo3_to_trial, Fo3Error};
pub use to_fo::{trial_to_fo, TranslationReport};
