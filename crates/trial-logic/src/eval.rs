//! Active-domain evaluation of [`Formula`]s over a triplestore.
//!
//! The paper compares TriAL with FO / TrCl over the relational representation
//! `I_T` of a triplestore `T` (Section 4 and Section 6.1): one ternary
//! relation per triplestore relation, plus `∼(x, y) ⇔ ρ(x) = ρ(y)`. As is
//! standard in database theory (and as the paper's appendix notes explicitly,
//! Remark 3), queries are evaluated under **active-domain semantics**:
//! quantifiers range over the objects that occur in some triple of the store.
//!
//! The evaluator here is a direct, exhaustive implementation of that
//! semantics. It is exponential in the number of quantifiers and is meant for
//! the small structures of the paper's proofs and for cross-checking the
//! translations of [`crate::to_fo`] / [`crate::from_fo3`] on randomly
//! generated stores — not as a production query engine (that is what
//! `trial-eval` is for).

use crate::fo::{Formula, Term};
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;
use trial_core::{ObjectId, Triple, TripleSet, Triplestore};

/// Errors raised by formula evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogicError {
    /// A variable was used without being bound by a quantifier, the
    /// transitive-closure operator, or the supplied assignment.
    UnboundVariable(String),
    /// A relation name does not exist in the triplestore.
    UnknownRelation(String),
    /// An object constant does not exist in the triplestore.
    UnknownConstant(String),
    /// The tuples of a `trcl` operator have mismatched lengths.
    MalformedTrcl(String),
    /// `answers3` was asked for a variable that clashes with another.
    DuplicateAnswerVariable(String),
    /// The formula has free variables outside the requested answer variables.
    UnexpectedFreeVariable(String),
}

impl fmt::Display for LogicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogicError::UnboundVariable(v) => write!(f, "unbound variable `{v}`"),
            LogicError::UnknownRelation(r) => write!(f, "unknown relation `{r}`"),
            LogicError::UnknownConstant(c) => write!(f, "unknown object constant `{c}`"),
            LogicError::MalformedTrcl(msg) => write!(f, "malformed trcl operator: {msg}"),
            LogicError::DuplicateAnswerVariable(v) => {
                write!(f, "duplicate answer variable `{v}`")
            }
            LogicError::UnexpectedFreeVariable(v) => {
                write!(f, "free variable `{v}` is not an answer variable")
            }
        }
    }
}

impl std::error::Error for LogicError {}

/// Result alias for logic evaluation.
pub type Result<T> = std::result::Result<T, LogicError>;

/// A partial assignment of variables to objects.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Assignment {
    map: HashMap<String, ObjectId>,
}

impl Assignment {
    /// The empty assignment.
    pub fn new() -> Self {
        Assignment::default()
    }

    /// Binds `var` to `obj`, returning the previous binding if any.
    pub fn bind(&mut self, var: impl Into<String>, obj: ObjectId) -> Option<ObjectId> {
        self.map.insert(var.into(), obj)
    }

    /// Re-binds `var` to `obj` without allocating when the variable is
    /// already present (the common case inside quantifier loops).
    pub fn set(&mut self, var: &str, obj: ObjectId) {
        match self.map.get_mut(var) {
            Some(slot) => *slot = obj,
            None => {
                self.map.insert(var.to_string(), obj);
            }
        }
    }

    /// Removes the binding for `var`.
    pub fn unbind(&mut self, var: &str) -> Option<ObjectId> {
        self.map.remove(var)
    }

    /// Looks up the binding for `var`.
    pub fn get(&self, var: &str) -> Option<ObjectId> {
        self.map.get(var).copied()
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns `true` if no variable is bound.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

fn resolve(store: &Triplestore, asg: &Assignment, term: &Term) -> Result<ObjectId> {
    match term {
        Term::Var(v) => asg
            .get(v)
            .ok_or_else(|| LogicError::UnboundVariable(v.clone())),
        Term::Const(c) => store
            .object_id(c)
            .ok_or_else(|| LogicError::UnknownConstant(c.clone())),
    }
}

/// Restores (or removes) a binding after a scoped quantification.
fn restore(asg: &mut Assignment, var: &str, previous: Option<ObjectId>) {
    match previous {
        Some(o) => {
            asg.bind(var, o);
        }
        None => {
            asg.unbind(var);
        }
    }
}

/// Checks whether `store, asg ⊨ formula` under active-domain semantics.
///
/// All free variables of `formula` must be bound by `asg`; otherwise an
/// [`LogicError::UnboundVariable`] error is returned.
pub fn satisfies(store: &Triplestore, formula: &Formula, asg: &mut Assignment) -> Result<bool> {
    let adom = store.active_domain();
    sat(store, &adom, formula, asg)
}

fn sat(
    store: &Triplestore,
    adom: &[ObjectId],
    formula: &Formula,
    asg: &mut Assignment,
) -> Result<bool> {
    match formula {
        Formula::True => Ok(true),
        Formula::False => Ok(false),
        Formula::Rel { rel, args } => {
            let relation = store
                .relation(rel)
                .ok_or_else(|| LogicError::UnknownRelation(rel.clone()))?;
            let s = resolve(store, asg, &args[0])?;
            let p = resolve(store, asg, &args[1])?;
            let o = resolve(store, asg, &args[2])?;
            Ok(relation.triples().contains(&Triple::new(s, p, o)))
        }
        Formula::Sim(a, b) => {
            let oa = resolve(store, asg, a)?;
            let ob = resolve(store, asg, b)?;
            Ok(store.data_eq(oa, ob))
        }
        Formula::Eq(a, b) => {
            let oa = resolve(store, asg, a)?;
            let ob = resolve(store, asg, b)?;
            Ok(oa == ob)
        }
        Formula::Not(inner) => Ok(!sat(store, adom, inner, asg)?),
        Formula::And(a, b) => Ok(sat(store, adom, a, asg)? && sat(store, adom, b, asg)?),
        Formula::Or(a, b) => Ok(sat(store, adom, a, asg)? || sat(store, adom, b, asg)?),
        Formula::Exists(v, body) => {
            let previous = asg.get(v);
            for &obj in adom {
                asg.set(v, obj);
                if sat(store, adom, body, asg)? {
                    restore(asg, v, previous);
                    return Ok(true);
                }
            }
            restore(asg, v, previous);
            Ok(false)
        }
        Formula::Forall(v, body) => {
            let previous = asg.get(v);
            for &obj in adom {
                asg.set(v, obj);
                if !sat(store, adom, body, asg)? {
                    restore(asg, v, previous);
                    return Ok(false);
                }
            }
            restore(asg, v, previous);
            Ok(true)
        }
        Formula::Trcl {
            xs,
            ys,
            phi,
            from,
            to,
        } => {
            let n = xs.len();
            if ys.len() != n || from.len() != n || to.len() != n || n == 0 {
                return Err(LogicError::MalformedTrcl(format!(
                    "tuple lengths |xs|={} |ys|={} |from|={} |to|={} must be equal and non-zero",
                    xs.len(),
                    ys.len(),
                    from.len(),
                    to.len()
                )));
            }
            let source: Vec<ObjectId> = from
                .iter()
                .map(|t| resolve(store, asg, t))
                .collect::<Result<_>>()?;
            let target: Vec<ObjectId> = to
                .iter()
                .map(|t| resolve(store, asg, t))
                .collect::<Result<_>>()?;
            trcl_reachable(store, adom, xs, ys, phi, asg, &source, &target)
        }
    }
}

/// Breadth-first reachability over `adom^n` for the `trcl` operator.
///
/// Reachability is reflexive: `t̄1` always reaches itself, matching the union
/// `∅ ∪ e ∪ e ✶ e ∪ …` shape of the algebra's Kleene closure.
#[allow(clippy::too_many_arguments)]
fn trcl_reachable(
    store: &Triplestore,
    adom: &[ObjectId],
    xs: &[String],
    ys: &[String],
    phi: &Formula,
    asg: &mut Assignment,
    source: &[ObjectId],
    target: &[ObjectId],
) -> Result<bool> {
    if source == target {
        return Ok(true);
    }
    let n = xs.len();
    let saved: Vec<(String, Option<ObjectId>)> = xs
        .iter()
        .chain(ys.iter())
        .map(|v| (v.clone(), asg.get(v)))
        .collect();

    let mut visited: HashSet<Vec<ObjectId>> = HashSet::new();
    visited.insert(source.to_vec());
    let mut queue: VecDeque<Vec<ObjectId>> = VecDeque::new();
    queue.push_back(source.to_vec());
    let mut found = false;

    'outer: while let Some(current) = queue.pop_front() {
        for (v, &o) in xs.iter().zip(current.iter()) {
            asg.set(v, o);
        }
        // Enumerate all candidate successor tuples.
        let mut successor = vec![adom[0]; n];
        let mut indices = vec![0usize; n];
        loop {
            for (slot, &idx) in indices.iter().enumerate() {
                successor[slot] = adom[idx];
            }
            if !visited.contains(&successor) {
                for (v, &o) in ys.iter().zip(successor.iter()) {
                    asg.set(v, o);
                }
                if sat(store, adom, phi, asg)? {
                    if successor == target {
                        found = true;
                        break 'outer;
                    }
                    visited.insert(successor.clone());
                    queue.push_back(successor.clone());
                }
            }
            // Advance the odometer.
            let mut slot = 0;
            loop {
                if slot == n {
                    break;
                }
                indices[slot] += 1;
                if indices[slot] < adom.len() {
                    break;
                }
                indices[slot] = 0;
                slot += 1;
            }
            if slot == n {
                break;
            }
        }
    }

    for (v, previous) in saved {
        restore(asg, &v, previous);
    }
    Ok(found)
}

/// Evaluates a sentence (formula without free variables).
pub fn evaluate_closed(store: &Triplestore, formula: &Formula) -> Result<bool> {
    if let Some(v) = formula.free_variables().into_iter().next() {
        return Err(LogicError::UnboundVariable(v));
    }
    satisfies(store, formula, &mut Assignment::new())
}

/// Evaluates a formula as a *ternary query*: returns all triples
/// `(a1, a2, a3)` of active-domain objects such that the formula holds with
/// `vars[0] ↦ a1`, `vars[1] ↦ a2`, `vars[2] ↦ a3`.
///
/// Variables among `vars` that do not occur freely in the formula range over
/// the whole active domain — exactly the convention used when comparing a
/// TriAL expression (which always returns triples) with a logic formula
/// (Theorem 4). Free variables of the formula outside `vars` are rejected.
pub fn answers3(store: &Triplestore, formula: &Formula, vars: [&str; 3]) -> Result<TripleSet> {
    if vars[0] == vars[1] || vars[0] == vars[2] || vars[1] == vars[2] {
        let dup = if vars[0] == vars[1] { vars[1] } else { vars[2] };
        return Err(LogicError::DuplicateAnswerVariable(dup.to_string()));
    }
    for free in formula.free_variables() {
        if !vars.contains(&free.as_str()) {
            return Err(LogicError::UnexpectedFreeVariable(free));
        }
    }
    let adom = store.active_domain();
    let mut asg = Assignment::new();
    let mut out = TripleSet::new();
    for &a in &adom {
        asg.set(vars[0], a);
        for &b in &adom {
            asg.set(vars[1], b);
            for &c in &adom {
                asg.set(vars[2], c);
                if sat(store, &adom, formula, &mut asg)? {
                    out.insert(Triple::new(a, b, c));
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use trial_core::TriplestoreBuilder;

    fn chain() -> Triplestore {
        // a -r-> b -r-> c  (as triples (a,r,b), (b,r,c); r is itself an object)
        let mut b = TriplestoreBuilder::new();
        b.add_triple("E", "a", "r", "b");
        b.add_triple("E", "b", "r", "c");
        b.finish()
    }

    #[test]
    fn relation_atoms_and_equality() {
        let store = chain();
        let f = Formula::rel_vars("E", "x", "y", "z");
        let mut asg = Assignment::new();
        asg.bind("x", store.object_id("a").unwrap());
        asg.bind("y", store.object_id("r").unwrap());
        asg.bind("z", store.object_id("b").unwrap());
        assert!(satisfies(&store, &f, &mut asg).unwrap());
        asg.bind("z", store.object_id("c").unwrap());
        assert!(!satisfies(&store, &f, &mut asg).unwrap());
        let eq = Formula::Eq(Term::var("x"), Term::constant("a"));
        assert!(satisfies(&store, &eq, &mut asg).unwrap());
    }

    #[test]
    fn quantifiers_use_active_domain() {
        let store = chain();
        // ∃x∃y∃z E(x,y,z) — true.
        let f = Formula::exists_many(["x", "y", "z"], Formula::rel_vars("E", "x", "y", "z"));
        assert!(evaluate_closed(&store, &f).unwrap());
        // ∀x ∃y∃z E(x,y,z) — false: c (and r) have no outgoing triple.
        let g = Formula::forall(
            "x",
            Formula::exists_many(["y", "z"], Formula::rel_vars("E", "x", "y", "z")),
        );
        assert!(!evaluate_closed(&store, &g).unwrap());
    }

    #[test]
    fn sim_uses_data_values() {
        let mut b = TriplestoreBuilder::new();
        let a = b.object_with_value("a", 1i64);
        let c = b.object_with_value("c", 1i64);
        let d = b.object_with_value("d", 2i64);
        b.add_triple_ids("E", a, c, d);
        let store = b.finish();
        let mut asg = Assignment::new();
        asg.bind("x", a);
        asg.bind("y", c);
        assert!(satisfies(&store, &Formula::sim_vars("x", "y"), &mut asg).unwrap());
        asg.bind("y", d);
        assert!(!satisfies(&store, &Formula::sim_vars("x", "y"), &mut asg).unwrap());
    }

    #[test]
    fn errors_are_reported() {
        let store = chain();
        let f = Formula::rel_vars("NoSuch", "x", "y", "z");
        let mut asg = Assignment::new();
        asg.bind("x", ObjectId(0));
        asg.bind("y", ObjectId(0));
        asg.bind("z", ObjectId(0));
        assert!(matches!(
            satisfies(&store, &f, &mut asg),
            Err(LogicError::UnknownRelation(_))
        ));
        let g = Formula::rel_vars("E", "x", "y", "missing");
        assert!(matches!(
            satisfies(&store, &g, &mut asg),
            Err(LogicError::UnboundVariable(_))
        ));
        let h = Formula::Eq(Term::constant("nope"), Term::var("x"));
        assert!(matches!(
            satisfies(&store, &h, &mut asg),
            Err(LogicError::UnknownConstant(_))
        ));
        assert!(matches!(
            evaluate_closed(&store, &Formula::rel_vars("E", "x", "y", "z")),
            Err(LogicError::UnboundVariable(_))
        ));
    }

    #[test]
    fn trcl_expresses_reachability() {
        let store = chain();
        // [trcl_{x,y} ∃w E(x,w,y)](s ; t): s reaches t along E-edges.
        let step = Formula::exists("w", Formula::rel_vars("E", "x", "w", "y"));
        let reach = |s: &str, t: &str| Formula::Trcl {
            xs: vec!["x".into()],
            ys: vec!["y".into()],
            phi: Box::new(step.clone()),
            from: vec![Term::constant(s)],
            to: vec![Term::constant(t)],
        };
        assert!(evaluate_closed(&store, &reach("a", "c")).unwrap());
        assert!(evaluate_closed(&store, &reach("a", "a")).unwrap()); // reflexive
        assert!(!evaluate_closed(&store, &reach("c", "a")).unwrap());
    }

    #[test]
    fn trcl_rejects_mismatched_tuples() {
        let store = chain();
        let bad = Formula::Trcl {
            xs: vec!["x".into()],
            ys: vec!["y".into(), "z".into()],
            phi: Box::new(Formula::True),
            from: vec![Term::constant("a")],
            to: vec![Term::constant("c")],
        };
        assert!(matches!(
            evaluate_closed(&store, &bad),
            Err(LogicError::MalformedTrcl(_))
        ));
    }

    #[test]
    fn answers3_pads_missing_variables_with_the_domain() {
        let store = chain();
        // φ(x) = ∃y∃z E(x,y,z): x has an outgoing triple. Answer variables
        // (x, u, v) — u, v unconstrained.
        let f = Formula::exists_many(["y", "z"], Formula::rel_vars("E", "x", "y", "z"));
        let result = answers3(&store, &f, ["x", "u", "v"]).unwrap();
        let adom = store.active_domain().len();
        // x ∈ {a, b}, u and v anything: 2 * adom².
        assert_eq!(result.len(), 2 * adom * adom);
    }

    #[test]
    fn answers3_validates_variables() {
        let store = chain();
        let f = Formula::rel_vars("E", "x", "y", "z");
        assert!(matches!(
            answers3(&store, &f, ["x", "x", "z"]),
            Err(LogicError::DuplicateAnswerVariable(_))
        ));
        assert!(matches!(
            answers3(&store, &f, ["x", "y", "w"]),
            Err(LogicError::UnexpectedFreeVariable(_))
        ));
    }

    #[test]
    fn assignment_scoping_is_restored_after_quantification() {
        let store = chain();
        let mut asg = Assignment::new();
        let a = store.object_id("a").unwrap();
        asg.bind("x", a);
        // ∃x E(x,y,z) temporarily rebinds x, then restores it.
        let f = Formula::exists(
            "x",
            Formula::exists_many(["y", "z"], Formula::rel_vars("E", "x", "y", "z")),
        );
        assert!(satisfies(&store, &f, &mut asg).unwrap());
        assert_eq!(asg.get("x"), Some(a));
        assert_eq!(asg.len(), 1);
    }
}
