//! The TriAL → FO / TriAL\* → TrCl translations of Theorems 4 and 6.
//!
//! Theorem 4 (part 1) shows that every TriAL expression is expressible in
//! FO⁶: a join `e1 ✶^{i,j,k}_{θ,η} e2` becomes
//! `∃ x_u ∃ x_v ∃ x_w (φ_{e1}(x_1,x_2,x_3) ∧ φ_{e2}(x_{1'},x_{2'},x_{3'}) ∧ α(θ) ∧ β(η))`
//! where only six variable names are ever needed because the three
//! non-output positions can always reuse names from a fixed pool of six.
//! Theorem 6 extends the translation to TriAL\* by mapping Kleene closures to
//! the `trcl` operator of transitive-closure logic.
//!
//! [`trial_to_fo`] implements exactly that construction. For plain (star-free)
//! TriAL expressions the produced formula provably uses at most six variable
//! names — the test-suite asserts `width() ≤ 6`, matching the theorem. For
//! Kleene closures we generate a semantically faithful `trcl` formula over
//! triples of variables; it introduces fresh names for the closure tuples
//! (the paper's Theorem 6 shows the count can be kept at six with a more
//! intricate per-output-spec construction, which we do not replicate — the
//! translation here is checked for *semantic* equivalence instead).

use crate::fo::{Formula, Term};
use std::fmt;
use trial_core::{Cmp, Conditions, DataOperand, Expr, ObjOperand, OutputSpec, Pos, StarDirection};

/// Errors raised by the TriAL → FO translation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ToFoError {
    /// The expression compares a data value against a data-value *constant*.
    ///
    /// The paper's relational vocabulary `⟨E1, …, En, ∼⟩` is deliberately
    /// one-sorted (see the remark after Lemma 5), so data-value constants
    /// have no counterpart on the logic side; the paper notes the results
    /// extend to them but does not carry them through the translations, and
    /// neither do we.
    DataConstantUnsupported(String),
}

impl fmt::Display for ToFoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ToFoError::DataConstantUnsupported(atom) => write!(
                f,
                "data-value constant comparison `{atom}` has no counterpart in the one-sorted \
                 vocabulary ⟨E1,…,En,∼⟩"
            ),
        }
    }
}

impl std::error::Error for ToFoError {}

/// The result of translating a TriAL\* expression into logic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TranslationReport {
    /// The produced formula; its free variables are exactly
    /// [`answer_vars`](Self::answer_vars).
    pub formula: Formula,
    /// The three free variables, in output order `(1, 2, 3)`.
    pub answer_vars: [String; 3],
    /// Number of distinct variable names used by the formula.
    pub width: usize,
    /// `true` if the translation needed the `trcl` operator (i.e. the input
    /// was a TriAL\* expression with at least one Kleene closure).
    pub uses_trcl: bool,
}

/// The six-name pool of Theorem 4: `v0, …, v5`.
const POOL: [&str; 6] = ["v0", "v1", "v2", "v3", "v4", "v5"];

struct Translator {
    fresh_counter: usize,
}

impl Translator {
    fn new() -> Self {
        Translator { fresh_counter: 0 }
    }

    fn fresh(&mut self) -> String {
        let name = format!("w{}", self.fresh_counter);
        self.fresh_counter += 1;
        name
    }

    /// Picks `count` names from the six-name pool that differ from everything
    /// in `used`.
    fn spares(&self, used: &[&str], count: usize) -> Vec<String> {
        POOL.iter()
            .filter(|p| !used.contains(p))
            .take(count)
            .map(|p| (*p).to_string())
            .collect()
    }

    /// Maps each of the six join positions to a variable name, honouring the
    /// requested output names. Returns the per-position names (indexed
    /// `[L1, L2, L3, R1, R2, R3]`), the names to quantify away, and equality
    /// conjuncts needed when the output spec repeats a position.
    fn assign_positions(
        &mut self,
        output: &OutputSpec,
        out: &[String; 3],
    ) -> ([String; 6], Vec<String>, Vec<Formula>) {
        let mut names: [Option<String>; 6] = Default::default();
        let mut extra_eqs = Vec::new();
        for (slot, out_name) in out.iter().enumerate() {
            let pos = output.get(slot);
            let idx = position_index(pos);
            match &names[idx] {
                None => names[idx] = Some(out_name.clone()),
                Some(existing) => extra_eqs.push(Formula::Eq(
                    Term::var(out_name.clone()),
                    Term::var(existing.clone()),
                )),
            }
        }
        // Only names already assigned to positions are off-limits for the
        // spare pool. An output name that merely duplicates a position (and
        // is therefore constrained by an equality *outside* the quantifier
        // block) may be re-used as a bound position name — re-quantification
        // is exactly how FO^k keeps the variable count at six (Theorem 4).
        let used: Vec<&str> = names.iter().flatten().map(String::as_str).collect();
        let needed = names.iter().filter(|n| n.is_none()).count();
        let mut spare = self.spares(&used, needed);
        // The pool always has enough spares for star-free expressions; if the
        // caller passed fresh (non-pool) output names we may need extras.
        while spare.len() < needed {
            spare.push(self.fresh());
        }
        let mut spare_iter = spare.into_iter();
        let mut quantified = Vec::new();
        for slot in names.iter_mut() {
            if slot.is_none() {
                let name = spare_iter.next().expect("enough spare names");
                quantified.push(name.clone());
                *slot = Some(name);
            }
        }
        let names: [String; 6] = names.map(|n| n.expect("all positions named"));
        (names, quantified, extra_eqs)
    }

    /// Translates the θ/η conditions into a conjunction over the per-position
    /// variable names.
    fn conditions(
        &self,
        cond: &Conditions,
        names: &[String; 6],
    ) -> Result<Vec<Formula>, ToFoError> {
        let mut atoms = Vec::new();
        for atom in &cond.theta {
            let lhs = Term::var(names[position_index(atom.lhs)].clone());
            let rhs = match &atom.rhs {
                ObjOperand::Pos(p) => Term::var(names[position_index(*p)].clone()),
                ObjOperand::Const(name) => Term::constant(name.clone()),
            };
            let eq = Formula::Eq(lhs, rhs);
            atoms.push(match atom.cmp {
                Cmp::Eq => eq,
                Cmp::Neq => eq.not(),
            });
        }
        for atom in &cond.eta {
            let lhs = Term::var(names[position_index(atom.lhs)].clone());
            let rhs = match &atom.rhs {
                DataOperand::Pos(p) => Term::var(names[position_index(*p)].clone()),
                DataOperand::Const(_) => {
                    return Err(ToFoError::DataConstantUnsupported(atom.to_string()))
                }
            };
            let sim = Formula::Sim(lhs, rhs);
            atoms.push(match atom.cmp {
                Cmp::Eq => sim,
                Cmp::Neq => sim.not(),
            });
        }
        Ok(atoms)
    }

    /// Translates `expr` into a formula whose free variables are exactly the
    /// three (distinct) names in `out`, bound to output positions 1, 2, 3.
    fn translate(&mut self, expr: &Expr, out: &[String; 3]) -> Result<Formula, ToFoError> {
        match expr {
            Expr::Rel(name) => Ok(Formula::rel(
                name.clone(),
                Term::var(out[0].clone()),
                Term::var(out[1].clone()),
                Term::var(out[2].clone()),
            )),
            // Under active-domain semantics the universal relation `U` is the
            // set of all triples over the active domain — i.e. "true".
            Expr::Universe => Ok(Formula::True),
            Expr::Empty => Ok(Formula::False),
            Expr::Select { input, cond } => {
                let inner = self.translate(input, out)?;
                // Selections only mention unprimed positions; map L1..L3 to
                // the output names and leave R1..R3 pointing at placeholders
                // that can never be referenced.
                let names: [String; 6] = [
                    out[0].clone(),
                    out[1].clone(),
                    out[2].clone(),
                    out[0].clone(),
                    out[1].clone(),
                    out[2].clone(),
                ];
                let atoms = self.conditions(cond, &names)?;
                Ok(Formula::and_all(std::iter::once(inner).chain(atoms)))
            }
            Expr::Union(a, b) => Ok(self.translate(a, out)?.or(self.translate(b, out)?)),
            Expr::Diff(a, b) => Ok(self.translate(a, out)?.and(self.translate(b, out)?.not())),
            Expr::Intersect(a, b) => Ok(self.translate(a, out)?.and(self.translate(b, out)?)),
            Expr::Complement(a) => Ok(self.translate(a, out)?.not()),
            Expr::Join {
                left,
                right,
                output,
                cond,
            } => {
                let (names, quantified, extra_eqs) = self.assign_positions(output, out);
                let left_out: [String; 3] = [names[0].clone(), names[1].clone(), names[2].clone()];
                let right_out: [String; 3] = [names[3].clone(), names[4].clone(), names[5].clone()];
                let left_f = self.translate(left, &left_out)?;
                let right_f = self.translate(right, &right_out)?;
                let cond_atoms = self.conditions(cond, &names)?;
                let body = Formula::and_all([left_f, right_f].into_iter().chain(cond_atoms));
                // Equalities forced by a repeated output position refer to the
                // *free* output variables, so they live outside the quantifier
                // block (any re-use of their names inside is a fresh,
                // shadowing quantification).
                Ok(Formula::and_all(
                    std::iter::once(Formula::exists_many(quantified, body)).chain(extra_eqs),
                ))
            }
            Expr::Star {
                input,
                output,
                cond,
                direction,
            } => {
                // (e ✶)^*: out is reachable from some starting triple of e by
                // repeatedly joining with (another) triple of e.
                let start: [String; 3] = [self.fresh(), self.fresh(), self.fresh()];
                let xs: [String; 3] = [self.fresh(), self.fresh(), self.fresh()];
                let ys: [String; 3] = [self.fresh(), self.fresh(), self.fresh()];
                let step_mate: [String; 3] = [self.fresh(), self.fresh(), self.fresh()];

                // Per-position names of the step join: the accumulated triple
                // plays the left role for a right closure and the right role
                // for a left closure.
                let names: [String; 6] = match direction {
                    StarDirection::Right => [
                        xs[0].clone(),
                        xs[1].clone(),
                        xs[2].clone(),
                        step_mate[0].clone(),
                        step_mate[1].clone(),
                        step_mate[2].clone(),
                    ],
                    StarDirection::Left => [
                        step_mate[0].clone(),
                        step_mate[1].clone(),
                        step_mate[2].clone(),
                        xs[0].clone(),
                        xs[1].clone(),
                        xs[2].clone(),
                    ],
                };
                let mate_f = self.translate(input, &step_mate)?;
                let cond_atoms = self.conditions(cond, &names)?;
                let out_eqs = (0..3).map(|slot| {
                    Formula::Eq(
                        Term::var(ys[slot].clone()),
                        Term::var(names[position_index(output.get(slot))].clone()),
                    )
                });
                let step = Formula::exists_many(
                    step_mate.clone(),
                    Formula::and_all(std::iter::once(mate_f).chain(cond_atoms).chain(out_eqs)),
                );

                let base = self.translate(input, &start)?;
                let closure = Formula::Trcl {
                    xs: xs.to_vec(),
                    ys: ys.to_vec(),
                    phi: Box::new(step),
                    from: start.iter().cloned().map(Term::Var).collect(),
                    to: out.iter().cloned().map(Term::Var).collect(),
                };
                Ok(Formula::exists_many(start, base.and(closure)))
            }
        }
    }
}

fn position_index(pos: Pos) -> usize {
    match pos {
        Pos::L1 => 0,
        Pos::L2 => 1,
        Pos::L3 => 2,
        Pos::R1 => 3,
        Pos::R2 => 4,
        Pos::R3 => 5,
    }
}

/// Translates a TriAL\* expression into an FO / TrCl formula over the
/// vocabulary `⟨E1, …, En, ∼⟩`, following the constructions of Theorems 4
/// and 6.
///
/// The produced formula has exactly three free variables (returned in
/// [`TranslationReport::answer_vars`]), and
/// [`answers3`](crate::eval::answers3) over those variables computes the same
/// set of triples as evaluating the expression with `trial-eval` — the
/// test-suite checks this on the paper's examples and on random stores.
pub fn trial_to_fo(expr: &Expr) -> Result<TranslationReport, ToFoError> {
    let mut tr = Translator::new();
    let out: [String; 3] = [
        POOL[0].to_string(),
        POOL[1].to_string(),
        POOL[2].to_string(),
    ];
    let formula = tr.translate(expr, &out)?;
    let width = formula.width();
    let uses_trcl = !formula.is_first_order();
    Ok(TranslationReport {
        formula,
        answer_vars: out,
        width,
        uses_trcl,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{answers3, satisfies, Assignment};
    use trial_core::builder::queries;
    use trial_core::{output, Triple, Triplestore, TriplestoreBuilder};
    use trial_eval::evaluate;

    /// Figure 1 of the paper (7 triples, 11 objects) — used only for
    /// quantifier-free translations, where exhaustive FO evaluation is cheap.
    fn figure1() -> Triplestore {
        trial_workloads::transport::figure1_store()
    }

    /// A smaller transport-style store (8 objects) for translations that
    /// introduce existential quantifiers: the FO evaluator is exhaustive, so
    /// we keep the active domain small.
    fn mini_transport() -> Triplestore {
        let mut b = TriplestoreBuilder::new();
        for (s, p, o) in [
            ("StAndrews", "BusOp1", "Edinburgh"),
            ("Edinburgh", "TrainOp1", "London"),
            ("BusOp1", "part_of", "NatExpress"),
            ("TrainOp1", "part_of", "EastCoast"),
        ] {
            b.add_triple("E", s, p, o);
        }
        b.finish()
    }

    fn example3_store() -> Triplestore {
        let mut b = TriplestoreBuilder::new();
        b.add_triple("E", "a", "b", "c");
        b.add_triple("E", "c", "d", "e");
        b.add_triple("E", "d", "e", "f");
        b.finish()
    }

    /// Full equivalence by enumeration: only for stores/formulas where the
    /// exhaustive FO evaluation stays small (no `trcl`, small domain).
    fn check_equivalent(expr: &Expr, store: &Triplestore) {
        let report = trial_to_fo(expr).expect("translation succeeds");
        let [x, y, z] = &report.answer_vars;
        let logic = answers3(store, &report.formula, [x, y, z]).expect("evaluation succeeds");
        let algebra = evaluate(expr, store)
            .expect("algebra evaluation succeeds")
            .result;
        assert!(
            logic.set_eq(&algebra),
            "translated formula disagrees with the algebra for {expr}:\n logic   {:?}\n algebra {:?}",
            store.display_triples(&logic),
            store.display_triples(&algebra)
        );
    }

    /// Membership-based equivalence check, used for Kleene closures where
    /// enumerating all of `adom³` through the `trcl` evaluator would be
    /// needlessly slow: every triple of the algebra result must satisfy the
    /// formula, and a sample of non-members must falsify it.
    fn check_members(expr: &Expr, store: &Triplestore, non_member_samples: usize) {
        let report = trial_to_fo(expr).expect("translation succeeds");
        let [x, y, z] = &report.answer_vars;
        let algebra = evaluate(expr, store)
            .expect("algebra evaluation succeeds")
            .result;
        let mut asg = Assignment::new();
        let mut assert_membership = |t: &Triple, expected: bool| {
            asg.set(x, t.s());
            asg.set(y, t.p());
            asg.set(z, t.o());
            let holds = satisfies(store, &report.formula, &mut asg).expect("evaluation succeeds");
            assert_eq!(
                holds,
                expected,
                "formula and algebra disagree on {} for {expr}",
                store.display_triple(t)
            );
        };
        for t in algebra.iter().take(12) {
            assert_membership(t, true);
        }
        let adom = store.active_domain();
        let mut checked = 0usize;
        'outer: for &a in &adom {
            for &b in &adom {
                for &c in &adom {
                    let t = Triple::new(a, b, c);
                    if !algebra.contains(&t) {
                        assert_membership(&t, false);
                        checked += 1;
                        if checked >= non_member_samples {
                            break 'outer;
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn example2_translates_and_agrees() {
        let store = mini_transport();
        let expr = queries::example2("E");
        let report = trial_to_fo(&expr).unwrap();
        assert!(report.width <= 6, "width {} exceeds FO6", report.width);
        assert!(!report.uses_trcl);
        check_equivalent(&expr, &store);
    }

    #[test]
    fn star_free_fragment_stays_within_six_variables() {
        // A deliberately deep star-free expression: nested joins, selections,
        // set operations and a complement.
        let e = queries::example2("E")
            .join(
                Expr::rel("E").select(Conditions::new().obj_eq_const(Pos::L2, "part_of")),
                output(Pos::L1, Pos::R2, Pos::L3),
                Conditions::new()
                    .obj_eq(Pos::L3, Pos::R1)
                    .data_eq(Pos::L1, Pos::R3),
            )
            .union(Expr::rel("E").complement().intersect(Expr::Universe))
            .minus(Expr::rel("E"));
        let report = trial_to_fo(&e).unwrap();
        assert!(report.formula.is_first_order());
        assert!(
            report.width <= 6,
            "Theorem 4: star-free TriAL must fit in FO6, got width {}",
            report.width
        );
    }

    #[test]
    fn set_operations_translate_and_agree() {
        let store = figure1();
        let part_of_triples =
            Expr::rel("E").select(Conditions::new().obj_eq_const(Pos::L2, "part_of"));
        check_equivalent(&part_of_triples, &store);
        check_equivalent(&Expr::rel("E").minus(part_of_triples.clone()), &store);
        check_equivalent(&part_of_triples.clone().complement(), &store);
        check_equivalent(
            &Expr::rel("E")
                .intersect(part_of_triples.clone())
                .union(Expr::Empty),
            &store,
        );
    }

    #[test]
    fn universe_and_empty_translate() {
        let store = figure1();
        check_equivalent(&Expr::Universe, &store);
        check_equivalent(&Expr::Empty, &store);
    }

    #[test]
    fn inequality_joins_translate_and_agree() {
        let store = example3_store();
        let e = Expr::rel("E").join(
            Expr::rel("E"),
            output(Pos::L1, Pos::R2, Pos::R3),
            Conditions::new()
                .obj_neq(Pos::L1, Pos::R1)
                .obj_neq(Pos::L3, Pos::R3),
        );
        check_equivalent(&e, &store);
    }

    #[test]
    fn at_least_four_objects_query_translates() {
        let expr = queries::at_least_four_objects();
        let report = trial_to_fo(&expr).unwrap();
        assert!(report.width <= 6);
        // Non-empty exactly on stores with ≥ 4 distinct objects.
        check_equivalent(&expr, &crate::structures::full_store(3));
        check_equivalent(&expr, &crate::structures::full_store(4));
    }

    #[test]
    fn reachability_star_translates_to_trcl_and_agrees() {
        // A small chain so the exhaustive trcl evaluation stays cheap.
        let mut b = TriplestoreBuilder::new();
        b.add_triple("E", "a", "r", "b");
        b.add_triple("E", "b", "r", "c");
        b.add_triple("E", "c", "r", "d");
        let store = b.finish();
        let reach = queries::reach_forward("E");
        let report = trial_to_fo(&reach).unwrap();
        assert!(report.uses_trcl);
        check_members(&reach, &store, 6);
        // Reach⇓ exercises the *left* closure.
        check_members(&queries::reach_down("E"), &store, 4);
    }

    #[test]
    fn left_and_right_closures_translate_differently_example3() {
        // Example 3: E = {(a,b,c), (c,d,e), (d,e,f)} distinguishes the left
        // and the right closure of the same join.
        let store = example3_store();
        let right = Expr::rel("E").right_star(
            output(Pos::L1, Pos::L2, Pos::R2),
            Conditions::new().obj_eq(Pos::L3, Pos::R1),
        );
        let left = Expr::rel("E").left_star(
            output(Pos::L1, Pos::L2, Pos::R2),
            Conditions::new().obj_eq(Pos::L3, Pos::R1),
        );
        // The two results genuinely differ on this store (the point of
        // Example 3), and the translations agree with the algebra on the
        // differing triples.
        let r = evaluate(&right, &store).unwrap().result;
        let l = evaluate(&left, &store).unwrap().result;
        assert!(!r.set_eq(&l));
        check_members(&right, &store, 3);
        check_members(&left, &store, 3);
    }

    #[test]
    fn same_company_query_q_translates_structurally() {
        // The nested-star query Q translates to a TrCl formula whose step
        // formula itself contains a trcl; we check the structure here (its
        // semantics is exercised on the algebra side throughout the suite,
        // and simple stars are checked for semantic agreement above).
        let q = queries::same_company_reachability("E");
        let report = trial_to_fo(&q).unwrap();
        assert!(report.uses_trcl);
        let frees: Vec<String> = report.formula.free_variables().into_iter().collect();
        let mut expected: Vec<String> = report.answer_vars.to_vec();
        expected.sort();
        assert_eq!(frees, expected);
        // Two nested closures → three trcl operators: the outer closure mentions
        // the inner one twice (starting triple and step formula).
        let trcl_count = report
            .formula
            .subformulas()
            .iter()
            .filter(|f| matches!(f, Formula::Trcl { .. }))
            .count();
        assert_eq!(trcl_count, 3);
    }

    #[test]
    fn data_value_constants_are_rejected() {
        let e = Expr::rel("E").join(
            Expr::rel("E"),
            output(Pos::L1, Pos::L2, Pos::R3),
            Conditions::new().data_eq_const(Pos::L1, 42i64),
        );
        assert!(matches!(
            trial_to_fo(&e),
            Err(ToFoError::DataConstantUnsupported(_))
        ));
    }

    #[test]
    fn repeated_output_positions_add_equalities() {
        let store = example3_store();
        // output (1,1,3) repeats position 1: the translation must force the
        // first two output variables to be equal.
        let e = Expr::rel("E").join(
            Expr::rel("E"),
            output(Pos::L1, Pos::L1, Pos::L3),
            Conditions::new().obj_eq(Pos::L2, Pos::R1),
        );
        check_equivalent(&e, &store);
    }
}
