//! First-order and transitive-closure formulas over the relational
//! representation of triplestores.
//!
//! The vocabulary is the one used throughout Section 6.1 of the paper: one
//! ternary relation symbol per triplestore relation (`E`, `E1`, …) and the
//! binary symbol `∼` interpreted as "has the same data value"
//! (`∼(x, y) ⇔ ρ(x) = ρ(y)`).
//!
//! [`Formula`] covers plain FO (so FO^k is just "a [`Formula`] whose
//! [`width`](Formula::width) is at most k") and the transitive-closure
//! operator `[trcl_{x̄,ȳ} φ(x̄, ȳ, z̄)](t̄1, t̄2)` of Transitive-Closure Logic
//! (TrCl), which the paper compares against TriAL\* in Theorem 6.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// A first-order term: a variable or an object constant (referenced by its
/// object name in the triplestore, like the constants `o ∈ O` the paper
/// allows inside conditions).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Term {
    /// A variable.
    Var(String),
    /// An object constant, by name.
    Const(String),
}

impl Term {
    /// A variable term.
    pub fn var(name: impl Into<String>) -> Term {
        Term::Var(name.into())
    }

    /// An object-constant term.
    pub fn constant(name: impl Into<String>) -> Term {
        Term::Const(name.into())
    }

    /// The variable name, if the term is a variable.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => write!(f, "'{c}'"),
        }
    }
}

/// A formula of FO / TrCl over the vocabulary `⟨E1, …, En, ∼⟩`.
///
/// The fragment FO^k of the paper is obtained by requiring
/// [`width`](Formula::width)` ≤ k`; TrCl^k additionally allows the
/// [`Formula::Trcl`] construct.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Formula {
    /// The always-true formula.
    True,
    /// The always-false formula.
    False,
    /// A relation atom `E(t1, t2, t3)`.
    Rel {
        /// Relation name.
        rel: String,
        /// The three argument terms.
        args: [Term; 3],
    },
    /// The data-equality atom `∼(t1, t2)`, i.e. `ρ(t1) = ρ(t2)`.
    Sim(Term, Term),
    /// Equality `t1 = t2`.
    Eq(Term, Term),
    /// Negation `¬φ`.
    Not(Box<Formula>),
    /// Conjunction `φ ∧ ψ`.
    And(Box<Formula>, Box<Formula>),
    /// Disjunction `φ ∨ ψ`.
    Or(Box<Formula>, Box<Formula>),
    /// Existential quantification `∃x φ`.
    Exists(String, Box<Formula>),
    /// Universal quantification `∀x φ`.
    Forall(String, Box<Formula>),
    /// The transitive-closure operator
    /// `[trcl_{x̄,ȳ} φ(x̄, ȳ, z̄)](t̄1, t̄2)` with `|x̄| = |ȳ| = |t̄1| = |t̄2|`.
    ///
    /// Semantics (Section 6.1): build the graph on `adom^n` whose edges are
    /// the pairs `(ū, v̄)` with `I ⊨ φ(ū, v̄, c̄)`; the formula holds iff the
    /// value of `t̄2` is reachable from the value of `t̄1` (in zero or more
    /// steps).
    Trcl {
        /// The tuple of "source" variables `x̄` bound by the operator.
        xs: Vec<String>,
        /// The tuple of "target" variables `ȳ` bound by the operator.
        ys: Vec<String>,
        /// The step formula `φ(x̄, ȳ, z̄)`; its free variables other than
        /// `x̄ ∪ ȳ` are the parameters `z̄` and stay free in the whole
        /// formula.
        phi: Box<Formula>,
        /// The tuple `t̄1` the closure starts from.
        from: Vec<Term>,
        /// The tuple `t̄2` the closure must reach.
        to: Vec<Term>,
    },
}

impl Formula {
    /// A relation atom `rel(t1, t2, t3)`.
    pub fn rel(rel: impl Into<String>, t1: Term, t2: Term, t3: Term) -> Formula {
        Formula::Rel {
            rel: rel.into(),
            args: [t1, t2, t3],
        }
    }

    /// A relation atom over three variables.
    pub fn rel_vars(
        rel: impl Into<String>,
        v1: impl Into<String>,
        v2: impl Into<String>,
        v3: impl Into<String>,
    ) -> Formula {
        Formula::rel(rel, Term::var(v1), Term::var(v2), Term::var(v3))
    }

    /// Equality of two variables.
    pub fn eq_vars(a: impl Into<String>, b: impl Into<String>) -> Formula {
        Formula::Eq(Term::var(a), Term::var(b))
    }

    /// Data equality (`∼`) of two variables.
    pub fn sim_vars(a: impl Into<String>, b: impl Into<String>) -> Formula {
        Formula::Sim(Term::var(a), Term::var(b))
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Formula {
        Formula::Not(Box::new(self))
    }

    /// Conjunction.
    pub fn and(self, other: Formula) -> Formula {
        Formula::And(Box::new(self), Box::new(other))
    }

    /// Disjunction.
    pub fn or(self, other: Formula) -> Formula {
        Formula::Or(Box::new(self), Box::new(other))
    }

    /// Existential quantification of a single variable.
    pub fn exists(var: impl Into<String>, body: Formula) -> Formula {
        Formula::Exists(var.into(), Box::new(body))
    }

    /// Universal quantification of a single variable.
    pub fn forall(var: impl Into<String>, body: Formula) -> Formula {
        Formula::Forall(var.into(), Box::new(body))
    }

    /// Existentially quantifies every variable in `vars` (innermost last).
    pub fn exists_many<I, S>(vars: I, body: Formula) -> Formula
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let vars: Vec<String> = vars.into_iter().map(Into::into).collect();
        vars.into_iter()
            .rev()
            .fold(body, |acc, v| Formula::exists(v, acc))
    }

    /// Conjunction of all formulas in the iterator ([`Formula::True`] if
    /// empty).
    pub fn and_all(formulas: impl IntoIterator<Item = Formula>) -> Formula {
        let mut it = formulas.into_iter();
        match it.next() {
            None => Formula::True,
            Some(first) => it.fold(first, Formula::and),
        }
    }

    /// Disjunction of all formulas in the iterator ([`Formula::False`] if
    /// empty).
    pub fn or_all(formulas: impl IntoIterator<Item = Formula>) -> Formula {
        let mut it = formulas.into_iter();
        match it.next() {
            None => Formula::False,
            Some(first) => it.fold(first, Formula::or),
        }
    }

    /// Immediate sub-formulas.
    pub fn children(&self) -> Vec<&Formula> {
        match self {
            Formula::True
            | Formula::False
            | Formula::Rel { .. }
            | Formula::Sim(_, _)
            | Formula::Eq(_, _) => vec![],
            Formula::Not(a) | Formula::Exists(_, a) | Formula::Forall(_, a) => vec![a],
            Formula::And(a, b) | Formula::Or(a, b) => vec![a, b],
            Formula::Trcl { phi, .. } => vec![phi],
        }
    }

    /// All sub-formulas including `self`, pre-order.
    pub fn subformulas(&self) -> Vec<&Formula> {
        let mut out = vec![self];
        let mut stack = self.children();
        while let Some(f) = stack.pop() {
            out.push(f);
            stack.extend(f.children());
        }
        out
    }

    /// Number of AST nodes (the `|φ|` of complexity statements).
    pub fn size(&self) -> usize {
        1 + self.children().iter().map(|c| c.size()).sum::<usize>()
    }

    /// All variable names occurring in the formula (free or bound), sorted.
    ///
    /// The paper's FO^k counts the *total* number of distinct variable names
    /// a formula uses (variables may be re-used/re-quantified), so
    /// `formula.width() ≤ k` is exactly "the formula is in FO^k".
    pub fn variables(&self) -> BTreeSet<String> {
        fn collect_term(t: &Term, out: &mut BTreeSet<String>) {
            if let Term::Var(v) = t {
                out.insert(v.clone());
            }
        }
        let mut out = BTreeSet::new();
        for f in self.subformulas() {
            match f {
                Formula::Rel { args, .. } => {
                    for a in args {
                        collect_term(a, &mut out);
                    }
                }
                Formula::Sim(a, b) | Formula::Eq(a, b) => {
                    collect_term(a, &mut out);
                    collect_term(b, &mut out);
                }
                Formula::Exists(v, _) | Formula::Forall(v, _) => {
                    out.insert(v.clone());
                }
                Formula::Trcl {
                    xs, ys, from, to, ..
                } => {
                    out.extend(xs.iter().cloned());
                    out.extend(ys.iter().cloned());
                    for t in from.iter().chain(to.iter()) {
                        collect_term(t, &mut out);
                    }
                }
                _ => {}
            }
        }
        out
    }

    /// The number of distinct variables used (the `k` of FO^k / TrCl^k).
    pub fn width(&self) -> usize {
        self.variables().len()
    }

    /// Free variables of the formula, sorted.
    pub fn free_variables(&self) -> BTreeSet<String> {
        fn term_frees(t: &Term, out: &mut BTreeSet<String>) {
            if let Term::Var(v) = t {
                out.insert(v.clone());
            }
        }
        fn go(f: &Formula, out: &mut BTreeSet<String>) {
            match f {
                Formula::True | Formula::False => {}
                Formula::Rel { args, .. } => {
                    for a in args {
                        term_frees(a, out);
                    }
                }
                Formula::Sim(a, b) | Formula::Eq(a, b) => {
                    term_frees(a, out);
                    term_frees(b, out);
                }
                Formula::Not(a) => go(a, out),
                Formula::And(a, b) | Formula::Or(a, b) => {
                    go(a, out);
                    go(b, out);
                }
                Formula::Exists(v, a) | Formula::Forall(v, a) => {
                    let mut inner = BTreeSet::new();
                    go(a, &mut inner);
                    inner.remove(v);
                    out.extend(inner);
                }
                Formula::Trcl {
                    xs,
                    ys,
                    phi,
                    from,
                    to,
                } => {
                    let mut inner = BTreeSet::new();
                    go(phi, &mut inner);
                    for v in xs.iter().chain(ys.iter()) {
                        inner.remove(v);
                    }
                    out.extend(inner);
                    for t in from.iter().chain(to.iter()) {
                        term_frees(t, out);
                    }
                }
            }
        }
        let mut out = BTreeSet::new();
        go(self, &mut out);
        out
    }

    /// Returns `true` if the formula is plain first-order (no transitive
    /// closure operator anywhere).
    pub fn is_first_order(&self) -> bool {
        self.subformulas()
            .iter()
            .all(|f| !matches!(f, Formula::Trcl { .. }))
    }

    /// Relation names referenced by the formula, sorted and deduplicated.
    pub fn relations(&self) -> BTreeSet<&str> {
        self.subformulas()
            .iter()
            .filter_map(|f| match f {
                Formula::Rel { rel, .. } => Some(rel.as_str()),
                _ => None,
            })
            .collect()
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::True => write!(f, "true"),
            Formula::False => write!(f, "false"),
            Formula::Rel { rel, args } => {
                write!(f, "{rel}({}, {}, {})", args[0], args[1], args[2])
            }
            Formula::Sim(a, b) => write!(f, "~({a}, {b})"),
            Formula::Eq(a, b) => write!(f, "{a} = {b}"),
            Formula::Not(a) => write!(f, "!({a})"),
            Formula::And(a, b) => write!(f, "({a} & {b})"),
            Formula::Or(a, b) => write!(f, "({a} | {b})"),
            Formula::Exists(v, a) => write!(f, "exists {v}. ({a})"),
            Formula::Forall(v, a) => write!(f, "forall {v}. ({a})"),
            Formula::Trcl {
                xs,
                ys,
                phi,
                from,
                to,
            } => {
                let commas = |ts: &[String]| ts.join(",");
                let terms = |ts: &[Term]| {
                    ts.iter()
                        .map(|t| t.to_string())
                        .collect::<Vec<_>>()
                        .join(",")
                };
                write!(
                    f,
                    "[trcl_({}),({}) {}]({} ; {})",
                    commas(xs),
                    commas(ys),
                    phi,
                    terms(from),
                    terms(to)
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn psi() -> Formula {
        // ψ(x,y,z) = ∃w (E(x,w,y) ∧ E(y,w,z) ∧ E(z,w,x)) — from the Thm 4 proof.
        Formula::exists(
            "w",
            Formula::and_all([
                Formula::rel_vars("E", "x", "w", "y"),
                Formula::rel_vars("E", "y", "w", "z"),
                Formula::rel_vars("E", "z", "w", "x"),
            ]),
        )
    }

    #[test]
    fn width_counts_distinct_names() {
        let f = psi();
        assert_eq!(f.width(), 4); // x, y, z, w
        assert!(f.is_first_order());
        assert_eq!(
            f.free_variables().into_iter().collect::<Vec<_>>(),
            vec!["x", "y", "z"]
        );
    }

    #[test]
    fn reusing_a_bound_variable_does_not_increase_width() {
        // ∃x (E(x,y,z) ∧ ∃x E(y,x,z)) uses 3 distinct names even though x is
        // quantified twice — exactly how the paper counts variables for FO^k.
        let f = Formula::exists(
            "x",
            Formula::rel_vars("E", "x", "y", "z")
                .and(Formula::exists("x", Formula::rel_vars("E", "y", "x", "z"))),
        );
        assert_eq!(f.width(), 3);
        assert_eq!(f.size(), 5);
    }

    #[test]
    fn free_variables_of_quantified_formula() {
        let f = Formula::exists("x", Formula::rel_vars("E", "x", "y", "z"));
        let frees: Vec<String> = f.free_variables().into_iter().collect();
        assert_eq!(frees, vec!["y", "z"]);
        // ∀ binds the same way.
        let g = Formula::forall("y", f.clone());
        assert_eq!(
            g.free_variables().into_iter().collect::<Vec<_>>(),
            vec!["z"]
        );
    }

    #[test]
    fn trcl_binds_its_tuples_but_not_its_endpoints() {
        // [trcl_{(a,b),(c,d)} E(a,b,c) ∧ d=d](x,y ; z,w)
        let f = Formula::Trcl {
            xs: vec!["a".into(), "b".into()],
            ys: vec!["c".into(), "d".into()],
            phi: Box::new(Formula::rel_vars("E", "a", "b", "c").and(Formula::eq_vars("d", "d"))),
            from: vec![Term::var("x"), Term::var("y")],
            to: vec![Term::var("z"), Term::var("w")],
        };
        assert!(!f.is_first_order());
        let frees: Vec<String> = f.free_variables().into_iter().collect();
        assert_eq!(frees, vec!["w", "x", "y", "z"]);
        // Width counts bound tuple names as well.
        assert_eq!(f.width(), 8);
    }

    #[test]
    fn display_round_trips_visually() {
        let f = psi();
        let s = f.to_string();
        assert!(s.contains("exists w."));
        assert!(s.contains("E(x, w, y)"));
        let t = Formula::Eq(Term::constant("London"), Term::var("x"));
        assert_eq!(t.to_string(), "'London' = x");
    }

    #[test]
    fn and_all_or_all_identity_cases() {
        assert_eq!(Formula::and_all([]), Formula::True);
        assert_eq!(Formula::or_all([]), Formula::False);
        let single = Formula::eq_vars("x", "y");
        assert_eq!(Formula::and_all([single.clone()]), single);
        assert_eq!(Formula::or_all([single.clone()]), single);
    }

    #[test]
    fn relations_and_subformulas() {
        let f = Formula::rel_vars("E", "x", "y", "z")
            .and(Formula::rel_vars("F", "x", "y", "z").or(Formula::sim_vars("x", "y")));
        let rels: Vec<&str> = f.relations().into_iter().collect();
        assert_eq!(rels, vec!["E", "F"]);
        assert_eq!(f.subformulas().len(), 5);
    }
}
