//! Lazily-built, cached **permutation indexes** over triplestore relations.
//!
//! Mature RDF stores answer triple patterns from a family of sorted
//! permutations of the triple table (SPO/POS/OSP &c.) rather than scanning
//! one canonical order. This module brings the same idea to the TriAL data
//! model:
//!
//! * every [`Triplestore`] owns a [`StoreIndexes`] cache, created empty and
//!   populated on demand ([`Triplestore::indexes`]);
//! * each relation gets a [`RelationIndex`]: the canonical sorted
//!   [`TripleSet`] *is* the SPO permutation, and the POS / OSP permutations
//!   plus per-component statistics and the adjacency lists used by the
//!   reachability procedures are built lazily behind [`OnceLock`]s;
//! * [`RelationIndex::matching`] answers "all triples with component *i*
//!   equal to *o*" as a borrowed, contiguous slice of the appropriate
//!   permutation — the primitive behind index scans and index nested-loop
//!   joins in `trial-eval`.
//!
//! Indexes are caches, not state: cloning a store (e.g. via
//! [`Triplestore::with_relation`]) starts from an empty cache so a derived
//! store can never observe stale indexes.

use crate::object::ObjectId;
use crate::triple::{Triple, TripleSet};
use std::collections::HashMap;
use std::sync::OnceLock;

/// A streaming cursor over a contiguous run of a permutation index.
///
/// This is the storage-layer primitive behind the pull-based operator
/// pipeline in `trial-eval`: instead of cloning whole relations (or slices of
/// them) into intermediate [`TripleSet`]s, executors pull one [`Triple`] at a
/// time and can stop early — a `LIMIT 10` over a million-triple scan touches
/// ten triples. The cursor borrows the index, so construction is `O(log n)`
/// (for bounded runs) and iteration is zero-copy.
#[derive(Debug, Clone)]
pub struct RangeCursor<'a> {
    slice: &'a [Triple],
    pos: usize,
}

impl<'a> RangeCursor<'a> {
    /// Wraps a borrowed run of triples (already in the desired order).
    pub fn new(slice: &'a [Triple]) -> Self {
        RangeCursor { slice, pos: 0 }
    }

    /// Number of triples not yet yielded.
    pub fn remaining(&self) -> usize {
        self.slice.len() - self.pos
    }

    /// The not-yet-yielded rest of the run as a borrowed slice.
    pub fn rest(&self) -> &'a [Triple] {
        &self.slice[self.pos..]
    }

    /// Splits the not-yet-yielded rest of this cursor into at most `parts`
    /// disjoint contiguous sub-cursors that, drained in order, yield exactly
    /// the same triples as draining `self` would.
    ///
    /// This is the **morsel** primitive of intra-query parallelism: a scan is
    /// carved into near-equal ranges (the first `remaining % parts` morsels
    /// carry one extra triple) and each range becomes an independent pipeline
    /// instance on its own worker thread. Splitting is zero-copy — each
    /// sub-cursor borrows a sub-slice of the same permutation run. Fewer than
    /// `parts` cursors are returned when there are fewer remaining triples
    /// than parts (an empty cursor yields no morsels at all), so callers
    /// never see an empty morsel.
    pub fn split(&self, parts: usize) -> Vec<RangeCursor<'a>> {
        let rest = self.rest();
        let parts = parts.max(1).min(rest.len());
        if parts == 0 {
            return Vec::new();
        }
        let base = rest.len() / parts;
        let extra = rest.len() % parts;
        let mut out = Vec::with_capacity(parts);
        let mut start = 0;
        for i in 0..parts {
            let len = base + usize::from(i < extra);
            out.push(RangeCursor::new(&rest[start..start + len]));
            start += len;
        }
        debug_assert_eq!(start, rest.len());
        out
    }

    /// Advances the cursor past every triple whose [`Permutation::key`]
    /// under `perm` is `<= key`, in `O(log remaining)`.
    ///
    /// The run must already be sorted by `perm` (as every permutation run
    /// handed out by [`RelationIndex`] is) — seeking is a
    /// [`partition_point`](slice::partition_point) over the not-yet-yielded
    /// rest, so a cursor that has already yielded rows only ever moves
    /// forward. Because permutation keys are total (equal key ⟺ equal
    /// triple), `seek` is exact: after `seek(perm, perm.key(&t))` the next
    /// triple yielded is the successor of `t` in the run, which is what
    /// makes resumable pagination a logarithmic re-entry instead of an
    /// `O(offset)` re-scan.
    pub fn seek(&mut self, perm: Permutation, key: [ObjectId; 3]) {
        let skip = self.rest().partition_point(|t| perm.key(t) <= key);
        self.pos += skip;
    }
}

impl Iterator for RangeCursor<'_> {
    type Item = Triple;

    fn next(&mut self) -> Option<Triple> {
        let t = self.slice.get(self.pos).copied()?;
        self.pos += 1;
        Some(t)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.remaining();
        (n, Some(n))
    }
}

impl ExactSizeIterator for RangeCursor<'_> {}

/// A streaming cursor over the edges `from → to` of an [`Adjacency`].
///
/// Yields every edge exactly once, grouped by source (the order of sources is
/// the hash map's iteration order). The per-node counterpart
/// [`Adjacency::successor_cursor`] drives the Proposition 5 BFS in
/// `trial-eval`; this whole-graph cursor is the primitive a partitioned
/// (morsel-driven) reachability walk will consume — see the roadmap's
/// intra-query parallelism item.
#[derive(Debug, Clone)]
pub struct AdjacencyCursor<'a> {
    outer: std::collections::hash_map::Iter<'a, ObjectId, Vec<ObjectId>>,
    current: Option<(ObjectId, std::slice::Iter<'a, ObjectId>)>,
}

impl Iterator for AdjacencyCursor<'_> {
    type Item = (ObjectId, ObjectId);

    fn next(&mut self) -> Option<(ObjectId, ObjectId)> {
        loop {
            if let Some((from, succ)) = &mut self.current {
                if let Some(&to) = succ.next() {
                    return Some((*from, to));
                }
            }
            let (&from, succ) = self.outer.next()?;
            self.current = Some((from, succ.iter()));
        }
    }
}

/// The three sort orders kept per relation, named by which component each
/// makes the primary key (using RDF vocabulary: Subject/Predicate/Object for
/// components 1/2/3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Permutation {
    /// Sorted by (1, 2, 3) — the canonical [`TripleSet`] order.
    Spo,
    /// Sorted by (2, 3, 1).
    Pos,
    /// Sorted by (3, 1, 2).
    Osp,
}

impl Permutation {
    /// All three permutations in declaration order.
    pub const ALL: [Permutation; 3] = [Permutation::Spo, Permutation::Pos, Permutation::Osp];

    /// The permutation whose primary sort key is the given 0-based component.
    ///
    /// # Panics
    /// Panics if `component > 2`.
    pub fn keyed_on(component: usize) -> Permutation {
        match component {
            0 => Permutation::Spo,
            1 => Permutation::Pos,
            2 => Permutation::Osp,
            _ => panic!("triple component index must be 0, 1 or 2 (got {component})"),
        }
    }

    /// The 0-based component this permutation is keyed on.
    pub fn key_component(self) -> usize {
        match self {
            Permutation::Spo => 0,
            Permutation::Pos => 1,
            Permutation::Osp => 2,
        }
    }

    /// The lowercase name (`"spo"`, `"pos"`, `"osp"`), as used by
    /// `explain()` order tags and the server's `?order=` parameter.
    pub fn name(self) -> &'static str {
        match self {
            Permutation::Spo => "spo",
            Permutation::Pos => "pos",
            Permutation::Osp => "osp",
        }
    }

    /// Parses a permutation name as accepted by `?order=`
    /// (case-insensitive `spo`/`pos`/`osp`).
    pub fn parse(name: &str) -> Option<Permutation> {
        match name.to_ascii_lowercase().as_str() {
            "spo" => Some(Permutation::Spo),
            "pos" => Some(Permutation::Pos),
            "osp" => Some(Permutation::Osp),
            _ => None,
        }
    }

    /// The sort key of a triple under this permutation.
    ///
    /// Keys are a *permutation* of all three components, so the induced
    /// order is total: two triples compare equal under a permutation key iff
    /// they are the same triple. This is what lets ordered streams double as
    /// duplicate-free streams and lets top-k heaps deduplicate by key alone.
    #[inline]
    pub fn key(self, t: &Triple) -> [ObjectId; 3] {
        let [s, p, o] = t.0;
        match self {
            Permutation::Spo => [s, p, o],
            Permutation::Pos => [p, o, s],
            Permutation::Osp => [o, s, p],
        }
    }

    /// The **secondary order** of this permutation's bound runs: the
    /// permutation under which a run of `self` with a fixed primary
    /// component is *also* strictly sorted.
    ///
    /// Within such a run the keyed component is constant and the rows are
    /// sorted by the remaining two components in key order — which is
    /// exactly the full key of the permutation keyed on the *second* sort
    /// component (its trailing component is the constant one, so it never
    /// disturbs the comparison). Concretely: a bound SPO run is also
    /// POS-sorted, a bound POS run is also OSP-sorted, and a bound OSP run
    /// is also SPO-sorted. This is what lets a bound index scan deliver two
    /// sort orders for free — the planner exploits it to merge-join
    /// bound ⋈ bound shapes without inserting a sort.
    #[inline]
    pub fn secondary(self) -> Permutation {
        match self {
            Permutation::Spo => Permutation::Pos,
            Permutation::Pos => Permutation::Osp,
            Permutation::Osp => Permutation::Spo,
        }
    }

    /// Reconstructs the triple whose [`Permutation::key`] under `self` is
    /// `key` — the inverse mapping used when a top-k heap of keys is turned
    /// back into result triples.
    #[inline]
    pub fn from_key(self, key: [ObjectId; 3]) -> Triple {
        let [a, b, c] = key;
        match self {
            Permutation::Spo => Triple::new(a, b, c),
            Permutation::Pos => Triple::new(c, a, b),
            Permutation::Osp => Triple::new(b, c, a),
        }
    }
}

impl std::fmt::Display for Permutation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Successor adjacency lists of the "edge graph" of a relation: one edge
/// `x → y` per triple `(x, ℓ, y)`. This is the structure walked by the
/// Proposition 5 reachability procedures in `trial-eval`.
#[derive(Debug, Clone, Default)]
pub struct Adjacency {
    succ: HashMap<ObjectId, Vec<ObjectId>>,
}

impl Adjacency {
    /// Builds adjacency lists from `(source, _, target)` triples.
    pub fn from_triples<'a>(triples: impl IntoIterator<Item = &'a Triple>) -> Adjacency {
        let mut succ: HashMap<ObjectId, Vec<ObjectId>> = HashMap::new();
        for t in triples {
            succ.entry(t.s()).or_default().push(t.o());
        }
        Adjacency { succ }
    }

    /// Adds a single edge `from → to`.
    pub fn insert_edge(&mut self, from: ObjectId, to: ObjectId) {
        self.succ.entry(from).or_default().push(to);
    }

    /// The direct successors of `node` (empty slice if none).
    pub fn successors(&self, node: ObjectId) -> &[ObjectId] {
        self.succ.get(&node).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of nodes with at least one outgoing edge.
    pub fn source_count(&self) -> usize {
        self.succ.len()
    }

    /// Streams every edge `from → to` exactly once.
    pub fn edges(&self) -> AdjacencyCursor<'_> {
        AdjacencyCursor {
            outer: self.succ.iter(),
            current: None,
        }
    }

    /// Streams the successors of one node.
    pub fn successor_cursor(
        &self,
        node: ObjectId,
    ) -> std::iter::Copied<std::slice::Iter<'_, ObjectId>> {
        self.successors(node).iter().copied()
    }
}

/// Per-relation permutation indexes, statistics and adjacency lists.
///
/// Everything is built lazily on first use and cached; the canonical SPO
/// order is the relation's [`TripleSet`] itself and costs nothing. Accessors
/// take the base triple set as an argument so the index never duplicates the
/// store's ownership of the data.
#[derive(Debug, Default)]
pub struct RelationIndex {
    pos: OnceLock<Vec<Triple>>,
    osp: OnceLock<Vec<Triple>>,
    distinct: OnceLock<[usize; 3]>,
    adjacency: OnceLock<Adjacency>,
    adjacency_by_label: OnceLock<HashMap<ObjectId, Adjacency>>,
}

/// Counts runs of equal values of `component` in a slice sorted so that the
/// component is the primary key.
fn count_runs(sorted: &[Triple], component: usize) -> usize {
    let mut runs = 0;
    let mut last: Option<ObjectId> = None;
    for t in sorted {
        let v = t.0[component];
        if last != Some(v) {
            runs += 1;
            last = Some(v);
        }
    }
    runs
}

impl RelationIndex {
    /// Creates an index shell with nothing materialised yet.
    pub fn new() -> Self {
        RelationIndex::default()
    }

    fn sorted_by(base: &TripleSet, perm: Permutation) -> Vec<Triple> {
        let mut v: Vec<Triple> = base.as_slice().to_vec();
        v.sort_unstable_by_key(|t| perm.key(t));
        v
    }

    /// The triples of `base` in the given permutation's order.
    ///
    /// `Spo` is free (it borrows `base`); `Pos` and `Osp` are built on first
    /// use and cached.
    pub fn permutation<'a>(&'a self, base: &'a TripleSet, perm: Permutation) -> &'a [Triple] {
        match perm {
            Permutation::Spo => base.as_slice(),
            Permutation::Pos => self.pos.get_or_init(|| Self::sorted_by(base, perm)),
            Permutation::Osp => self.osp.get_or_init(|| Self::sorted_by(base, perm)),
        }
    }

    /// All triples of `base` whose 0-based `component` equals `value`, as a
    /// contiguous slice of the permutation keyed on that component.
    ///
    /// This is the index-scan / index-probe primitive: `O(log |base|)` to
    /// locate the run, zero-copy to return it.
    pub fn matching<'a>(
        &'a self,
        base: &'a TripleSet,
        component: usize,
        value: ObjectId,
    ) -> &'a [Triple] {
        let perm = Permutation::keyed_on(component);
        let sorted = self.permutation(base, perm);
        let start = sorted.partition_point(|t| t.0[component] < value);
        let end = start + sorted[start..].partition_point(|t| t.0[component] == value);
        &sorted[start..end]
    }

    /// Streams `base` in the given permutation's order without copying.
    ///
    /// Equivalent to iterating [`RelationIndex::permutation`], packaged as a
    /// [`RangeCursor`] so executors can treat full scans and bounded runs
    /// uniformly.
    pub fn scan_cursor<'a>(&'a self, base: &'a TripleSet, perm: Permutation) -> RangeCursor<'a> {
        RangeCursor::new(self.permutation(base, perm))
    }

    /// Streams all triples of `base` whose 0-based `component` equals
    /// `value` — the cursor form of [`RelationIndex::matching`]: `O(log
    /// |base|)` to position, zero-copy to iterate, early-terminatable.
    pub fn matching_cursor<'a>(
        &'a self,
        base: &'a TripleSet,
        component: usize,
        value: ObjectId,
    ) -> RangeCursor<'a> {
        RangeCursor::new(self.matching(base, component, value))
    }

    /// Carves a full scan of `base` (in the given permutation's order) into
    /// at most `parts` disjoint contiguous [`RangeCursor`]s that together
    /// cover exactly [`RelationIndex::scan_cursor`]'s range.
    ///
    /// This is the storage-layer entry point of morsel-driven parallelism:
    /// each returned cursor is an independent zero-copy pipeline source, so
    /// an executor can run one pipeline instance per morsel on its own
    /// thread. Empty morsels are never returned; a relation smaller than
    /// `parts` yields one cursor per triple.
    pub fn partition_cursors<'a>(
        &'a self,
        base: &'a TripleSet,
        perm: Permutation,
        parts: usize,
    ) -> Vec<RangeCursor<'a>> {
        self.scan_cursor(base, perm).split(parts)
    }

    /// Carves the bounded run of [`RelationIndex::matching_cursor`] (all
    /// triples whose `component` equals `value`) into at most `parts`
    /// disjoint sub-range cursors covering exactly that run. Positioning is
    /// still `O(log |base|)`; the split itself is zero-copy.
    pub fn partition_matching_cursors<'a>(
        &'a self,
        base: &'a TripleSet,
        component: usize,
        value: ObjectId,
        parts: usize,
    ) -> Vec<RangeCursor<'a>> {
        self.matching_cursor(base, component, value).split(parts)
    }

    /// Number of distinct values per component `[|π₁|, |π₂|, |π₃|]` — the
    /// statistics behind the planner's selectivity estimates.
    pub fn distinct_counts(&self, base: &TripleSet) -> [usize; 3] {
        *self.distinct.get_or_init(|| {
            [
                count_runs(self.permutation(base, Permutation::Spo), 0),
                count_runs(self.permutation(base, Permutation::Pos), 1),
                count_runs(self.permutation(base, Permutation::Osp), 2),
            ]
        })
    }

    /// The `x → y` adjacency lists of `base` (Proposition 5's plain
    /// reachability graph), built once and cached.
    pub fn adjacency(&self, base: &TripleSet) -> &Adjacency {
        self.adjacency
            .get_or_init(|| Adjacency::from_triples(base.iter()))
    }

    /// Adjacency lists split by the middle element ("label"), for the
    /// same-label reachability procedure.
    pub fn adjacency_by_label(&self, base: &TripleSet) -> &HashMap<ObjectId, Adjacency> {
        self.adjacency_by_label.get_or_init(|| {
            let mut by_label: HashMap<ObjectId, Adjacency> = HashMap::new();
            for t in base.iter() {
                by_label.entry(t.p()).or_default().insert_edge(t.s(), t.o());
            }
            by_label
        })
    }
}

/// All per-relation indexes of one store, keyed by relation name.
#[derive(Debug, Default)]
pub struct StoreIndexes {
    relations: HashMap<String, RelationIndex>,
}

impl StoreIndexes {
    /// Creates an index cache with one empty shell per relation name.
    pub fn for_relations<'a>(names: impl IntoIterator<Item = &'a str>) -> StoreIndexes {
        StoreIndexes {
            relations: names
                .into_iter()
                .map(|n| (n.to_owned(), RelationIndex::new()))
                .collect(),
        }
    }

    /// The index shell for a relation, if the relation exists.
    pub fn relation(&self, name: &str) -> Option<&RelationIndex> {
        self.relations.get(name)
    }
}

/// The lazily-initialised index slot embedded in every [`Triplestore`].
///
/// Cloning yields an *empty* cache (indexes are derived data and a cloned
/// store is usually about to diverge from the original); equality always
/// holds (caches never participate in store identity).
#[derive(Default)]
pub struct IndexCache(OnceLock<Box<StoreIndexes>>);

impl IndexCache {
    /// The indexes, building the per-relation shells on first use.
    pub fn get_or_init(&self, init: impl FnOnce() -> StoreIndexes) -> &StoreIndexes {
        self.0.get_or_init(|| Box::new(init()))
    }
}

impl Clone for IndexCache {
    fn clone(&self) -> Self {
        IndexCache::default()
    }
}

impl PartialEq for IndexCache {
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}

impl Eq for IndexCache {}

impl std::fmt::Debug for IndexCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.0.get() {
            Some(ix) => write!(f, "IndexCache({} relations)", ix.relations.len()),
            None => write!(f, "IndexCache(empty)"),
        }
    }
}

use crate::store::Triplestore;

impl Triplestore {
    /// The store's permutation indexes, built lazily and shared by reference.
    ///
    /// The first call creates an empty [`RelationIndex`] shell per relation;
    /// individual permutations, statistics and adjacency lists materialise
    /// only when an engine first asks for them and are cached for the
    /// lifetime of the store.
    pub fn indexes(&self) -> &StoreIndexes {
        self.index_cache()
            .get_or_init(|| StoreIndexes::for_relations(self.relation_names()))
    }

    /// The index plus triples of one relation, if it exists. Convenience for
    /// engines that need both halves of the [`RelationIndex`] API.
    pub fn relation_with_index(&self, name: &str) -> Option<(&TripleSet, &RelationIndex)> {
        let triples = self.relation(name)?.triples();
        let index = self.indexes().relation(name)?;
        Some((triples, index))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::TriplestoreBuilder;

    fn store() -> Triplestore {
        let mut b = TriplestoreBuilder::new();
        b.add_triple("E", "a", "p", "b");
        b.add_triple("E", "b", "p", "c");
        b.add_triple("E", "c", "q", "a");
        b.add_triple("E", "a", "q", "c");
        b.add_triple("F", "x", "r", "y");
        b.finish()
    }

    #[test]
    fn permutations_are_sorted_by_their_key() {
        let store = store();
        let (base, ix) = store.relation_with_index("E").unwrap();
        for perm in [Permutation::Spo, Permutation::Pos, Permutation::Osp] {
            let sorted = ix.permutation(base, perm);
            assert_eq!(sorted.len(), base.len());
            assert!(sorted
                .windows(2)
                .all(|w| { perm.key(&w[0]) <= perm.key(&w[1]) }));
        }
    }

    #[test]
    fn matching_returns_exactly_the_bound_runs() {
        let store = store();
        let (base, ix) = store.relation_with_index("E").unwrap();
        let a = store.object_id("a").unwrap();
        let p = store.object_id("p").unwrap();
        let c = store.object_id("c").unwrap();
        // Component 1 bound to `a`: the two triples starting at a.
        let by_s = ix.matching(base, 0, a);
        assert_eq!(by_s.len(), 2);
        assert!(by_s.iter().all(|t| t.s() == a));
        // Component 2 bound to `p`.
        let by_p = ix.matching(base, 1, p);
        assert_eq!(by_p.len(), 2);
        assert!(by_p.iter().all(|t| t.p() == p));
        // Component 3 bound to `c`.
        let by_o = ix.matching(base, 2, c);
        assert_eq!(by_o.len(), 2);
        assert!(by_o.iter().all(|t| t.o() == c));
        // A value that never occurs in the component yields an empty slice.
        assert!(ix.matching(base, 1, a).is_empty());
    }

    #[test]
    fn bound_runs_are_strictly_sorted_under_the_secondary_order() {
        let store = store();
        let (base, ix) = store.relation_with_index("E").unwrap();
        for component in 0..3 {
            let primary = Permutation::keyed_on(component);
            let secondary = primary.secondary();
            assert_eq!(secondary.key_component(), (component + 1) % 3);
            // Every bound run of the primary permutation must be strictly
            // increasing under the secondary permutation's full key.
            for t in base.iter() {
                let value = t.0[component];
                let run = ix.matching(base, component, value);
                assert!(!run.is_empty());
                assert!(run
                    .windows(2)
                    .all(|w| secondary.key(&w[0]) < secondary.key(&w[1])));
            }
        }
    }

    #[test]
    fn distinct_counts_match_reality() {
        let store = store();
        let (base, ix) = store.relation_with_index("E").unwrap();
        // Subjects {a, b, c}, predicates {p, q}, objects {a, b, c}.
        assert_eq!(ix.distinct_counts(base), [3, 2, 3]);
    }

    #[test]
    fn adjacency_follows_edges() {
        let store = store();
        let (base, ix) = store.relation_with_index("E").unwrap();
        let a = store.object_id("a").unwrap();
        let adj = ix.adjacency(base);
        let mut succ: Vec<_> = adj.successors(a).to_vec();
        succ.sort_unstable();
        let b = store.object_id("b").unwrap();
        let c = store.object_id("c").unwrap();
        assert_eq!(succ, vec![b, c]);
        assert_eq!(adj.source_count(), 3);
        // Per-label adjacency only follows same-labelled edges.
        let p = store.object_id("p").unwrap();
        let by_label = ix.adjacency_by_label(base);
        assert_eq!(by_label[&p].successors(a), &[b]);
    }

    #[test]
    fn clone_resets_the_cache_so_derived_stores_reindex() {
        let store = store();
        let (base, ix) = store.relation_with_index("E").unwrap();
        assert_eq!(ix.distinct_counts(base)[0], 3);
        // Derive a store with E replaced; its indexes must reflect the new E.
        let only: TripleSet = [store.triple_by_names("a", "p", "b").unwrap()]
            .into_iter()
            .collect();
        let derived = store.with_relation("E", only);
        let (base2, ix2) = derived.relation_with_index("E").unwrap();
        assert_eq!(base2.len(), 1);
        assert_eq!(ix2.distinct_counts(base2), [1, 1, 1]);
        // The original store's cached statistics are untouched.
        assert_eq!(ix.distinct_counts(base), [3, 2, 3]);
    }

    #[test]
    fn scan_cursors_stream_the_permutations() {
        let store = store();
        let (base, ix) = store.relation_with_index("E").unwrap();
        for perm in [Permutation::Spo, Permutation::Pos, Permutation::Osp] {
            let mut cursor = ix.scan_cursor(base, perm);
            assert_eq!(cursor.remaining(), base.len());
            assert_eq!(cursor.len(), base.len());
            let streamed: Vec<Triple> = cursor.by_ref().collect();
            assert_eq!(streamed, ix.permutation(base, perm).to_vec());
            assert_eq!(cursor.remaining(), 0);
            assert_eq!(cursor.next(), None);
        }
    }

    #[test]
    fn matching_cursors_stream_bounded_runs() {
        let store = store();
        let (base, ix) = store.relation_with_index("E").unwrap();
        let a = store.object_id("a").unwrap();
        let mut cursor = ix.matching_cursor(base, 0, a);
        assert_eq!(cursor.remaining(), 2);
        // Early termination: pull one triple, the rest stays borrowed.
        let first = cursor.next().unwrap();
        assert_eq!(first.s(), a);
        assert_eq!(cursor.rest().len(), 1);
        // A value absent from the component yields an empty cursor.
        let p = store.object_id("p").unwrap();
        assert_eq!(ix.matching_cursor(base, 0, p).count(), 0);
    }

    #[test]
    fn adjacency_cursor_streams_every_edge_once() {
        let store = store();
        let (base, ix) = store.relation_with_index("E").unwrap();
        let adj = ix.adjacency(base);
        let mut edges: Vec<_> = adj.edges().collect();
        edges.sort_unstable();
        let mut expected: Vec<_> = base.iter().map(|t| (t.s(), t.o())).collect();
        expected.sort_unstable();
        assert_eq!(edges, expected);
        // Per-node successor cursor agrees with the slice accessor.
        let a = store.object_id("a").unwrap();
        let succ: Vec<_> = adj.successor_cursor(a).collect();
        assert_eq!(succ, adj.successors(a).to_vec());
    }

    #[test]
    fn split_covers_the_rest_disjointly() {
        let store = store();
        let (base, ix) = store.relation_with_index("E").unwrap();
        for perm in [Permutation::Spo, Permutation::Pos, Permutation::Osp] {
            let expected = ix.permutation(base, perm).to_vec();
            for parts in 1..=6 {
                let morsels = ix.partition_cursors(base, perm, parts);
                assert!(morsels.len() <= parts);
                assert!(morsels.iter().all(|m| m.remaining() > 0));
                // Near-equal morsel sizes: max differs from min by at most 1.
                let sizes: Vec<usize> = morsels.iter().map(RangeCursor::remaining).collect();
                let (lo, hi) = (sizes.iter().min(), sizes.iter().max());
                assert!(hi.unwrap() - lo.unwrap() <= 1, "skewed morsels: {sizes:?}");
                // Concatenated in order, the morsels reproduce the full scan.
                let drained: Vec<Triple> = morsels.into_iter().flatten().collect();
                assert_eq!(drained, expected, "parts={parts} perm={perm:?}");
            }
        }
    }

    #[test]
    fn split_respects_already_consumed_prefixes() {
        let store = store();
        let (base, ix) = store.relation_with_index("E").unwrap();
        let mut cursor = ix.scan_cursor(base, Permutation::Spo);
        let first = cursor.next().unwrap();
        let morsels = cursor.split(2);
        let drained: Vec<Triple> = morsels.into_iter().flatten().collect();
        let mut expected = base.as_slice().to_vec();
        assert_eq!(expected.remove(0), first);
        assert_eq!(drained, expected);
    }

    #[test]
    fn split_edge_cases_never_yield_empty_morsels() {
        // Empty cursor: no morsels at all.
        assert!(RangeCursor::new(&[]).split(4).is_empty());
        // Singleton cursor: exactly one morsel regardless of parts.
        let one = [Triple::new(ObjectId(1), ObjectId(2), ObjectId(3))];
        for parts in [1usize, 2, 8] {
            let morsels = RangeCursor::new(&one).split(parts);
            assert_eq!(morsels.len(), 1);
            assert_eq!(morsels[0].remaining(), 1);
        }
        // parts = 0 is treated as 1.
        assert_eq!(RangeCursor::new(&one).split(0).len(), 1);
    }

    #[test]
    fn partition_matching_covers_the_bounded_run() {
        let store = store();
        let (base, ix) = store.relation_with_index("E").unwrap();
        let a = store.object_id("a").unwrap();
        let expected = ix.matching(base, 0, a).to_vec();
        assert_eq!(expected.len(), 2);
        for parts in 1..=4 {
            let morsels = ix.partition_matching_cursors(base, 0, a, parts);
            let drained: Vec<Triple> = morsels.into_iter().flatten().collect();
            assert_eq!(drained, expected, "parts={parts}");
        }
        // A value absent from the component yields no morsels.
        let p = store.object_id("p").unwrap();
        assert!(ix.partition_matching_cursors(base, 0, p, 3).is_empty());
    }

    #[test]
    fn seek_resumes_exactly_after_a_key() {
        let store = store();
        let (base, ix) = store.relation_with_index("E").unwrap();
        for perm in Permutation::ALL {
            let run = ix.permutation(base, perm).to_vec();
            // Seeking to each triple's own key resumes at its successor.
            for (i, t) in run.iter().enumerate() {
                let mut cursor = ix.scan_cursor(base, perm);
                cursor.seek(perm, perm.key(t));
                let rest: Vec<Triple> = cursor.collect();
                assert_eq!(rest, run[i + 1..].to_vec(), "perm={perm} i={i}");
            }
            // Seeking below the first key is a no-op; past the last empties.
            let mut cursor = ix.scan_cursor(base, perm);
            cursor.seek(perm, [ObjectId(0); 3]);
            assert_eq!(cursor.remaining(), run.len());
            cursor.seek(perm, [ObjectId(u32::MAX); 3]);
            assert_eq!(cursor.remaining(), 0);
        }
    }

    #[test]
    fn seek_only_moves_forward() {
        let store = store();
        let (base, ix) = store.relation_with_index("E").unwrap();
        let run = ix.permutation(base, Permutation::Spo).to_vec();
        let mut cursor = ix.scan_cursor(base, Permutation::Spo);
        // Consume past the midpoint, then seek to an earlier key: the cursor
        // must not rewind into already-yielded territory.
        let consumed = run.len() - 1;
        for _ in 0..consumed {
            cursor.next().unwrap();
        }
        cursor.seek(Permutation::Spo, [ObjectId(0); 3]);
        assert_eq!(cursor.remaining(), run.len() - consumed);
        assert_eq!(cursor.next(), Some(run[consumed]));
    }

    #[test]
    fn permutation_keys_round_trip_and_parse() {
        let t = Triple::new(ObjectId(1), ObjectId(2), ObjectId(3));
        for perm in Permutation::ALL {
            assert_eq!(perm.from_key(perm.key(&t)), t, "round trip for {perm}");
            assert_eq!(Permutation::parse(perm.name()), Some(perm));
            assert_eq!(Permutation::parse(&perm.name().to_uppercase()), Some(perm));
            assert_eq!(perm.key(&t)[0], t.0[perm.key_component()]);
        }
        assert_eq!(
            Permutation::Pos.key(&t),
            [ObjectId(2), ObjectId(3), ObjectId(1)]
        );
        assert_eq!(
            Permutation::Osp.key(&t),
            [ObjectId(3), ObjectId(1), ObjectId(2)]
        );
        assert_eq!(Permutation::parse("sop"), None);
        assert_eq!(Permutation::Spo.to_string(), "spo");
    }

    #[test]
    fn indexes_cover_every_relation() {
        let store = store();
        assert!(store.indexes().relation("E").is_some());
        assert!(store.indexes().relation("F").is_some());
        assert!(store.indexes().relation("nope").is_none());
        assert!(store.relation_with_index("nope").is_none());
    }
}
