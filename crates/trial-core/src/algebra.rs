//! The TriAL / TriAL\* expression AST (Section 3 of the paper).
//!
//! [`Expr`] represents expressions of the recursive Triple Algebra:
//!
//! * relation names and the definable constants `U` (universal relation) and
//!   `∅`;
//! * selections `σ_{θ,η}(e)`;
//! * the set operations `∪`, `−` and the definable `∩` and complement;
//! * triple joins `e1 ✶^{i,j,k}_{θ,η} e2`;
//! * the right and left Kleene closures `(e ✶^{i,j,k}_{θ,η})^*` and
//!   `(✶^{i,j,k}_{θ,η} e)^*` that make the algebra recursive (TriAL\*).
//!
//! The AST is engine-agnostic; evaluation lives in `trial-eval`. The
//! [`Display`](std::fmt::Display) rendering is the concrete syntax accepted
//! by `trial-parser`, so `parse(expr.to_string()) == expr` round-trips.

use crate::condition::Conditions;
use crate::error::{Error, Result};
use crate::position::OutputSpec;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// Whether a Kleene closure folds the join to the right or to the left.
///
/// Triple joins are not associative (Example 3 of the paper), so the two
/// closures differ: the right closure iterates `((e ✶ e) ✶ e) ✶ …` while the
/// left closure iterates `e ✶ (e ✶ (e ✶ …))`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StarDirection {
    /// `(e ✶^{i,j,k}_{θ,η})^*` — the accumulated result is the *left*
    /// argument of each new join.
    Right,
    /// `(✶^{i,j,k}_{θ,η} e)^*` — the accumulated result is the *right*
    /// argument of each new join.
    Left,
}

/// A TriAL or TriAL\* expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Expr {
    /// A relation name `E` of the triplestore.
    Rel(String),
    /// The universal relation `U` over the active domain (definable in the
    /// algebra — see Section 3 — but provided as a constant for convenience
    /// and for complements).
    Universe,
    /// The empty relation `∅`.
    Empty,
    /// Selection `σ_{θ,η}(e)`; conditions may only use unprimed positions.
    Select {
        /// Input expression.
        input: Box<Expr>,
        /// Selection conditions.
        cond: Conditions,
    },
    /// Union `e1 ∪ e2`.
    Union(Box<Expr>, Box<Expr>),
    /// Difference `e1 − e2`.
    Diff(Box<Expr>, Box<Expr>),
    /// Intersection `e1 ∩ e2` (definable: `e1 ✶^{1,2,3}_{1=1',2=2',3=3'} e2`).
    Intersect(Box<Expr>, Box<Expr>),
    /// Complement `eᶜ = U − e` (definable).
    Complement(Box<Expr>),
    /// Triple join `e1 ✶^{i,j,k}_{θ,η} e2`.
    Join {
        /// Left argument.
        left: Box<Expr>,
        /// Right argument.
        right: Box<Expr>,
        /// Output specification `(i, j, k)`.
        output: OutputSpec,
        /// Join conditions `(θ, η)`.
        cond: Conditions,
    },
    /// Kleene closure of a join over `e`, in the given direction.
    Star {
        /// The expression being iterated.
        input: Box<Expr>,
        /// Output specification of the iterated join.
        output: OutputSpec,
        /// Conditions of the iterated join.
        cond: Conditions,
        /// Right (`(e ✶)^*`) or left (`(✶ e)^*`) closure.
        direction: StarDirection,
    },
}

impl Expr {
    /// A relation reference.
    pub fn rel(name: impl Into<String>) -> Expr {
        Expr::Rel(name.into())
    }

    /// Selection `σ_{θ,η}(self)`.
    pub fn select(self, cond: Conditions) -> Expr {
        Expr::Select {
            input: Box::new(self),
            cond,
        }
    }

    /// Union `self ∪ other`.
    pub fn union(self, other: Expr) -> Expr {
        Expr::Union(Box::new(self), Box::new(other))
    }

    /// Difference `self − other`.
    pub fn minus(self, other: Expr) -> Expr {
        Expr::Diff(Box::new(self), Box::new(other))
    }

    /// Intersection `self ∩ other`.
    pub fn intersect(self, other: Expr) -> Expr {
        Expr::Intersect(Box::new(self), Box::new(other))
    }

    /// Complement `selfᶜ = U − self`.
    pub fn complement(self) -> Expr {
        Expr::Complement(Box::new(self))
    }

    /// Triple join `self ✶^{output}_{cond} other`.
    pub fn join(self, other: Expr, output: OutputSpec, cond: Conditions) -> Expr {
        Expr::Join {
            left: Box::new(self),
            right: Box::new(other),
            output,
            cond,
        }
    }

    /// Right Kleene closure `(self ✶^{output}_{cond})^*`.
    pub fn right_star(self, output: OutputSpec, cond: Conditions) -> Expr {
        Expr::Star {
            input: Box::new(self),
            output,
            cond,
            direction: StarDirection::Right,
        }
    }

    /// Left Kleene closure `(✶^{output}_{cond} self)^*`.
    pub fn left_star(self, output: OutputSpec, cond: Conditions) -> Expr {
        Expr::Star {
            input: Box::new(self),
            output,
            cond,
            direction: StarDirection::Left,
        }
    }

    /// Immediate sub-expressions.
    pub fn children(&self) -> Vec<&Expr> {
        match self {
            Expr::Rel(_) | Expr::Universe | Expr::Empty => vec![],
            Expr::Select { input, .. } | Expr::Complement(input) | Expr::Star { input, .. } => {
                vec![input]
            }
            Expr::Union(a, b) | Expr::Diff(a, b) | Expr::Intersect(a, b) => vec![a, b],
            Expr::Join { left, right, .. } => vec![left, right],
        }
    }

    /// All sub-expressions (including `self`), pre-order.
    pub fn subexpressions(&self) -> Vec<&Expr> {
        let mut out = vec![self];
        let mut stack: Vec<&Expr> = self.children();
        while let Some(e) = stack.pop() {
            out.push(e);
            stack.extend(e.children());
        }
        out
    }

    /// The size `|e|` of the expression: number of AST nodes plus condition
    /// atoms. This is the `|e|` factor of the paper's complexity bounds.
    pub fn size(&self) -> usize {
        let own_cond = match self {
            Expr::Select { cond, .. } | Expr::Join { cond, .. } | Expr::Star { cond, .. } => {
                cond.len()
            }
            _ => 0,
        };
        1 + own_cond + self.children().iter().map(|c| c.size()).sum::<usize>()
    }

    /// Depth of the expression tree.
    pub fn depth(&self) -> usize {
        1 + self.children().iter().map(|c| c.depth()).max().unwrap_or(0)
    }

    /// Names of all relations referenced by the expression, sorted and
    /// deduplicated.
    pub fn relations(&self) -> Vec<&str> {
        let mut names: BTreeSet<&str> = BTreeSet::new();
        for e in self.subexpressions() {
            if let Expr::Rel(name) = e {
                names.insert(name.as_str());
            }
        }
        names.into_iter().collect()
    }

    /// Returns `true` if the expression uses a Kleene closure (i.e. it is a
    /// TriAL\* expression rather than plain TriAL).
    pub fn is_recursive(&self) -> bool {
        self.subexpressions()
            .iter()
            .any(|e| matches!(e, Expr::Star { .. }))
    }

    /// Returns `true` if the expression uses the universal relation, either
    /// explicitly or through a complement.
    pub fn uses_universe(&self) -> bool {
        self.subexpressions()
            .iter()
            .any(|e| matches!(e, Expr::Universe | Expr::Complement(_)))
    }

    /// Structural validation:
    ///
    /// * selection conditions must only mention unprimed positions;
    /// * (joins and stars may mention any of the six positions, so nothing to
    ///   check there).
    pub fn validate(&self) -> Result<()> {
        for e in self.subexpressions() {
            if let Expr::Select { cond, .. } = e {
                if !cond.is_left_only() {
                    let offending = cond
                        .theta
                        .iter()
                        .map(|a| a.to_string())
                        .chain(cond.eta.iter().map(|a| a.to_string()))
                        .find(|_| true)
                        .unwrap_or_default();
                    return Err(Error::SelectionUsesRightPosition { atom: offending });
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Rel(name) => write!(f, "{name}"),
            Expr::Universe => write!(f, "U"),
            Expr::Empty => write!(f, "EMPTY"),
            Expr::Select { input, cond } => write!(f, "SELECT[{cond}]({input})"),
            Expr::Union(a, b) => write!(f, "({a} UNION {b})"),
            Expr::Diff(a, b) => write!(f, "({a} MINUS {b})"),
            Expr::Intersect(a, b) => write!(f, "({a} INTERSECT {b})"),
            Expr::Complement(e) => write!(f, "COMPL({e})"),
            Expr::Join {
                left,
                right,
                output,
                cond,
            } => {
                if cond.is_empty() {
                    write!(f, "({left} JOIN[{output}] {right})")
                } else {
                    write!(f, "({left} JOIN[{output} | {cond}] {right})")
                }
            }
            Expr::Star {
                input,
                output,
                cond,
                direction,
            } => {
                let cond_part = if cond.is_empty() {
                    format!("[{output}]")
                } else {
                    format!("[{output} | {cond}]")
                };
                match direction {
                    StarDirection::Right => write!(f, "STAR({input} JOIN{cond_part})"),
                    StarDirection::Left => write!(f, "STAR(JOIN{cond_part} {input})"),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::position::Pos;

    fn out(i: Pos, j: Pos, k: Pos) -> OutputSpec {
        OutputSpec::new(i, j, k)
    }

    /// Example 2 of the paper: `E ✶^{1,3',3}_{2=1'} E`.
    fn example2() -> Expr {
        Expr::rel("E").join(
            Expr::rel("E"),
            out(Pos::L1, Pos::R3, Pos::L3),
            Conditions::new().obj_eq(Pos::L2, Pos::R1),
        )
    }

    #[test]
    fn display_example2() {
        assert_eq!(example2().to_string(), "(E JOIN[1,3',3 | 2=1'] E)");
    }

    #[test]
    fn display_reachability_queries() {
        // Reach→ = (E ✶^{1,2,3'}_{3=1'})^*   (Example 4)
        let reach_fwd = Expr::rel("E").right_star(
            out(Pos::L1, Pos::L2, Pos::R3),
            Conditions::new().obj_eq(Pos::L3, Pos::R1),
        );
        assert_eq!(reach_fwd.to_string(), "STAR(E JOIN[1,2,3' | 3=1'])");
        // Reach⇓ = (✶^{1',2',3}_{1=2'} E)^*   (Example 4)
        let reach_down = Expr::rel("E").left_star(
            out(Pos::R1, Pos::R2, Pos::L3),
            Conditions::new().obj_eq(Pos::L1, Pos::R2),
        );
        assert_eq!(reach_down.to_string(), "STAR(JOIN[1',2',3 | 1=2'] E)");
    }

    #[test]
    fn display_set_ops_and_select() {
        let e = Expr::rel("A")
            .union(Expr::rel("B"))
            .minus(Expr::rel("C").intersect(Expr::Universe))
            .complement();
        assert_eq!(e.to_string(), "COMPL(((A UNION B) MINUS (C INTERSECT U)))");
        let s = Expr::rel("E").select(Conditions::new().obj_eq_const(Pos::L2, "part_of"));
        assert_eq!(s.to_string(), "SELECT[2='part_of'](E)");
        assert_eq!(Expr::Empty.to_string(), "EMPTY");
    }

    #[test]
    fn size_depth_relations() {
        let e = example2();
        // join node + cond atom + two Rel nodes = 4
        assert_eq!(e.size(), 4);
        assert_eq!(e.depth(), 2);
        assert_eq!(e.relations(), vec!["E"]);
        let e2 = Expr::rel("A").union(Expr::rel("B").minus(Expr::rel("A")));
        assert_eq!(e2.relations(), vec!["A", "B"]);
        assert_eq!(e2.size(), 5);
        assert_eq!(e2.depth(), 3);
    }

    #[test]
    fn recursion_and_universe_detection() {
        assert!(!example2().is_recursive());
        let star = example2().right_star(
            out(Pos::L1, Pos::L2, Pos::R3),
            Conditions::new().obj_eq(Pos::L3, Pos::R1),
        );
        assert!(star.is_recursive());
        assert!(!example2().uses_universe());
        assert!(Expr::Universe.uses_universe());
        assert!(Expr::rel("E").complement().uses_universe());
    }

    #[test]
    fn subexpressions_preorder_contains_all_nodes() {
        let e = example2().union(Expr::rel("F"));
        let subs = e.subexpressions();
        assert_eq!(subs.len(), 5); // union, join, E, E, F
        assert!(matches!(subs[0], Expr::Union(_, _)));
    }

    #[test]
    fn validation_rejects_primed_selection() {
        let bad = Expr::rel("E").select(Conditions::new().obj_eq(Pos::L1, Pos::R1));
        assert!(matches!(
            bad.validate(),
            Err(Error::SelectionUsesRightPosition { .. })
        ));
        let good = Expr::rel("E").select(Conditions::new().obj_eq(Pos::L1, Pos::L3));
        assert!(good.validate().is_ok());
        // Nested: validation recurses into sub-expressions.
        let nested_bad = Expr::rel("A").union(bad);
        assert!(nested_bad.validate().is_err());
    }

    #[test]
    fn display_star_without_conditions() {
        let e = Expr::rel("E").right_star(out(Pos::L1, Pos::L2, Pos::R3), Conditions::new());
        assert_eq!(e.to_string(), "STAR(E JOIN[1,2,3'])");
        let j = Expr::rel("E").join(
            Expr::rel("E"),
            out(Pos::L1, Pos::L2, Pos::R3),
            Conditions::new(),
        );
        assert_eq!(j.to_string(), "(E JOIN[1,2,3'] E)");
    }

    #[test]
    fn example4_same_company_query_displays() {
        // ((E ✶^{1,3',3}_{2=1'})^* ✶^{1,2,3'}_{3=1', 2=2'})^*  — the query Q
        let inner = Expr::rel("E").right_star(
            out(Pos::L1, Pos::R3, Pos::L3),
            Conditions::new().obj_eq(Pos::L2, Pos::R1),
        );
        let q = inner.right_star(
            out(Pos::L1, Pos::L2, Pos::R3),
            Conditions::new()
                .obj_eq(Pos::L3, Pos::R1)
                .obj_eq(Pos::L2, Pos::R2),
        );
        assert_eq!(
            q.to_string(),
            "STAR(STAR(E JOIN[1,3',3 | 2=1']) JOIN[1,2,3' | 3=1',2=2'])"
        );
        assert!(q.is_recursive());
        assert_eq!(q.depth(), 3);
    }
}
