//! Join positions and output specifications.
//!
//! A triple join `R ✶^{i,j,k}_{θ,η} R'` addresses the six components of the
//! joined pair of triples by the indexes `1, 2, 3` (the left triple) and
//! `1', 2', 3'` (the right triple). [`Pos`] enumerates those six positions,
//! and [`OutputSpec`] is the triple `(i, j, k)` of positions kept in the
//! output.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Which of the two joined triples a position addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Side {
    /// The left argument of the join (unprimed positions `1, 2, 3`).
    Left,
    /// The right argument of the join (primed positions `1', 2', 3'`).
    Right,
}

/// One of the six positions `1, 2, 3, 1', 2', 3'` of a join.
///
/// In selections (`σ_{θ,η}`) only the unprimed positions are meaningful.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Pos {
    /// Position `1` of the left triple.
    L1,
    /// Position `2` of the left triple.
    L2,
    /// Position `3` of the left triple.
    L3,
    /// Position `1'` of the right triple.
    R1,
    /// Position `2'` of the right triple.
    R2,
    /// Position `3'` of the right triple.
    R3,
}

impl Pos {
    /// All six positions in declaration order.
    pub const ALL: [Pos; 6] = [Pos::L1, Pos::L2, Pos::L3, Pos::R1, Pos::R2, Pos::R3];

    /// The three unprimed (left) positions.
    pub const LEFT: [Pos; 3] = [Pos::L1, Pos::L2, Pos::L3];

    /// The three primed (right) positions.
    pub const RIGHT: [Pos; 3] = [Pos::R1, Pos::R2, Pos::R3];

    /// Which triple of the joined pair this position addresses.
    #[inline]
    pub fn side(self) -> Side {
        match self {
            Pos::L1 | Pos::L2 | Pos::L3 => Side::Left,
            Pos::R1 | Pos::R2 | Pos::R3 => Side::Right,
        }
    }

    /// Returns `true` for the unprimed positions `1, 2, 3`.
    #[inline]
    pub fn is_left(self) -> bool {
        self.side() == Side::Left
    }

    /// Returns `true` for the primed positions `1', 2', 3'`.
    #[inline]
    pub fn is_right(self) -> bool {
        self.side() == Side::Right
    }

    /// The 0-based component index (`0`, `1` or `2`) within its triple.
    #[inline]
    pub fn component_index(self) -> usize {
        match self {
            Pos::L1 | Pos::R1 => 0,
            Pos::L2 | Pos::R2 => 1,
            Pos::L3 | Pos::R3 => 2,
        }
    }

    /// The 1-based component number (`1`, `2` or `3`) within its triple.
    #[inline]
    pub fn component(self) -> u8 {
        self.component_index() as u8 + 1
    }

    /// Builds a position from a side and a 1-based component number.
    ///
    /// # Panics
    /// Panics if `component` is not 1, 2 or 3.
    pub fn new(side: Side, component: u8) -> Self {
        match (side, component) {
            (Side::Left, 1) => Pos::L1,
            (Side::Left, 2) => Pos::L2,
            (Side::Left, 3) => Pos::L3,
            (Side::Right, 1) => Pos::R1,
            (Side::Right, 2) => Pos::R2,
            (Side::Right, 3) => Pos::R3,
            _ => panic!("position component must be 1, 2 or 3 (got {component})"),
        }
    }

    /// The corresponding position on the other side (`1 ↔ 1'`, etc.).
    #[inline]
    pub fn mirrored(self) -> Pos {
        match self {
            Pos::L1 => Pos::R1,
            Pos::L2 => Pos::R2,
            Pos::L3 => Pos::R3,
            Pos::R1 => Pos::L1,
            Pos::R2 => Pos::L2,
            Pos::R3 => Pos::L3,
        }
    }
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pos::L1 => write!(f, "1"),
            Pos::L2 => write!(f, "2"),
            Pos::L3 => write!(f, "3"),
            Pos::R1 => write!(f, "1'"),
            Pos::R2 => write!(f, "2'"),
            Pos::R3 => write!(f, "3'"),
        }
    }
}

/// The output specification `(i, j, k)` of a join: which three of the six
/// positions are kept, and in which order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OutputSpec(pub [Pos; 3]);

impl OutputSpec {
    /// Builds an output specification from three positions.
    pub fn new(i: Pos, j: Pos, k: Pos) -> Self {
        OutputSpec([i, j, k])
    }

    /// The identity output `(1, 2, 3)`: keep the left triple unchanged.
    pub const IDENTITY: OutputSpec = OutputSpec([Pos::L1, Pos::L2, Pos::L3]);

    /// Iterates over the three output positions.
    pub fn iter(&self) -> impl Iterator<Item = Pos> + '_ {
        self.0.iter().copied()
    }

    /// Returns the position kept in output slot `slot` (0-based).
    pub fn get(&self, slot: usize) -> Pos {
        self.0[slot]
    }

    /// `true` if every output position addresses the left triple.
    pub fn all_left(&self) -> bool {
        self.0.iter().all(|p| p.is_left())
    }

    /// `true` if every output position addresses the right triple.
    pub fn all_right(&self) -> bool {
        self.0.iter().all(|p| p.is_right())
    }

    /// The output specification with every position moved to the other side
    /// (`1 ↔ 1'` etc.).
    ///
    /// Because the triple join is symmetric up to relabelling —
    /// `e1 ✶^{i,j,k}_{θ,η} e2 = e2 ✶^{m(i),m(j),m(k)}_{m(θ),m(η)} e1` where
    /// `m` mirrors positions — the planner uses this (together with
    /// [`crate::Conditions::mirrored`]) to swap join arguments, e.g. to hash
    /// the smaller side.
    pub fn mirrored(&self) -> OutputSpec {
        OutputSpec([
            self.0[0].mirrored(),
            self.0[1].mirrored(),
            self.0[2].mirrored(),
        ])
    }
}

impl fmt::Display for OutputSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{},{},{}", self.0[0], self.0[1], self.0[2])
    }
}

impl From<[Pos; 3]> for OutputSpec {
    fn from(v: [Pos; 3]) -> Self {
        OutputSpec(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sides_and_components() {
        assert_eq!(Pos::L1.side(), Side::Left);
        assert_eq!(Pos::R2.side(), Side::Right);
        assert!(Pos::L3.is_left());
        assert!(Pos::R3.is_right());
        assert_eq!(Pos::L2.component(), 2);
        assert_eq!(Pos::R3.component_index(), 2);
    }

    #[test]
    fn new_and_mirror() {
        for side in [Side::Left, Side::Right] {
            for c in 1..=3u8 {
                let p = Pos::new(side, c);
                assert_eq!(p.side(), side);
                assert_eq!(p.component(), c);
                assert_eq!(p.mirrored().component(), c);
                assert_ne!(p.mirrored().side(), p.side());
            }
        }
    }

    #[test]
    #[should_panic(expected = "position component must be 1, 2 or 3")]
    fn new_rejects_bad_component() {
        let _ = Pos::new(Side::Left, 4);
    }

    #[test]
    fn display_matches_paper_notation() {
        let rendered: Vec<String> = Pos::ALL.iter().map(|p| p.to_string()).collect();
        assert_eq!(rendered, vec!["1", "2", "3", "1'", "2'", "3'"]);
    }

    #[test]
    fn output_spec_basics() {
        let out = OutputSpec::new(Pos::L1, Pos::R3, Pos::L3);
        assert_eq!(out.to_string(), "1,3',3");
        assert_eq!(out.get(1), Pos::R3);
        assert_eq!(out.iter().count(), 3);
        assert!(!out.all_left());
        assert!(!out.all_right());
        assert!(OutputSpec::IDENTITY.all_left());
        assert!(OutputSpec::from([Pos::R1, Pos::R2, Pos::R3]).all_right());
    }
}
