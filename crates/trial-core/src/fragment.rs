//! Fragment analysis: TriAL, TriAL\*, TriAL⁼ and reachTA⁼.
//!
//! Section 5 of the paper identifies two fragments with lower evaluation
//! complexity:
//!
//! * **TriAL⁼** — conditions in joins and selections use *equalities only*
//!   (no `≠`). QueryComputation drops from `O(|e|·|T|²)` to
//!   `O(|e|·|O|·|T|)` (Proposition 4).
//! * **reachTA⁼** — TriAL⁼ plus Kleene stars restricted to the two
//!   reachability shapes `(R ✶^{1,2,3'}_{3=1'})^*` and
//!   `(R ✶^{1,2,3'}_{3=1', 2=2'})^*`. QueryComputation stays
//!   `O(|e|·|O|·|T|)` (Proposition 5).
//!
//! The analysis here is purely syntactic and is used by `trial-eval`'s
//! planner to route expressions to the cheapest applicable engine, and by
//! the benchmarks to label workloads.

use crate::algebra::{Expr, StarDirection};
use crate::condition::Conditions;
use crate::position::{OutputSpec, Pos};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The smallest fragment of the paper's hierarchy that syntactically
/// contains a given expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Fragment {
    /// Non-recursive, equalities only (TriAL⁼).
    TriAlEq,
    /// Non-recursive, with inequalities (full TriAL).
    TriAl,
    /// Recursive, equalities only, all stars are reachability stars
    /// (reachTA⁼).
    ReachTaEq,
    /// Recursive, equalities only, but with general stars (TriAL⁼ + stars).
    TriAlStarEq,
    /// Full recursive algebra (TriAL\*).
    TriAlStar,
}

impl Fragment {
    /// `true` for the recursive fragments.
    pub fn is_recursive(self) -> bool {
        matches!(
            self,
            Fragment::ReachTaEq | Fragment::TriAlStarEq | Fragment::TriAlStar
        )
    }

    /// `true` for the equality-only fragments.
    pub fn equalities_only(self) -> bool {
        !matches!(self, Fragment::TriAl | Fragment::TriAlStar)
    }

    /// The asymptotic QueryComputation bound the paper proves for this
    /// fragment, as a human-readable string (used in benchmark reports).
    pub fn paper_bound(self) -> &'static str {
        match self {
            Fragment::TriAlEq => "O(|e|·|O|·|T|)   (Proposition 4)",
            Fragment::TriAl => "O(|e|·|T|^2)      (Theorem 3)",
            Fragment::ReachTaEq => "O(|e|·|O|·|T|)   (Proposition 5)",
            Fragment::TriAlStarEq => "O(|e|·|O|·|T|^2) (Section 5 remark)",
            Fragment::TriAlStar => "O(|e|·|T|^3)      (Theorem 3)",
        }
    }
}

impl fmt::Display for Fragment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fragment::TriAlEq => write!(f, "TriAL="),
            Fragment::TriAl => write!(f, "TriAL"),
            Fragment::ReachTaEq => write!(f, "reachTA="),
            Fragment::TriAlStarEq => write!(f, "TriAL*="),
            Fragment::TriAlStar => write!(f, "TriAL*"),
        }
    }
}

/// Detailed syntactic facts about an expression, from which the fragment is
/// derived.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FragmentReport {
    /// The expression contains at least one Kleene star.
    pub recursive: bool,
    /// Every condition in the expression uses equalities only.
    pub equalities_only: bool,
    /// Every Kleene star in the expression is one of the two reachability
    /// stars admitted by reachTA⁼.
    pub stars_are_reachability: bool,
    /// Number of join operators.
    pub join_count: usize,
    /// Number of Kleene stars.
    pub star_count: usize,
    /// Number of condition atoms across the whole expression.
    pub condition_atoms: usize,
    /// The expression mentions the universal relation (directly or via
    /// complement), which may be expensive to materialise.
    pub uses_universe: bool,
}

impl FragmentReport {
    /// Classifies the report into the smallest containing [`Fragment`].
    pub fn fragment(&self) -> Fragment {
        match (self.recursive, self.equalities_only) {
            (false, true) => Fragment::TriAlEq,
            (false, false) => Fragment::TriAl,
            (true, true) => {
                if self.stars_are_reachability {
                    Fragment::ReachTaEq
                } else {
                    Fragment::TriAlStarEq
                }
            }
            (true, false) => Fragment::TriAlStar,
        }
    }
}

/// Returns `true` if a star with this output/condition/direction is one of
/// the two reachability stars of Proposition 5:
/// `(R ✶^{1,2,3'}_{3=1'})^*` or `(R ✶^{1,2,3'}_{3=1', 2=2'})^*`.
///
/// Only right stars qualify (the paper defines the fragment with the right
/// Kleene closure), conditions must have no data atoms and no constants.
pub fn is_reachability_star(
    output: &OutputSpec,
    cond: &Conditions,
    direction: StarDirection,
) -> bool {
    if direction != StarDirection::Right {
        return false;
    }
    if *output != OutputSpec::new(Pos::L1, Pos::L2, Pos::R3) {
        return false;
    }
    if !cond.eta.is_empty() || cond.has_constants() || !cond.equalities_only() {
        return false;
    }
    let mut pairs: Vec<(Pos, Pos)> = cond.cross_equalities();
    pairs.sort();
    pairs.dedup();
    // All theta atoms must be cross equalities (no same-side equalities).
    if pairs.len() != cond.theta.len() {
        let mut unique_atoms: Vec<_> = cond.theta.clone();
        unique_atoms.sort_by_key(|a| format!("{a}"));
        unique_atoms.dedup();
        if pairs.len() != unique_atoms.len() {
            return false;
        }
    }
    pairs == vec![(Pos::L3, Pos::R1)] || pairs == vec![(Pos::L2, Pos::R2), (Pos::L3, Pos::R1)]
}

/// Analyses an expression and produces a [`FragmentReport`].
pub fn analyze(expr: &Expr) -> FragmentReport {
    let mut report = FragmentReport {
        recursive: false,
        equalities_only: true,
        stars_are_reachability: true,
        join_count: 0,
        star_count: 0,
        condition_atoms: 0,
        uses_universe: false,
    };
    for e in expr.subexpressions() {
        match e {
            Expr::Universe | Expr::Complement(_) => report.uses_universe = true,
            Expr::Select { cond, .. } => {
                report.condition_atoms += cond.len();
                report.equalities_only &= cond.equalities_only();
            }
            Expr::Join { cond, .. } => {
                report.join_count += 1;
                report.condition_atoms += cond.len();
                report.equalities_only &= cond.equalities_only();
            }
            Expr::Star {
                cond,
                output,
                direction,
                ..
            } => {
                report.recursive = true;
                report.star_count += 1;
                report.condition_atoms += cond.len();
                report.equalities_only &= cond.equalities_only();
                report.stars_are_reachability &= is_reachability_star(output, cond, *direction);
            }
            _ => {}
        }
    }
    if !report.recursive {
        // "All stars are reachability stars" is vacuously true but
        // irrelevant for non-recursive expressions; normalise it to true.
        report.stars_are_reachability = true;
    }
    report
}

/// Convenience: classify an expression directly.
pub fn classify(expr: &Expr) -> Fragment {
    analyze(expr).fragment()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{queries, ExprBuilderExt};
    use crate::condition::Conditions;
    use crate::position::Pos;

    #[test]
    fn classify_nonrecursive() {
        assert_eq!(classify(&queries::example2("E")), Fragment::TriAlEq);
        assert_eq!(classify(&queries::at_least_four_objects()), Fragment::TriAl);
        assert_eq!(classify(&Expr::rel("E")), Fragment::TriAlEq);
        assert_eq!(classify(&Expr::Universe), Fragment::TriAlEq);
    }

    #[test]
    fn classify_reachability_stars() {
        assert_eq!(classify(&queries::reach_forward("E")), Fragment::ReachTaEq);
        assert_eq!(
            classify(&queries::reach_same_label("E")),
            Fragment::ReachTaEq
        );
        // Reach⇓ is a left star with a different output: not a reachTA= star.
        assert_eq!(classify(&queries::reach_down("E")), Fragment::TriAlStarEq);
        // Query Q contains the non-reach star (E ✶^{1,3',3}_{2=1'})^*.
        assert_eq!(
            classify(&queries::same_company_reachability("E")),
            Fragment::TriAlStarEq
        );
    }

    #[test]
    fn classify_star_with_inequality() {
        let e = Expr::rel("E").right_star(
            OutputSpec::new(Pos::L1, Pos::L2, Pos::R3),
            Conditions::new()
                .obj_eq(Pos::L3, Pos::R1)
                .obj_neq(Pos::L1, Pos::R3),
        );
        assert_eq!(classify(&e), Fragment::TriAlStar);
    }

    #[test]
    fn reachability_star_shape_checks() {
        let out = OutputSpec::new(Pos::L1, Pos::L2, Pos::R3);
        let plain = Conditions::new().obj_eq(Pos::L3, Pos::R1);
        let labelled = Conditions::new()
            .obj_eq(Pos::L3, Pos::R1)
            .obj_eq(Pos::L2, Pos::R2);
        assert!(is_reachability_star(&out, &plain, StarDirection::Right));
        assert!(is_reachability_star(&out, &labelled, StarDirection::Right));
        // Wrong direction.
        assert!(!is_reachability_star(&out, &plain, StarDirection::Left));
        // Wrong output spec.
        let wrong_out = OutputSpec::new(Pos::L1, Pos::R3, Pos::L3);
        assert!(!is_reachability_star(
            &wrong_out,
            &plain,
            StarDirection::Right
        ));
        // Extra data condition.
        let with_data = Conditions::new()
            .obj_eq(Pos::L3, Pos::R1)
            .data_eq(Pos::L1, Pos::R1);
        assert!(!is_reachability_star(
            &out,
            &with_data,
            StarDirection::Right
        ));
        // Constant condition.
        let with_const = Conditions::new()
            .obj_eq(Pos::L3, Pos::R1)
            .obj_eq_const(Pos::L2, "part_of");
        assert!(!is_reachability_star(
            &out,
            &with_const,
            StarDirection::Right
        ));
        // Wrong equality pair.
        let wrong_pair = Conditions::new().obj_eq(Pos::L1, Pos::R1);
        assert!(!is_reachability_star(
            &out,
            &wrong_pair,
            StarDirection::Right
        ));
        // Empty condition (cartesian-style star) is not a reachability star.
        assert!(!is_reachability_star(
            &out,
            &Conditions::new(),
            StarDirection::Right
        ));
    }

    #[test]
    fn report_counts() {
        let q = queries::same_company_reachability("E");
        let report = analyze(&q);
        assert!(report.recursive);
        assert_eq!(report.star_count, 2);
        assert_eq!(report.join_count, 0);
        assert_eq!(report.condition_atoms, 3);
        assert!(report.equalities_only);
        assert!(!report.uses_universe);
        assert!(!report.stars_are_reachability);

        let four = queries::at_least_four_objects();
        let report = analyze(&four);
        assert!(!report.recursive);
        assert!(report.uses_universe);
        assert!(!report.equalities_only);
        assert_eq!(report.join_count, 1);
        assert_eq!(report.condition_atoms, 6);
    }

    #[test]
    fn fragment_properties() {
        assert!(Fragment::ReachTaEq.is_recursive());
        assert!(!Fragment::TriAlEq.is_recursive());
        assert!(Fragment::TriAlEq.equalities_only());
        assert!(!Fragment::TriAlStar.equalities_only());
        for f in [
            Fragment::TriAlEq,
            Fragment::TriAl,
            Fragment::ReachTaEq,
            Fragment::TriAlStarEq,
            Fragment::TriAlStar,
        ] {
            assert!(!f.paper_bound().is_empty());
            assert!(!f.to_string().is_empty());
        }
    }

    #[test]
    fn selection_with_inequality_is_full_trial() {
        let e = Expr::rel("E").select(Conditions::new().obj_neq(Pos::L1, Pos::L3));
        assert_eq!(classify(&e), Fragment::TriAl);
        let e2 = Expr::rel("E").select(Conditions::new().obj_eq(Pos::L1, Pos::L3));
        assert_eq!(classify(&e2), Fragment::TriAlEq);
    }

    #[test]
    fn intersect_via_join_is_equality_fragment() {
        let e = Expr::rel("A").intersect_via_join(Expr::rel("B"));
        assert_eq!(classify(&e), Fragment::TriAlEq);
    }
}
