//! Error types shared by the TriAL crates.

use std::fmt;

/// Convenience result alias used throughout the TriAL crates.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised while constructing or validating triplestores and
/// algebra expressions.
///
/// Evaluation-time errors (unknown relations, unresolvable constants, …) are
/// also reported through this type so that downstream crates can share a
/// single error channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A relation name was referenced that does not exist in the triplestore.
    UnknownRelation(String),
    /// An object name was referenced (e.g. as a constant in a condition) that
    /// does not exist in the triplestore.
    UnknownObject(String),
    /// A selection condition mentioned a right-hand-side position (`1'`, `2'`,
    /// `3'`), which is only meaningful inside a join.
    SelectionUsesRightPosition {
        /// Rendering of the offending condition atom.
        atom: String,
    },
    /// An expression failed structural validation.
    InvalidExpression(String),
    /// A parse error, reported by `trial-parser` or `trial-datalog`.
    Parse {
        /// Human-readable message.
        message: String,
        /// Byte offset into the input where the error was detected.
        offset: usize,
    },
    /// The evaluation engine does not support the given expression
    /// (used by restricted engines such as the reachTA⁼ fast path).
    Unsupported(String),
    /// A resource limit (configured by the caller) was exceeded during
    /// evaluation, e.g. the materialised universal relation would be too big.
    LimitExceeded(String),
    /// The evaluation was cancelled before completion — the deadline passed
    /// or the caller gave up. The payload is a machine-readable reason slug
    /// (`deadline_exceeded`, `shutdown`, `disconnected`), which services use
    /// verbatim as the structured error kind.
    Cancelled(String),
}

impl Error {
    /// The byte offset of a [`Error::Parse`] error, `None` for other kinds.
    ///
    /// Services that report errors structurally (e.g. the `trial-server`
    /// `/query` endpoint) use this to point clients at the failing position
    /// without scraping the `Display` rendering.
    pub fn parse_offset(&self) -> Option<usize> {
        match self {
            Error::Parse { offset, .. } => Some(*offset),
            _ => None,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownRelation(name) => write!(f, "unknown relation `{name}`"),
            Error::UnknownObject(name) => write!(f, "unknown object `{name}`"),
            Error::SelectionUsesRightPosition { atom } => write!(
                f,
                "selection condition `{atom}` uses a primed position; primed positions are only valid in joins"
            ),
            Error::InvalidExpression(msg) => write!(f, "invalid expression: {msg}"),
            Error::Parse { message, offset } => {
                write!(f, "parse error at offset {offset}: {message}")
            }
            Error::Unsupported(msg) => write!(f, "unsupported expression: {msg}"),
            Error::LimitExceeded(msg) => write!(f, "resource limit exceeded: {msg}"),
            Error::Cancelled(reason) => write!(f, "query cancelled: {reason}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_unknown_relation() {
        let e = Error::UnknownRelation("E".into());
        assert_eq!(e.to_string(), "unknown relation `E`");
    }

    #[test]
    fn display_parse_error() {
        let e = Error::Parse {
            message: "unexpected token".into(),
            offset: 17,
        };
        assert!(e.to_string().contains("offset 17"));
        assert!(e.to_string().contains("unexpected token"));
    }

    #[test]
    fn display_selection_uses_right_position() {
        let e = Error::SelectionUsesRightPosition {
            atom: "1'=2".into(),
        };
        assert!(e.to_string().contains("1'=2"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_std_error<E: std::error::Error>() {}
        assert_std_error::<Error>();
    }

    #[test]
    fn parse_offset_accessor() {
        let e = Error::Parse {
            message: "boom".into(),
            offset: 42,
        };
        assert_eq!(e.parse_offset(), Some(42));
        assert_eq!(Error::UnknownRelation("E".into()).parse_offset(), None);
    }
}
