//! Triples and sets of triples.
//!
//! A TriAL expression maps a triplestore to a *set of triples* — closure is
//! the defining property of the algebra. [`TripleSet`] is the canonical
//! result representation: a sorted, duplicate-free vector of [`Triple`]s with
//! set operations matching the algebra's `∪`, `−` and `∩`.

use crate::object::ObjectId;
use crate::position::Side;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A single triple `(s, p, o)` of objects.
///
/// Following the paper we index the components by position 1, 2, 3 rather
/// than by the RDF names subject/predicate/object, since the middle element
/// of a triple is a first-class object that can occur in any position of any
/// other triple.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Triple(pub [ObjectId; 3]);

impl Triple {
    /// Builds a triple from its three components.
    #[inline]
    pub fn new(s: ObjectId, p: ObjectId, o: ObjectId) -> Self {
        Triple([s, p, o])
    }

    /// The first component (position 1, the RDF *subject*).
    #[inline]
    pub fn s(&self) -> ObjectId {
        self.0[0]
    }

    /// The second component (position 2, the RDF *predicate*).
    #[inline]
    pub fn p(&self) -> ObjectId {
        self.0[1]
    }

    /// The third component (position 3, the RDF *object*).
    #[inline]
    pub fn o(&self) -> ObjectId {
        self.0[2]
    }

    /// Returns the component at 1-based position `pos` (1, 2 or 3).
    ///
    /// # Panics
    /// Panics if `pos` is not in `1..=3`.
    #[inline]
    pub fn get(&self, pos: u8) -> ObjectId {
        assert!((1..=3).contains(&pos), "triple position must be 1, 2 or 3");
        self.0[(pos - 1) as usize]
    }

    /// Looks up a component of a *pair* of triples by a join position.
    ///
    /// Unprimed positions (`1,2,3`) address `left`, primed positions
    /// (`1',2',3'`) address `right`; this is the lookup used when evaluating
    /// join conditions and output specifications.
    #[inline]
    pub fn from_pair(left: &Triple, right: &Triple, pos: crate::position::Pos) -> ObjectId {
        match pos.side() {
            Side::Left => left.0[pos.component_index()],
            Side::Right => right.0[pos.component_index()],
        }
    }
}

impl From<[ObjectId; 3]> for Triple {
    fn from(v: [ObjectId; 3]) -> Self {
        Triple(v)
    }
}

impl From<(ObjectId, ObjectId, ObjectId)> for Triple {
    fn from((a, b, c): (ObjectId, ObjectId, ObjectId)) -> Self {
        Triple([a, b, c])
    }
}

impl fmt::Display for Triple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.0[0], self.0[1], self.0[2])
    }
}

/// A set of triples: the result type of every TriAL expression.
///
/// The representation is a sorted, duplicate-free `Vec<Triple>`, giving
/// `O(log n)` membership tests, cheap iteration in a canonical order, and
/// linear-time set operations. Construction from arbitrary iterators sorts
/// and deduplicates once.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct TripleSet {
    triples: Vec<Triple>,
}

impl TripleSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        TripleSet::default()
    }

    /// Creates a set from a vector, sorting and deduplicating it.
    pub fn from_vec(mut triples: Vec<Triple>) -> Self {
        triples.sort_unstable();
        triples.dedup();
        TripleSet { triples }
    }

    /// Zero-copy fast path: wraps a vector that is **already sorted and
    /// duplicate-free** without re-sorting.
    ///
    /// Operators that provably preserve the canonical order (selections,
    /// differences, merges of sorted inputs, index scans in SPO order) use
    /// this to skip the `O(n log n)` sort of [`TripleSet::from_vec`]. The
    /// invariant is checked in debug builds.
    pub fn from_sorted_vec(triples: Vec<Triple>) -> Self {
        debug_assert!(
            triples.windows(2).all(|w| w[0] < w[1]),
            "from_sorted_vec requires strictly increasing input"
        );
        TripleSet { triples }
    }

    /// Number of triples in the set.
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// Returns `true` if the set contains no triples.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, t: &Triple) -> bool {
        self.triples.binary_search(t).is_ok()
    }

    /// Inserts a triple, keeping the representation sorted.
    ///
    /// Returns `true` if the triple was not already present. Prefer building
    /// with [`TripleSet::from_vec`] or [`FromIterator`] for bulk loads; this
    /// method is `O(n)` per insertion in the worst case.
    pub fn insert(&mut self, t: Triple) -> bool {
        match self.triples.binary_search(&t) {
            Ok(_) => false,
            Err(pos) => {
                self.triples.insert(pos, t);
                true
            }
        }
    }

    /// Iterates over the triples in canonical (sorted) order.
    pub fn iter(&self) -> impl Iterator<Item = &Triple> + '_ {
        self.triples.iter()
    }

    /// Borrows the underlying sorted slice.
    pub fn as_slice(&self) -> &[Triple] {
        &self.triples
    }

    /// Consumes the set, returning the sorted vector of triples.
    pub fn into_vec(self) -> Vec<Triple> {
        self.triples
    }

    /// Set union (`e1 ∪ e2` in the algebra).
    ///
    /// Both representations are sorted, so this is a linear merge — no
    /// re-sort, which matters inside fixpoint loops where the accumulator is
    /// unioned with a delta every round.
    pub fn union(&self, other: &TripleSet) -> TripleSet {
        if self.is_empty() {
            return other.clone();
        }
        if other.is_empty() {
            return self.clone();
        }
        let (a, b) = (&self.triples, &other.triples);
        let mut out = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => {
                    out.push(a[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(b[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&a[i..]);
        out.extend_from_slice(&b[j..]);
        TripleSet::from_sorted_vec(out)
    }

    /// Set difference (`e1 − e2` in the algebra), as a linear two-pointer
    /// walk over the sorted representations.
    pub fn difference(&self, other: &TripleSet) -> TripleSet {
        if self.is_empty() || other.is_empty() {
            return self.clone();
        }
        let (a, b) = (&self.triples, &other.triples);
        let mut out = Vec::with_capacity(a.len());
        let mut j = 0;
        for &t in a {
            while j < b.len() && b[j] < t {
                j += 1;
            }
            if j == b.len() || b[j] != t {
                out.push(t);
            }
        }
        TripleSet::from_sorted_vec(out)
    }

    /// Set intersection (`e1 ∩ e2`, definable in the algebra via a join), as
    /// a linear two-pointer walk over the sorted representations.
    pub fn intersection(&self, other: &TripleSet) -> TripleSet {
        let (a, b) = (&self.triples, &other.triples);
        let mut out = Vec::with_capacity(a.len().min(b.len()));
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        TripleSet::from_sorted_vec(out)
    }

    /// Returns `true` if `self` and `other` contain exactly the same triples.
    pub fn set_eq(&self, other: &TripleSet) -> bool {
        self.triples == other.triples
    }

    /// Returns the set of distinct objects appearing in any position of any
    /// triple in this set, in sorted order.
    pub fn active_objects(&self) -> Vec<ObjectId> {
        let mut objs: Vec<ObjectId> = self
            .triples
            .iter()
            .flat_map(|t| t.0.iter().copied())
            .collect();
        objs.sort_unstable();
        objs.dedup();
        objs
    }
}

impl FromIterator<Triple> for TripleSet {
    fn from_iter<I: IntoIterator<Item = Triple>>(iter: I) -> Self {
        TripleSet::from_vec(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a TripleSet {
    type Item = &'a Triple;
    type IntoIter = std::slice::Iter<'a, Triple>;
    fn into_iter(self) -> Self::IntoIter {
        self.triples.iter()
    }
}

impl IntoIterator for TripleSet {
    type Item = Triple;
    type IntoIter = std::vec::IntoIter<Triple>;
    fn into_iter(self) -> Self::IntoIter {
        self.triples.into_iter()
    }
}

impl fmt::Display for TripleSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, t) in self.triples.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(a: u32, b: u32, c: u32) -> Triple {
        Triple::new(ObjectId(a), ObjectId(b), ObjectId(c))
    }

    #[test]
    fn triple_accessors() {
        let x = t(1, 2, 3);
        assert_eq!(x.s(), ObjectId(1));
        assert_eq!(x.p(), ObjectId(2));
        assert_eq!(x.o(), ObjectId(3));
        assert_eq!(x.get(1), ObjectId(1));
        assert_eq!(x.get(2), ObjectId(2));
        assert_eq!(x.get(3), ObjectId(3));
        assert_eq!(x.to_string(), "(#1, #2, #3)");
    }

    #[test]
    #[should_panic(expected = "triple position must be 1, 2 or 3")]
    fn triple_get_rejects_position_zero() {
        let _ = t(1, 2, 3).get(0);
    }

    #[test]
    fn triple_conversions() {
        let a = ObjectId(1);
        let b = ObjectId(2);
        let c = ObjectId(3);
        assert_eq!(Triple::from([a, b, c]), Triple::new(a, b, c));
        assert_eq!(Triple::from((a, b, c)), Triple::new(a, b, c));
    }

    #[test]
    fn from_pair_addresses_both_sides() {
        use crate::position::Pos;
        let l = t(1, 2, 3);
        let r = t(4, 5, 6);
        assert_eq!(Triple::from_pair(&l, &r, Pos::L1), ObjectId(1));
        assert_eq!(Triple::from_pair(&l, &r, Pos::L3), ObjectId(3));
        assert_eq!(Triple::from_pair(&l, &r, Pos::R1), ObjectId(4));
        assert_eq!(Triple::from_pair(&l, &r, Pos::R3), ObjectId(6));
    }

    #[test]
    fn set_dedup_and_sort() {
        let s = TripleSet::from_vec(vec![t(2, 2, 2), t(1, 1, 1), t(2, 2, 2)]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.as_slice(), &[t(1, 1, 1), t(2, 2, 2)]);
        assert!(!s.is_empty());
        assert!(TripleSet::new().is_empty());
    }

    #[test]
    fn set_membership_and_insert() {
        let mut s = TripleSet::new();
        assert!(s.insert(t(3, 3, 3)));
        assert!(s.insert(t(1, 2, 3)));
        assert!(!s.insert(t(3, 3, 3)));
        assert!(s.contains(&t(1, 2, 3)));
        assert!(!s.contains(&t(9, 9, 9)));
        assert_eq!(s.len(), 2);
        // Sorted invariant holds after inserts.
        assert_eq!(s.as_slice(), &[t(1, 2, 3), t(3, 3, 3)]);
    }

    #[test]
    fn set_operations() {
        let a = TripleSet::from_vec(vec![t(1, 1, 1), t(2, 2, 2), t(3, 3, 3)]);
        let b = TripleSet::from_vec(vec![t(2, 2, 2), t(4, 4, 4)]);
        assert_eq!(
            a.union(&b).into_vec(),
            vec![t(1, 1, 1), t(2, 2, 2), t(3, 3, 3), t(4, 4, 4)]
        );
        assert_eq!(a.difference(&b).into_vec(), vec![t(1, 1, 1), t(3, 3, 3)]);
        assert_eq!(a.intersection(&b).into_vec(), vec![t(2, 2, 2)]);
        // Intersection is symmetric regardless of which side is smaller.
        assert_eq!(b.intersection(&a).into_vec(), vec![t(2, 2, 2)]);
    }

    #[test]
    fn set_eq_ignores_build_order() {
        let a: TripleSet = [t(1, 2, 3), t(4, 5, 6)].into_iter().collect();
        let b: TripleSet = [t(4, 5, 6), t(1, 2, 3)].into_iter().collect();
        assert!(a.set_eq(&b));
        assert_eq!(a, b);
    }

    #[test]
    fn active_objects_deduplicates() {
        let s = TripleSet::from_vec(vec![t(1, 2, 1), t(2, 3, 1)]);
        assert_eq!(
            s.active_objects(),
            vec![ObjectId(1), ObjectId(2), ObjectId(3)]
        );
    }

    #[test]
    fn display_and_iterators() {
        let s = TripleSet::from_vec(vec![t(1, 1, 1), t(2, 2, 2)]);
        assert_eq!(s.to_string(), "{(#1, #1, #1), (#2, #2, #2)}");
        assert_eq!(s.iter().count(), 2);
        assert_eq!((&s).into_iter().count(), 2);
        assert_eq!(s.into_iter().count(), 2);
    }
}
