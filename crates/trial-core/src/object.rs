//! Interned object identifiers.
//!
//! The paper's object domain `O` is a countably infinite set of abstract
//! objects (URIs, node ids, connection ids, …). The algebra only ever tests
//! objects for equality, so every real system interns them; we do the same
//! and represent an object by a dense [`ObjectId`] assigned by the
//! [`crate::TriplestoreBuilder`]. The human-readable name and the data value
//! `ρ(o)` are stored in the [`crate::Triplestore`] and looked up by id.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense, interned identifier for an object in `O`.
///
/// Ids are assigned consecutively starting from zero by the
/// [`crate::TriplestoreBuilder`]; this makes them directly usable as indices
/// into per-object arrays (the "array representation" assumed by the paper's
/// Theorem 3 cost model).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ObjectId(pub u32);

impl ObjectId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an id from a `usize` index.
    ///
    /// # Panics
    /// Panics if `index` does not fit in a `u32`. Triplestores with more than
    /// 4 billion objects are outside the scope of this library.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        ObjectId(u32::try_from(index).expect("object index exceeds u32::MAX"))
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

impl From<u32> for ObjectId {
    fn from(v: u32) -> Self {
        ObjectId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        let id = ObjectId::from_index(42);
        assert_eq!(id, ObjectId(42));
        assert_eq!(id.index(), 42);
        assert_eq!(ObjectId::from(7u32), ObjectId(7));
    }

    #[test]
    fn display() {
        assert_eq!(ObjectId(3).to_string(), "#3");
    }

    #[test]
    fn ordering_follows_numeric_order() {
        let mut ids = vec![ObjectId(5), ObjectId(1), ObjectId(3)];
        ids.sort();
        assert_eq!(ids, vec![ObjectId(1), ObjectId(3), ObjectId(5)]);
    }

    #[test]
    #[should_panic(expected = "object index exceeds u32::MAX")]
    fn from_index_panics_on_overflow() {
        let _ = ObjectId::from_index(u32::MAX as usize + 1);
    }
}
