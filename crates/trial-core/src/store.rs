//! The triplestore data model `T = (O, E1, …, En, ρ)` (Definition 1).
//!
//! A [`Triplestore`] holds a finite set of interned objects, one or more
//! named ternary relations of triples over those objects, and the data-value
//! assignment `ρ`. Stores are immutable once built; use the
//! [`TriplestoreBuilder`] to construct them, or
//! [`Triplestore::with_relation`] to derive a store that has an extra
//! (materialised) relation — handy for composing algebra results.

use crate::error::{Error, Result};
use crate::index::IndexCache;
use crate::object::ObjectId;
use crate::triple::{Triple, TripleSet};
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// A named ternary relation `Eᵢ ⊆ O × O × O` of a triplestore.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Relation {
    name: String,
    triples: TripleSet,
}

impl Relation {
    /// The relation's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The relation's triples.
    pub fn triples(&self) -> &TripleSet {
        &self.triples
    }

    /// Number of triples in the relation.
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// Returns `true` if the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }
}

/// An immutable triplestore database `T = (O, E1, …, En, ρ)`.
///
/// * Objects are interned: every object has a dense [`ObjectId`], a unique
///   string name, and a data value (defaulting to [`Value::Null`]).
/// * Relations are named sets of triples.
/// * The *active domain* is the set of objects occurring in at least one
///   triple of at least one relation; the paper's universal relation `U`
///   ranges over it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Triplestore {
    names: Vec<String>,
    values: Vec<Value>,
    by_name: HashMap<String, ObjectId>,
    relations: Vec<Relation>,
    rel_index: HashMap<String, usize>,
    /// Lazily-built permutation indexes (derived data: cloning a store
    /// resets the cache, and the cache never affects equality).
    index: IndexCache,
}

impl Triplestore {
    /// Number of objects in `O` (including objects that occur in no triple).
    pub fn object_count(&self) -> usize {
        self.names.len()
    }

    /// Total number of triples across all relations (`|T|` in the paper's
    /// cost model, up to the `|O|` additive term for the ρ array).
    pub fn triple_count(&self) -> usize {
        self.relations.iter().map(Relation::len).sum()
    }

    /// Iterates over all object ids.
    pub fn objects(&self) -> impl Iterator<Item = ObjectId> + '_ {
        (0..self.names.len() as u32).map(ObjectId)
    }

    /// Looks up an object id by name.
    pub fn object_id(&self, name: &str) -> Option<ObjectId> {
        self.by_name.get(name).copied()
    }

    /// Looks up an object id by name, returning an error if absent.
    pub fn require_object(&self, name: &str) -> Result<ObjectId> {
        self.object_id(name)
            .ok_or_else(|| Error::UnknownObject(name.to_owned()))
    }

    /// The display name of an object.
    ///
    /// # Panics
    /// Panics if the id does not belong to this store.
    pub fn object_name(&self, id: ObjectId) -> &str {
        &self.names[id.index()]
    }

    /// The data value `ρ(o)` of an object.
    ///
    /// # Panics
    /// Panics if the id does not belong to this store.
    pub fn value(&self, id: ObjectId) -> &Value {
        &self.values[id.index()]
    }

    /// Tests the data-equivalence relation `x ∼ y`, i.e. `ρ(x) = ρ(y)`.
    pub fn data_eq(&self, a: ObjectId, b: ObjectId) -> bool {
        self.value(a) == self.value(b)
    }

    /// The names of all relations, in insertion order.
    pub fn relation_names(&self) -> impl Iterator<Item = &str> + '_ {
        self.relations.iter().map(|r| r.name.as_str())
    }

    /// All relations, in insertion order.
    pub fn relations(&self) -> impl Iterator<Item = &Relation> + '_ {
        self.relations.iter()
    }

    /// Number of relations.
    pub fn relation_count(&self) -> usize {
        self.relations.len()
    }

    /// Looks up a relation by name.
    pub fn relation(&self, name: &str) -> Option<&Relation> {
        self.rel_index.get(name).map(|&i| &self.relations[i])
    }

    /// Looks up a relation's triples by name, returning an error if absent.
    pub fn require_relation(&self, name: &str) -> Result<&TripleSet> {
        self.relation(name)
            .map(Relation::triples)
            .ok_or_else(|| Error::UnknownRelation(name.to_owned()))
    }

    /// The *active domain*: objects occurring in at least one triple of at
    /// least one relation, in sorted order.
    ///
    /// The paper's universal relation `U` is the set of all triples
    /// `(o1, o2, o3)` such that each `oi` occurs in the triplestore; its
    /// object universe is exactly this set.
    pub fn active_domain(&self) -> Vec<ObjectId> {
        let mut objs: Vec<ObjectId> = self
            .relations
            .iter()
            .flat_map(|r| r.triples.iter())
            .flat_map(|t| t.0.iter().copied())
            .collect();
        objs.sort_unstable();
        objs.dedup();
        objs
    }

    /// Renders a triple with object names, for debugging and examples.
    pub fn display_triple(&self, t: &Triple) -> String {
        format!(
            "({}, {}, {})",
            self.object_name(t.s()),
            self.object_name(t.p()),
            self.object_name(t.o())
        )
    }

    /// Renders a whole triple set with object names, sorted lexicographically
    /// by the rendered form — convenient for assertions in tests/examples.
    pub fn display_triples(&self, ts: &TripleSet) -> Vec<String> {
        let mut out: Vec<String> = ts.iter().map(|t| self.display_triple(t)).collect();
        out.sort();
        out
    }

    /// Builds a triple from three object *names*, failing if any is unknown.
    pub fn triple_by_names(&self, s: &str, p: &str, o: &str) -> Result<Triple> {
        Ok(Triple::new(
            self.require_object(s)?,
            self.require_object(p)?,
            self.require_object(o)?,
        ))
    }

    /// Returns a new store identical to this one but with an extra relation
    /// `name` holding `triples`. Replaces the relation if the name exists.
    ///
    /// This is how materialised query results are fed back into further
    /// queries (the algebra is compositional).
    pub fn with_relation(&self, name: impl Into<String>, triples: TripleSet) -> Triplestore {
        let name = name.into();
        let mut store = self.clone();
        match store.rel_index.get(&name) {
            Some(&i) => store.relations[i].triples = triples,
            None => {
                store.rel_index.insert(name.clone(), store.relations.len());
                store.relations.push(Relation { name, triples });
            }
        }
        store
    }

    /// The store's index cache slot (see [`Triplestore::indexes`]).
    pub(crate) fn index_cache(&self) -> &IndexCache {
        &self.index
    }

    /// Converts this store back into a builder, e.g. to add more triples.
    pub fn into_builder(self) -> TriplestoreBuilder {
        TriplestoreBuilder {
            names: self.names,
            values: self.values,
            by_name: self.by_name,
            relations: self
                .relations
                .into_iter()
                .map(|r| (r.name, r.triples.into_vec()))
                .collect(),
        }
    }
}

impl fmt::Display for Triplestore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Triplestore: {} objects, {} relations, {} triples",
            self.object_count(),
            self.relation_count(),
            self.triple_count()
        )?;
        for rel in &self.relations {
            writeln!(f, "  {} ({} triples)", rel.name, rel.len())?;
        }
        Ok(())
    }
}

/// Mutable builder for [`Triplestore`]s.
///
/// Objects are interned on first use; triples are added to named relations;
/// data values can be attached to objects at any point before `finish`.
#[derive(Debug, Clone, Default)]
pub struct TriplestoreBuilder {
    names: Vec<String>,
    values: Vec<Value>,
    by_name: HashMap<String, ObjectId>,
    /// Relation name → triples added so far (in insertion order of relations).
    relations: Vec<(String, Vec<Triple>)>,
}

impl TriplestoreBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        TriplestoreBuilder::default()
    }

    /// Interns an object by name, returning its id. Idempotent.
    pub fn object(&mut self, name: impl AsRef<str>) -> ObjectId {
        let name = name.as_ref();
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = ObjectId::from_index(self.names.len());
        self.names.push(name.to_owned());
        self.values.push(Value::Null);
        self.by_name.insert(name.to_owned(), id);
        id
    }

    /// Interns an object and sets its data value `ρ(o) = value`.
    pub fn object_with_value(
        &mut self,
        name: impl AsRef<str>,
        value: impl Into<Value>,
    ) -> ObjectId {
        let id = self.object(name);
        self.values[id.index()] = value.into();
        id
    }

    /// Sets (or overwrites) the data value of an already-interned object.
    pub fn set_value(&mut self, id: ObjectId, value: impl Into<Value>) {
        self.values[id.index()] = value.into();
    }

    /// Ensures a relation with the given name exists (possibly empty).
    pub fn relation(&mut self, name: impl AsRef<str>) -> &mut Vec<Triple> {
        let name = name.as_ref();
        if let Some(idx) = self.relations.iter().position(|(n, _)| n == name) {
            return &mut self.relations[idx].1;
        }
        self.relations.push((name.to_owned(), Vec::new()));
        &mut self.relations.last_mut().expect("just pushed").1
    }

    /// Adds a triple of object *names* to a relation, interning as needed.
    pub fn add_triple(
        &mut self,
        rel: impl AsRef<str>,
        s: impl AsRef<str>,
        p: impl AsRef<str>,
        o: impl AsRef<str>,
    ) -> Triple {
        let t = Triple::new(self.object(s), self.object(p), self.object(o));
        self.relation(rel).push(t);
        t
    }

    /// Adds a triple of already-interned object ids to a relation.
    pub fn add_triple_ids(&mut self, rel: impl AsRef<str>, s: ObjectId, p: ObjectId, o: ObjectId) {
        let t = Triple::new(s, p, o);
        self.relation(rel).push(t);
    }

    /// Number of objects interned so far.
    pub fn object_count(&self) -> usize {
        self.names.len()
    }

    /// Finalises the builder into an immutable [`Triplestore`].
    pub fn finish(self) -> Triplestore {
        let relations: Vec<Relation> = self
            .relations
            .into_iter()
            .map(|(name, triples)| Relation {
                name,
                triples: TripleSet::from_vec(triples),
            })
            .collect();
        let rel_index = relations
            .iter()
            .enumerate()
            .map(|(i, r)| (r.name.clone(), i))
            .collect();
        Triplestore {
            names: self.names,
            values: self.values,
            by_name: self.by_name,
            relations,
            rel_index,
            index: IndexCache::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The RDF database `D` of Figure 1 as a single-relation triplestore.
    pub fn figure1_store() -> Triplestore {
        let mut b = TriplestoreBuilder::new();
        for (s, p, o) in [
            ("St.Andrews", "BusOp1", "Edinburgh"),
            ("Edinburgh", "TrainOp1", "London"),
            ("London", "TrainOp2", "Brussels"),
            ("BusOp1", "part_of", "NatExpress"),
            ("TrainOp1", "part_of", "EastCoast"),
            ("TrainOp2", "part_of", "Eurostar"),
            ("EastCoast", "part_of", "NatExpress"),
        ] {
            b.add_triple("E", s, p, o);
        }
        b.finish()
    }

    #[test]
    fn build_and_query_figure1() {
        let store = figure1_store();
        assert_eq!(store.relation_count(), 1);
        assert_eq!(store.triple_count(), 7);
        // Objects: St.Andrews, BusOp1, Edinburgh, TrainOp1, London, TrainOp2,
        // Brussels, part_of, NatExpress, EastCoast, Eurostar = 11.
        assert_eq!(store.object_count(), 11);
        assert_eq!(store.active_domain().len(), 11);
        let e = store.require_relation("E").unwrap();
        assert_eq!(e.len(), 7);
        let t = store
            .triple_by_names("Edinburgh", "TrainOp1", "London")
            .unwrap();
        assert!(e.contains(&t));
    }

    #[test]
    fn interning_is_idempotent() {
        let mut b = TriplestoreBuilder::new();
        let a1 = b.object("a");
        let a2 = b.object("a");
        let c = b.object("c");
        assert_eq!(a1, a2);
        assert_ne!(a1, c);
        assert_eq!(b.object_count(), 2);
    }

    #[test]
    fn values_and_data_eq() {
        let mut b = TriplestoreBuilder::new();
        let mario =
            b.object_with_value("o175", Value::tuple([Value::str("Mario"), Value::int(23)]));
        let luigi =
            b.object_with_value("o7521", Value::tuple([Value::str("Luigi"), Value::int(27)]));
        let clone = b.object("o999");
        b.set_value(clone, Value::tuple([Value::str("Mario"), Value::int(23)]));
        b.add_triple_ids("E", mario, luigi, clone);
        let store = b.finish();
        assert!(store.data_eq(mario, clone));
        assert!(!store.data_eq(mario, luigi));
        assert_eq!(store.value(luigi).component(0), Some(&Value::str("Luigi")));
        // Objects not given a value default to Null.
        let mut b2 = TriplestoreBuilder::new();
        let x = b2.object("x");
        let store2 = b2.finish();
        assert_eq!(store2.value(x), &Value::Null);
    }

    #[test]
    fn unknown_lookups_error() {
        let store = figure1_store();
        assert_eq!(
            store.require_relation("nope").unwrap_err(),
            Error::UnknownRelation("nope".into())
        );
        assert_eq!(
            store.require_object("Paris").unwrap_err(),
            Error::UnknownObject("Paris".into())
        );
        assert!(store.relation("nope").is_none());
        assert!(store.object_id("Paris").is_none());
    }

    #[test]
    fn active_domain_excludes_isolated_objects() {
        let mut b = TriplestoreBuilder::new();
        b.add_triple("E", "a", "b", "c");
        b.object("isolated");
        let store = b.finish();
        assert_eq!(store.object_count(), 4);
        assert_eq!(store.active_domain().len(), 3);
    }

    #[test]
    fn with_relation_adds_and_replaces() {
        let store = figure1_store();
        let result: TripleSet = [store
            .triple_by_names("Edinburgh", "EastCoast", "London")
            .unwrap()]
        .into_iter()
        .collect();
        let store2 = store.with_relation("Answer", result.clone());
        assert_eq!(store2.relation_count(), 2);
        assert_eq!(store2.require_relation("Answer").unwrap(), &result);
        // Replacing an existing relation keeps the count stable.
        let store3 = store2.with_relation("Answer", TripleSet::new());
        assert_eq!(store3.relation_count(), 2);
        assert!(store3.require_relation("Answer").unwrap().is_empty());
        // The original store is unchanged.
        assert_eq!(store.relation_count(), 1);
    }

    #[test]
    fn into_builder_roundtrip() {
        let store = figure1_store();
        let mut b = store.clone().into_builder();
        b.add_triple("E", "Brussels", "TrainOp3", "Paris");
        let bigger = b.finish();
        assert_eq!(bigger.triple_count(), 8);
        assert_eq!(bigger.relation_count(), 1);
        assert!(bigger.object_id("Paris").is_some());
        // Names and values of existing objects are preserved.
        assert_eq!(store.object_id("Edinburgh"), bigger.object_id("Edinburgh"));
    }

    #[test]
    fn display_helpers() {
        let store = figure1_store();
        let t = store
            .triple_by_names("Edinburgh", "TrainOp1", "London")
            .unwrap();
        assert_eq!(store.display_triple(&t), "(Edinburgh, TrainOp1, London)");
        let rendered = store.display_triples(store.require_relation("E").unwrap());
        assert_eq!(rendered.len(), 7);
        assert!(rendered.contains(&"(EastCoast, part_of, NatExpress)".to_string()));
        let summary = store.to_string();
        assert!(summary.contains("11 objects"));
        assert!(summary.contains("E (7 triples)"));
    }

    #[test]
    fn relation_accessors() {
        let store = figure1_store();
        let rel = store.relation("E").unwrap();
        assert_eq!(rel.name(), "E");
        assert!(!rel.is_empty());
        assert_eq!(rel.len(), rel.triples().len());
        assert_eq!(store.relation_names().collect::<Vec<_>>(), vec!["E"]);
        assert_eq!(store.relations().count(), 1);
        assert_eq!(store.objects().count(), 11);
    }
}
