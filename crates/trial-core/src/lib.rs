//! # trial-core
//!
//! Data model and expression language of **TriAL**, the Triple Algebra of
//! Libkin, Reutter and Vrgoč, *"TriAL for RDF: Adapting Graph Query Languages
//! for RDF Data"* (PODS 2013).
//!
//! The crate provides:
//!
//! * the **triplestore** data model `T = (O, E1, …, En, ρ)` — a finite set of
//!   objects, one or more ternary relations over those objects, and a data
//!   value assignment `ρ : O → D` ([`Triplestore`], [`TriplestoreBuilder`]);
//! * the **TriAL / TriAL\*** expression AST ([`Expr`]) with selections,
//!   set operations, the family of triple joins
//!   `R ✶^{i,j,k}_{θ,η} R'`, and left/right Kleene closures of joins;
//! * join/selection **conditions** `θ` (object comparisons) and `η`
//!   (data-value comparisons) ([`Conditions`]);
//! * a fluent [`builder`] API and ready-made query shapes for the paper's
//!   running examples;
//! * **fragment analysis** ([`fragment`]) detecting the tractable fragments
//!   TriAL⁼ and reachTA⁼ used by the evaluation engines in `trial-eval`.
//!
//! Evaluation itself lives in the companion crate `trial-eval`; a concrete
//! text syntax lives in `trial-parser`.
//!
//! ## Quick example
//!
//! ```
//! use trial_core::{TriplestoreBuilder, Expr, Pos, output, Conditions};
//!
//! // The transport network of Figure 1 (fragment).
//! let mut b = TriplestoreBuilder::new();
//! b.add_triple("E", "Edinburgh", "TrainOp1", "London");
//! b.add_triple("E", "TrainOp1", "part_of", "EastCoast");
//! let store = b.finish();
//!
//! // Example 2 of the paper:  e = E ✶^{1,3',3}_{2=1'} E
//! let e = Expr::rel("E").join(
//!     Expr::rel("E"),
//!     output(Pos::L1, Pos::R3, Pos::L3),
//!     Conditions::new().obj_eq(Pos::L2, Pos::R1),
//! );
//! assert_eq!(e.to_string(), "(E JOIN[1,3',3 | 2=1'] E)");
//! assert!(store.relation("E").is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algebra;
pub mod builder;
pub mod condition;
pub mod error;
pub mod fragment;
pub mod index;
pub mod object;
pub mod position;
pub mod store;
pub mod triple;
pub mod value;

pub use algebra::{Expr, StarDirection};
pub use builder::{output, ExprBuilderExt};
pub use condition::{Cmp, Conditions, DataAtom, DataOperand, ObjAtom, ObjOperand};
pub use error::{Error, Result};
pub use fragment::{Fragment, FragmentReport};
pub use index::{
    Adjacency, AdjacencyCursor, Permutation, RangeCursor, RelationIndex, StoreIndexes,
};
pub use object::ObjectId;
pub use position::{OutputSpec, Pos, Side};
pub use store::{Relation, Triplestore, TriplestoreBuilder};
pub use triple::{Triple, TripleSet};
pub use value::Value;

// Compile-time thread-safety contract. Concurrent services (`trial-server`)
// share immutable stores across worker threads behind `Arc`s; the lazy index
// cache must therefore stay `OnceLock`-based. If a future change introduces
// `RefCell`/`Rc` interior state, this block fails to compile instead of the
// server crate failing at a distance.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Triplestore>();
    assert_send_sync::<TriplestoreBuilder>();
    assert_send_sync::<TripleSet>();
    assert_send_sync::<Expr>();
    assert_send_sync::<Error>();
    assert_send_sync::<StoreIndexes>();
};
