//! Convenience constructors for common TriAL expressions.
//!
//! The paper repeatedly uses a handful of query shapes: the navigational
//! reachability joins `Reach→` and `Reach⇓` of the introduction, the
//! "travel with one company" query `Q`, composition-style joins, and the
//! definable operations (intersection via join, complement via the universal
//! relation). This module packages them so that examples, tests and
//! benchmarks can refer to them by name.

use crate::algebra::Expr;
use crate::condition::Conditions;
use crate::position::{OutputSpec, Pos};

/// Builds an [`OutputSpec`] from three positions. Shorthand used throughout
/// the crates: `output(Pos::L1, Pos::R3, Pos::L3)` is the paper's `1,3',3`.
pub fn output(i: Pos, j: Pos, k: Pos) -> OutputSpec {
    OutputSpec::new(i, j, k)
}

/// Extension trait adding the paper's named query shapes to [`Expr`].
pub trait ExprBuilderExt: Sized {
    /// `Reach→` over this expression: `(e ✶^{1,2,3'}_{3=1'})^*`.
    ///
    /// Finds triples `(x, y, z)` such that `z` is reachable from the
    /// endpoint of an `e`-triple starting at `x` by following third-to-first
    /// component steps — the natural "follow the edges" reachability
    /// (introduction and Example 4).
    fn reach_forward(self) -> Expr;

    /// Label-preserving reachability: `(e ✶^{1,2,3'}_{3=1', 2=2'})^*`.
    ///
    /// Like [`ExprBuilderExt::reach_forward`] but each step must carry the
    /// same middle element (the second restricted star allowed in reachTA⁼,
    /// Proposition 5).
    fn reach_same_label(self) -> Expr;

    /// `Reach⇓` over this expression: `(✶^{1',2',3}_{1=2'} e)^*`.
    ///
    /// The "branching downwards" reachability of the introduction, where the
    /// source of one triple is the middle element of the next (Example 4).
    fn reach_down(self) -> Expr;

    /// Example 2's composition join: `e ✶^{1,3',3}_{2=1'} e2`.
    ///
    /// Joins a travel triple `(x, op, y)` with an operator triple
    /// `(op, part_of, company)` producing `(x, company, y)`.
    fn compose_via_middle(self, other: Expr) -> Expr;

    /// The star of Example 4's interior join: `(e ✶^{1,3',3}_{2=1'})^*`,
    /// which lifts the middle element through arbitrarily long `part_of`
    /// chains.
    fn lift_middle(self) -> Expr;

    /// The paper's query `Q` (Theorem 1 / Example 4): pairs of cities
    /// connected by a chain of services all operated by the same company,
    /// `((e ✶^{1,3',3}_{2=1'})^* ✶^{1,2,3'}_{3=1', 2=2'})^*`.
    fn same_company_reachability(self) -> Expr;

    /// Intersection expressed through a join,
    /// `e ✶^{1,2,3}_{1=1', 2=2', 3=3'} e2` — used to verify the definability
    /// claim of Section 3.
    fn intersect_via_join(self, other: Expr) -> Expr;
}

impl ExprBuilderExt for Expr {
    fn reach_forward(self) -> Expr {
        self.right_star(
            output(Pos::L1, Pos::L2, Pos::R3),
            Conditions::new().obj_eq(Pos::L3, Pos::R1),
        )
    }

    fn reach_same_label(self) -> Expr {
        self.right_star(
            output(Pos::L1, Pos::L2, Pos::R3),
            Conditions::new()
                .obj_eq(Pos::L3, Pos::R1)
                .obj_eq(Pos::L2, Pos::R2),
        )
    }

    fn reach_down(self) -> Expr {
        self.left_star(
            output(Pos::R1, Pos::R2, Pos::L3),
            Conditions::new().obj_eq(Pos::L1, Pos::R2),
        )
    }

    fn compose_via_middle(self, other: Expr) -> Expr {
        self.join(
            other,
            output(Pos::L1, Pos::R3, Pos::L3),
            Conditions::new().obj_eq(Pos::L2, Pos::R1),
        )
    }

    fn lift_middle(self) -> Expr {
        self.right_star(
            output(Pos::L1, Pos::R3, Pos::L3),
            Conditions::new().obj_eq(Pos::L2, Pos::R1),
        )
    }

    fn same_company_reachability(self) -> Expr {
        self.lift_middle().right_star(
            output(Pos::L1, Pos::L2, Pos::R3),
            Conditions::new()
                .obj_eq(Pos::L3, Pos::R1)
                .obj_eq(Pos::L2, Pos::R2),
        )
    }

    fn intersect_via_join(self, other: Expr) -> Expr {
        self.join(
            other,
            OutputSpec::IDENTITY,
            Conditions::new()
                .obj_eq(Pos::L1, Pos::R1)
                .obj_eq(Pos::L2, Pos::R2)
                .obj_eq(Pos::L3, Pos::R3),
        )
    }
}

/// Named query shapes as free functions over a relation name, mirroring the
/// paper's examples. These are thin wrappers over [`ExprBuilderExt`].
pub mod queries {
    use super::*;

    /// `Reach→` on relation `rel` (introduction / Example 4).
    pub fn reach_forward(rel: &str) -> Expr {
        Expr::rel(rel).reach_forward()
    }

    /// `Reach⇓` on relation `rel` (introduction / Example 4).
    pub fn reach_down(rel: &str) -> Expr {
        Expr::rel(rel).reach_down()
    }

    /// Label-preserving reachability on relation `rel`.
    pub fn reach_same_label(rel: &str) -> Expr {
        Expr::rel(rel).reach_same_label()
    }

    /// Example 2: travel information joined with the operator's parent
    /// company, `E ✶^{1,3',3}_{2=1'} E`.
    pub fn example2(rel: &str) -> Expr {
        Expr::rel(rel).compose_via_middle(Expr::rel(rel))
    }

    /// Example 2, second expression: `e ∪ (e ✶^{1,3',3}_{2=1'} E)`.
    pub fn example2_extended(rel: &str) -> Expr {
        let e = example2(rel);
        e.clone().union(e.compose_via_middle(Expr::rel(rel)))
    }

    /// The query `Q` of Theorem 1 / Example 4 on relation `rel`.
    pub fn same_company_reachability(rel: &str) -> Expr {
        Expr::rel(rel).same_company_reachability()
    }

    /// The TriAL expression of Theorem 4's proof detecting at least four
    /// distinct objects: `U ✶^{1,2,3}_{θ} U` with `θ` requiring
    /// `1, 2, 3, 1'` pairwise distinct.
    pub fn at_least_four_objects() -> Expr {
        Expr::Universe.join(
            Expr::Universe,
            OutputSpec::IDENTITY,
            Conditions::new()
                .obj_neq(Pos::L1, Pos::L2)
                .obj_neq(Pos::L1, Pos::L3)
                .obj_neq(Pos::L1, Pos::R1)
                .obj_neq(Pos::L2, Pos::L3)
                .obj_neq(Pos::L2, Pos::R1)
                .obj_neq(Pos::L3, Pos::R1),
        )
    }

    /// The TriAL expression of Theorem 4's proof detecting at least six
    /// distinct objects: `U ✶^{1,2,3}_{θ} U` with `θ` requiring all six join
    /// positions pairwise distinct.
    pub fn at_least_six_objects() -> Expr {
        let mut cond = Conditions::new();
        let all = Pos::ALL;
        for (idx, &a) in all.iter().enumerate() {
            for &b in &all[idx + 1..] {
                cond = cond.obj_neq(a, b);
            }
        }
        Expr::Universe.join(Expr::Universe, OutputSpec::IDENTITY, cond)
    }
}

#[cfg(test)]
mod tests {
    use super::queries;
    use super::*;

    #[test]
    fn output_helper() {
        assert_eq!(
            output(Pos::L1, Pos::R2, Pos::L3),
            OutputSpec::new(Pos::L1, Pos::R2, Pos::L3)
        );
    }

    #[test]
    fn reach_shapes_match_paper_notation() {
        assert_eq!(
            queries::reach_forward("E").to_string(),
            "STAR(E JOIN[1,2,3' | 3=1'])"
        );
        assert_eq!(
            queries::reach_down("E").to_string(),
            "STAR(JOIN[1',2',3 | 1=2'] E)"
        );
        assert_eq!(
            queries::reach_same_label("E").to_string(),
            "STAR(E JOIN[1,2,3' | 3=1',2=2'])"
        );
    }

    #[test]
    fn example_queries_match_paper_notation() {
        assert_eq!(
            queries::example2("E").to_string(),
            "(E JOIN[1,3',3 | 2=1'] E)"
        );
        assert_eq!(
            queries::same_company_reachability("E").to_string(),
            "STAR(STAR(E JOIN[1,3',3 | 2=1']) JOIN[1,2,3' | 3=1',2=2'])"
        );
        let ext = queries::example2_extended("E");
        assert!(ext
            .to_string()
            .starts_with("((E JOIN[1,3',3 | 2=1'] E) UNION"));
    }

    #[test]
    fn intersect_via_join_shape() {
        let e = Expr::rel("A").intersect_via_join(Expr::rel("B"));
        assert_eq!(e.to_string(), "(A JOIN[1,2,3 | 1=1',2=2',3=3'] B)");
    }

    #[test]
    fn cardinality_detectors() {
        let four = queries::at_least_four_objects();
        let six = queries::at_least_six_objects();
        // 6 inequalities for "four distinct", 15 for "six distinct".
        match &four {
            Expr::Join { cond, .. } => assert_eq!(cond.theta.len(), 6),
            _ => panic!("expected a join"),
        }
        match &six {
            Expr::Join { cond, .. } => assert_eq!(cond.theta.len(), 15),
            _ => panic!("expected a join"),
        }
        assert!(four.uses_universe());
        assert!(!four.is_recursive());
    }
}
