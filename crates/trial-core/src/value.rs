//! Data values attached to objects by the function `ρ : O → D`.
//!
//! The paper (Section 2.3) allows `ρ` to map into an arbitrary infinite
//! domain of data values, and notes that tuple-valued `ρ` (as used in the
//! social-network example) changes nothing. [`Value`] therefore supports
//! nulls, integers, strings and tuples of values. Only *equality* of data
//! values is ever used by the algebra (the `η`/`∼` conditions), so the type
//! derives `Eq`, `Ord` and `Hash` and deliberately excludes floating-point
//! values.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A data value from the domain `D`.
///
/// Values compare by structural equality; this is exactly the `ρ(x) = ρ(y)`
/// test (written `x ∼ y` in the Datalog representation of Section 4).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
pub enum Value {
    /// The absent / null value (`⊥` in the paper's social-network example).
    #[default]
    Null,
    /// An integer data value.
    Int(i64),
    /// A string data value.
    Str(String),
    /// A tuple of data values, used when `ρ` maps objects to tuples
    /// (e.g. `(name, email, age, type, created)` in Section 2.3).
    Tuple(Vec<Value>),
}

impl Value {
    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Self {
        Value::Str(s.into())
    }

    /// Builds an integer value.
    pub fn int(i: i64) -> Self {
        Value::Int(i)
    }

    /// Builds a tuple value from any iterator of values.
    pub fn tuple(items: impl IntoIterator<Item = Value>) -> Self {
        Value::Tuple(items.into_iter().collect())
    }

    /// Returns `true` if this is the null value.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Projects the `i`-th component of a tuple value (0-based).
    ///
    /// Returns `None` for non-tuple values or out-of-range indices. This
    /// supports the `∼ᵢ` relations of Section 4 ("if the values of ρ are
    /// tuples, we just use ∼ᵢ relations testing that the i-th components of
    /// tuples are the same").
    pub fn component(&self, i: usize) -> Option<&Value> {
        match self {
            Value::Tuple(items) => items.get(i),
            _ => None,
        }
    }

    /// Tests component-wise equality `∼ᵢ` between two values.
    ///
    /// Both values must be tuples with an `i`-th component and those
    /// components must be equal.
    pub fn component_eq(&self, other: &Value, i: usize) -> bool {
        match (self.component(i), other.component(i)) {
            (Some(a), Some(b)) => a == b,
            _ => false,
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "\"{s}\""),
            Value::Tuple(items) => {
                write!(f, "(")?;
                for (idx, item) in items.iter().enumerate() {
                    if idx > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_null() {
        assert_eq!(Value::default(), Value::Null);
        assert!(Value::default().is_null());
    }

    #[test]
    fn constructors_and_conversions() {
        assert_eq!(Value::str("a"), Value::Str("a".into()));
        assert_eq!(Value::int(3), Value::Int(3));
        assert_eq!(Value::from("x"), Value::Str("x".into()));
        assert_eq!(Value::from(5i64), Value::Int(5));
        assert_eq!(Value::from(String::from("y")), Value::Str("y".into()));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "null");
        assert_eq!(Value::int(-4).to_string(), "-4");
        assert_eq!(Value::str("hi").to_string(), "\"hi\"");
        assert_eq!(
            Value::tuple([Value::str("Mario"), Value::int(23), Value::Null]).to_string(),
            "(\"Mario\", 23, null)"
        );
    }

    #[test]
    fn tuple_components() {
        let mario = Value::tuple([Value::str("Mario"), Value::str("m@nes.com"), Value::int(23)]);
        let luigi = Value::tuple([Value::str("Luigi"), Value::str("l@nes.com"), Value::int(23)]);
        assert_eq!(mario.component(0), Some(&Value::str("Mario")));
        assert_eq!(mario.component(7), None);
        assert_eq!(Value::int(1).component(0), None);
        // Same age (component 2), different names (component 0).
        assert!(mario.component_eq(&luigi, 2));
        assert!(!mario.component_eq(&luigi, 0));
        // Out-of-range components never compare equal.
        assert!(!mario.component_eq(&luigi, 9));
        // Non-tuples never compare equal component-wise.
        assert!(!Value::int(1).component_eq(&Value::int(1), 0));
    }

    #[test]
    fn equality_is_structural() {
        let a = Value::tuple([Value::Null, Value::str("rival")]);
        let b = Value::tuple([Value::Null, Value::str("rival")]);
        let c = Value::tuple([Value::Null, Value::str("brother")]);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn ordering_is_total() {
        let mut vs = vec![
            Value::str("b"),
            Value::Null,
            Value::int(2),
            Value::int(-1),
            Value::str("a"),
            Value::tuple([Value::int(1)]),
        ];
        vs.sort();
        // Null < Int < Str < Tuple by declaration order; ints and strings sort naturally.
        assert_eq!(
            vs,
            vec![
                Value::Null,
                Value::int(-1),
                Value::int(2),
                Value::str("a"),
                Value::str("b"),
                Value::tuple([Value::int(1)]),
            ]
        );
    }
}
