//! Join and selection conditions `θ` (objects) and `η` (data values).
//!
//! A join `R ✶^{i,j,k}_{θ,η} R'` carries two condition sets:
//!
//! * `θ` — (in)equalities between elements of `{1, 1', 2, 2', 3, 3'} ∪ O`,
//!   i.e. between positions of the joined triples and object constants;
//! * `η` — (in)equalities between elements of
//!   `{ρ(1), …, ρ(3')} ∪ D`, i.e. between the *data values* of positions and
//!   data-value constants.
//!
//! Selections `σ_{θ,η}(e)` use the same conditions restricted to the unprimed
//! positions. [`Conditions`] bundles both sets and offers a small fluent API
//! used by the builder and the parser.

use crate::position::Pos;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Comparison operator: equality or inequality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Cmp {
    /// `=`
    Eq,
    /// `≠`
    Neq,
}

impl Cmp {
    /// Applies the comparison to two values of any `Eq` type.
    #[inline]
    pub fn apply<T: Eq>(self, a: &T, b: &T) -> bool {
        match self {
            Cmp::Eq => a == b,
            Cmp::Neq => a != b,
        }
    }

    /// The negated comparison.
    pub fn negate(self) -> Cmp {
        match self {
            Cmp::Eq => Cmp::Neq,
            Cmp::Neq => Cmp::Eq,
        }
    }
}

impl fmt::Display for Cmp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cmp::Eq => write!(f, "="),
            Cmp::Neq => write!(f, "!="),
        }
    }
}

/// Right-hand side of an object condition: another position or an object
/// constant (referenced by name and resolved against the triplestore at
/// evaluation time).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ObjOperand {
    /// A join position.
    Pos(Pos),
    /// An object constant, referenced by its name in the triplestore.
    Const(String),
}

impl fmt::Display for ObjOperand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObjOperand::Pos(p) => write!(f, "{p}"),
            ObjOperand::Const(name) => write!(f, "'{name}'"),
        }
    }
}

/// A single `θ` atom: `lhs cmp rhs` where `lhs` is a position and `rhs` is a
/// position or an object constant.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ObjAtom {
    /// Left-hand position.
    pub lhs: Pos,
    /// Comparison operator.
    pub cmp: Cmp,
    /// Right-hand operand.
    pub rhs: ObjOperand,
}

impl ObjAtom {
    /// Returns `true` if the atom only mentions unprimed positions, so it is
    /// legal inside a selection.
    pub fn is_left_only(&self) -> bool {
        self.lhs.is_left()
            && match &self.rhs {
                ObjOperand::Pos(p) => p.is_left(),
                ObjOperand::Const(_) => true,
            }
    }

    /// Returns `true` if the atom is an equality (not an inequality).
    pub fn is_equality(&self) -> bool {
        self.cmp == Cmp::Eq
    }

    /// Returns the positions mentioned by the atom.
    pub fn positions(&self) -> Vec<Pos> {
        let mut ps = vec![self.lhs];
        if let ObjOperand::Pos(p) = &self.rhs {
            ps.push(*p);
        }
        ps
    }
}

impl fmt::Display for ObjAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}{}", self.lhs, self.cmp, self.rhs)
    }
}

/// Right-hand side of a data condition: the data value of another position or
/// a data-value constant.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataOperand {
    /// The data value `ρ(p)` of a join position `p`.
    Pos(Pos),
    /// A data-value constant.
    Const(Value),
}

impl fmt::Display for DataOperand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataOperand::Pos(p) => write!(f, "rho({p})"),
            DataOperand::Const(v) => write!(f, "{v}"),
        }
    }
}

/// A single `η` atom: `ρ(lhs) cmp rhs` where `rhs` is `ρ(pos)` or a constant
/// data value.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DataAtom {
    /// Position whose data value is compared.
    pub lhs: Pos,
    /// Comparison operator.
    pub cmp: Cmp,
    /// Right-hand operand.
    pub rhs: DataOperand,
}

impl DataAtom {
    /// Returns `true` if the atom only mentions unprimed positions.
    pub fn is_left_only(&self) -> bool {
        self.lhs.is_left()
            && match &self.rhs {
                DataOperand::Pos(p) => p.is_left(),
                DataOperand::Const(_) => true,
            }
    }

    /// Returns `true` if the atom is an equality (not an inequality).
    pub fn is_equality(&self) -> bool {
        self.cmp == Cmp::Eq
    }

    /// Returns the positions mentioned by the atom.
    pub fn positions(&self) -> Vec<Pos> {
        let mut ps = vec![self.lhs];
        if let DataOperand::Pos(p) = &self.rhs {
            ps.push(*p);
        }
        ps
    }
}

impl fmt::Display for DataAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rho({}){}{}", self.lhs, self.cmp, self.rhs)
    }
}

/// A pair of condition sets `(θ, η)` attached to a join or a selection.
///
/// The empty condition set is always satisfied.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct Conditions {
    /// Object conditions `θ`.
    pub theta: Vec<ObjAtom>,
    /// Data-value conditions `η`.
    pub eta: Vec<DataAtom>,
}

impl Conditions {
    /// Creates an empty (always-true) condition set.
    pub fn new() -> Self {
        Conditions::default()
    }

    /// Returns `true` if both `θ` and `η` are empty.
    pub fn is_empty(&self) -> bool {
        self.theta.is_empty() && self.eta.is_empty()
    }

    /// Total number of atoms.
    pub fn len(&self) -> usize {
        self.theta.len() + self.eta.len()
    }

    /// Adds an object equality `a = b` between two positions.
    pub fn obj_eq(mut self, a: Pos, b: Pos) -> Self {
        self.theta.push(ObjAtom {
            lhs: a,
            cmp: Cmp::Eq,
            rhs: ObjOperand::Pos(b),
        });
        self
    }

    /// Adds an object inequality `a ≠ b` between two positions.
    pub fn obj_neq(mut self, a: Pos, b: Pos) -> Self {
        self.theta.push(ObjAtom {
            lhs: a,
            cmp: Cmp::Neq,
            rhs: ObjOperand::Pos(b),
        });
        self
    }

    /// Adds an equality between a position and an object constant.
    pub fn obj_eq_const(mut self, a: Pos, name: impl Into<String>) -> Self {
        self.theta.push(ObjAtom {
            lhs: a,
            cmp: Cmp::Eq,
            rhs: ObjOperand::Const(name.into()),
        });
        self
    }

    /// Adds an inequality between a position and an object constant.
    pub fn obj_neq_const(mut self, a: Pos, name: impl Into<String>) -> Self {
        self.theta.push(ObjAtom {
            lhs: a,
            cmp: Cmp::Neq,
            rhs: ObjOperand::Const(name.into()),
        });
        self
    }

    /// Adds a data equality `ρ(a) = ρ(b)`.
    pub fn data_eq(mut self, a: Pos, b: Pos) -> Self {
        self.eta.push(DataAtom {
            lhs: a,
            cmp: Cmp::Eq,
            rhs: DataOperand::Pos(b),
        });
        self
    }

    /// Adds a data inequality `ρ(a) ≠ ρ(b)`.
    pub fn data_neq(mut self, a: Pos, b: Pos) -> Self {
        self.eta.push(DataAtom {
            lhs: a,
            cmp: Cmp::Neq,
            rhs: DataOperand::Pos(b),
        });
        self
    }

    /// Adds a data equality against a constant value `ρ(a) = v`.
    pub fn data_eq_const(mut self, a: Pos, v: impl Into<Value>) -> Self {
        self.eta.push(DataAtom {
            lhs: a,
            cmp: Cmp::Eq,
            rhs: DataOperand::Const(v.into()),
        });
        self
    }

    /// Adds a data inequality against a constant value `ρ(a) ≠ v`.
    pub fn data_neq_const(mut self, a: Pos, v: impl Into<Value>) -> Self {
        self.eta.push(DataAtom {
            lhs: a,
            cmp: Cmp::Neq,
            rhs: DataOperand::Const(v.into()),
        });
        self
    }

    /// Appends a pre-built object atom.
    pub fn with_obj_atom(mut self, atom: ObjAtom) -> Self {
        self.theta.push(atom);
        self
    }

    /// Appends a pre-built data atom.
    pub fn with_data_atom(mut self, atom: DataAtom) -> Self {
        self.eta.push(atom);
        self
    }

    /// Merges another condition set into this one (conjunction).
    pub fn and(mut self, other: Conditions) -> Self {
        self.theta.extend(other.theta);
        self.eta.extend(other.eta);
        self
    }

    /// The condition set with every position moved to the other side
    /// (`1 ↔ 1'` etc.) — the `θ,η` half of the join-argument-swap identity
    /// (see [`crate::OutputSpec::mirrored`]).
    pub fn mirrored(&self) -> Conditions {
        Conditions {
            theta: self
                .theta
                .iter()
                .map(|a| ObjAtom {
                    lhs: a.lhs.mirrored(),
                    cmp: a.cmp,
                    rhs: match &a.rhs {
                        ObjOperand::Pos(p) => ObjOperand::Pos(p.mirrored()),
                        c @ ObjOperand::Const(_) => c.clone(),
                    },
                })
                .collect(),
            eta: self
                .eta
                .iter()
                .map(|a| DataAtom {
                    lhs: a.lhs.mirrored(),
                    cmp: a.cmp,
                    rhs: match &a.rhs {
                        DataOperand::Pos(p) => DataOperand::Pos(p.mirrored()),
                        c @ DataOperand::Const(_) => c.clone(),
                    },
                })
                .collect(),
        }
    }

    /// Returns `true` if every atom only mentions unprimed positions, so the
    /// condition set is valid for a selection.
    pub fn is_left_only(&self) -> bool {
        self.theta.iter().all(ObjAtom::is_left_only) && self.eta.iter().all(DataAtom::is_left_only)
    }

    /// Returns `true` if every atom is an equality (no inequalities).
    ///
    /// This is the defining restriction of the fragments TriAL⁼ and reachTA⁼
    /// (Section 5 and Theorem 5).
    pub fn equalities_only(&self) -> bool {
        self.theta.iter().all(ObjAtom::is_equality) && self.eta.iter().all(DataAtom::is_equality)
    }

    /// Returns `true` if any atom references an object or data constant.
    pub fn has_constants(&self) -> bool {
        self.theta
            .iter()
            .any(|a| matches!(a.rhs, ObjOperand::Const(_)))
            || self
                .eta
                .iter()
                .any(|a| matches!(a.rhs, DataOperand::Const(_)))
    }

    /// All positions mentioned anywhere in the condition set.
    pub fn positions(&self) -> Vec<Pos> {
        let mut ps: Vec<Pos> = self
            .theta
            .iter()
            .flat_map(|a| a.positions())
            .chain(self.eta.iter().flat_map(|a| a.positions()))
            .collect();
        ps.sort();
        ps.dedup();
        ps
    }

    /// The object equality atoms that link a left position to a right
    /// position, returned as `(left, right)` pairs.
    ///
    /// These are the atoms a hash join can use as its key ("θ⋈" in the
    /// proof of Proposition 4).
    pub fn cross_equalities(&self) -> Vec<(Pos, Pos)> {
        let mut out = Vec::new();
        for atom in &self.theta {
            if atom.cmp != Cmp::Eq {
                continue;
            }
            if let ObjOperand::Pos(rhs) = atom.rhs {
                match (atom.lhs.is_left(), rhs.is_left()) {
                    (true, false) => out.push((atom.lhs, rhs)),
                    (false, true) => out.push((rhs, atom.lhs)),
                    _ => {}
                }
            }
        }
        out
    }
}

impl fmt::Display for Conditions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for atom in &self.theta {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{atom}")?;
            first = false;
        }
        for atom in &self.eta {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{atom}")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_apply_and_negate() {
        assert!(Cmp::Eq.apply(&1, &1));
        assert!(!Cmp::Eq.apply(&1, &2));
        assert!(Cmp::Neq.apply(&1, &2));
        assert_eq!(Cmp::Eq.negate(), Cmp::Neq);
        assert_eq!(Cmp::Neq.negate(), Cmp::Eq);
        assert_eq!(Cmp::Eq.to_string(), "=");
        assert_eq!(Cmp::Neq.to_string(), "!=");
    }

    #[test]
    fn fluent_construction_and_display() {
        let c = Conditions::new()
            .obj_eq(Pos::L2, Pos::R1)
            .obj_neq_const(Pos::L1, "Edinburgh")
            .data_eq(Pos::L3, Pos::R3)
            .data_eq_const(Pos::L1, Value::int(7));
        assert_eq!(c.len(), 4);
        assert!(!c.is_empty());
        assert_eq!(c.to_string(), "2=1',1!='Edinburgh',rho(3)=rho(3'),rho(1)=7");
    }

    #[test]
    fn empty_conditions() {
        let c = Conditions::new();
        assert!(c.is_empty());
        assert_eq!(c.len(), 0);
        assert!(c.is_left_only());
        assert!(c.equalities_only());
        assert!(!c.has_constants());
        assert_eq!(c.to_string(), "");
    }

    #[test]
    fn left_only_detection() {
        let sel = Conditions::new()
            .obj_eq(Pos::L1, Pos::L2)
            .data_eq_const(Pos::L3, "x");
        assert!(sel.is_left_only());
        let join = Conditions::new().obj_eq(Pos::L3, Pos::R1);
        assert!(!join.is_left_only());
        let join_data = Conditions::new().data_eq(Pos::L1, Pos::R2);
        assert!(!join_data.is_left_only());
    }

    #[test]
    fn equality_only_detection() {
        assert!(Conditions::new()
            .obj_eq(Pos::L1, Pos::R1)
            .data_eq(Pos::L2, Pos::R2)
            .equalities_only());
        assert!(!Conditions::new()
            .obj_neq(Pos::L1, Pos::R1)
            .equalities_only());
        assert!(!Conditions::new()
            .data_neq(Pos::L1, Pos::R1)
            .equalities_only());
    }

    #[test]
    fn constants_detection() {
        assert!(Conditions::new().obj_eq_const(Pos::L1, "a").has_constants());
        assert!(Conditions::new()
            .data_neq_const(Pos::L1, Value::Null)
            .has_constants());
        assert!(!Conditions::new().obj_eq(Pos::L1, Pos::R1).has_constants());
    }

    #[test]
    fn positions_collected_and_deduped() {
        let c = Conditions::new()
            .obj_eq(Pos::L2, Pos::R1)
            .obj_eq(Pos::L2, Pos::L3)
            .data_eq(Pos::R1, Pos::R3);
        assert_eq!(c.positions(), vec![Pos::L2, Pos::L3, Pos::R1, Pos::R3]);
    }

    #[test]
    fn cross_equalities_are_oriented() {
        let c = Conditions::new()
            .obj_eq(Pos::L3, Pos::R1) // left-to-right
            .obj_eq(Pos::R2, Pos::L2) // right-to-left, must be flipped
            .obj_eq(Pos::L1, Pos::L2) // same side: not a cross equality
            .obj_neq(Pos::L1, Pos::R1) // inequality: ignored
            .obj_eq_const(Pos::L1, "c"); // constant: ignored
        assert_eq!(
            c.cross_equalities(),
            vec![(Pos::L3, Pos::R1), (Pos::L2, Pos::R2)]
        );
    }

    #[test]
    fn and_merges_both_sets() {
        let a = Conditions::new().obj_eq(Pos::L1, Pos::R1);
        let b = Conditions::new().data_neq(Pos::L2, Pos::R2);
        let c = a.and(b);
        assert_eq!(c.theta.len(), 1);
        assert_eq!(c.eta.len(), 1);
    }

    #[test]
    fn atom_helpers() {
        let atom = ObjAtom {
            lhs: Pos::L1,
            cmp: Cmp::Eq,
            rhs: ObjOperand::Const("x".into()),
        };
        assert!(atom.is_left_only());
        assert!(atom.is_equality());
        assert_eq!(atom.positions(), vec![Pos::L1]);
        assert_eq!(atom.to_string(), "1='x'");

        let datom = DataAtom {
            lhs: Pos::R2,
            cmp: Cmp::Neq,
            rhs: DataOperand::Pos(Pos::L1),
        };
        assert!(!datom.is_left_only());
        assert!(!datom.is_equality());
        assert_eq!(datom.positions(), vec![Pos::R2, Pos::L1]);
        assert_eq!(datom.to_string(), "rho(2')!=rho(1)");
    }
}
