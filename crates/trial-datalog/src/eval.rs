//! Stratified evaluation of TripleDatalog¬ programs over triplestores.
//!
//! Extensional predicates are the relations of the triplestore; the
//! data-equivalence relation `sim(x, y)` is evaluated as `ρ(x) = ρ(y)`
//! without being materialised. Intensional predicates are computed stratum
//! by stratum (Program::stratification), with a naive fixpoint inside each
//! stratum — the standard least-fixpoint semantics the paper assumes
//! (Section 4, referring to \[1\]).

use crate::ast::{DlTerm, Literal, Rule};
use crate::program::Program;
use std::collections::{BTreeMap, HashMap, HashSet};
use trial_core::{Error, ObjectId, Result, Triple, TripleSet, Triplestore};

/// A tuple of a Datalog relation (arity ≤ 3).
pub type DlTuple = Vec<ObjectId>;

/// The result of evaluating a program: every IDB predicate's relation plus
/// the designated output predicate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgramResult {
    relations: BTreeMap<String, HashSet<DlTuple>>,
    output: String,
    /// Number of fixpoint rounds executed across all strata.
    pub fixpoint_rounds: u64,
    /// Number of rule instantiations (bindings) considered.
    pub bindings_considered: u64,
}

impl ProgramResult {
    /// The relation computed for a predicate (IDB or EDB).
    pub fn relation(&self, pred: &str) -> Option<&HashSet<DlTuple>> {
        self.relations.get(pred)
    }

    /// The output predicate's relation.
    pub fn output_relation(&self) -> &HashSet<DlTuple> {
        self.relations
            .get(&self.output)
            .expect("output predicate always present")
    }

    /// The output relation as a [`TripleSet`], when the output predicate has
    /// arity 3. Errors otherwise.
    pub fn output_triples(&self) -> Result<TripleSet> {
        let mut out = Vec::with_capacity(self.output_relation().len());
        for tuple in self.output_relation() {
            match tuple.as_slice() {
                [a, b, c] => out.push(Triple::new(*a, *b, *c)),
                other => {
                    return Err(Error::InvalidExpression(format!(
                        "output predicate `{}` has arity {}, not 3",
                        self.output,
                        other.len()
                    )))
                }
            }
        }
        Ok(TripleSet::from_vec(out))
    }

    /// Names of all predicates with a computed relation.
    pub fn predicates(&self) -> impl Iterator<Item = &str> + '_ {
        self.relations.keys().map(String::as_str)
    }
}

/// Evaluates a program through the **planned algebra pipeline**: translates
/// it to a TriAL / TriAL\* expression (Proposition 2 / Theorem 2) and runs
/// `trial-eval`'s cost-based planner and index-backed executor over the
/// store's permutation indexes.
///
/// Supports the fragments [`program_to_expr`](crate::program_to_expr)
/// supports (TripleDatalog¬ and ReachTripleDatalog¬); general stratified
/// programs must use the native [`evaluate_program`]. For supported
/// programs the two entry points agree, but this one inherits every planner
/// optimisation (hash/index joins, reachability procedures, memoisation)
/// and reports the engine's work counters.
pub fn evaluate_program_planned(
    program: &Program,
    store: &Triplestore,
) -> Result<trial_eval::Evaluation> {
    let expr = crate::to_algebra::program_to_expr(program)?;
    trial_eval::evaluate(&expr, store)
}

/// Renders the physical plan chosen for a program's algebra translation,
/// without executing it.
pub fn explain_program(program: &Program, store: &Triplestore) -> Result<String> {
    let expr = crate::to_algebra::program_to_expr(program)?;
    trial_eval::explain(&expr, store)
}

/// Evaluates a program over a triplestore.
///
/// Every EDB predicate must be a relation of the store. The result contains
/// the relations of *all* predicates (EDB relations are copied in so that
/// facts in the program can extend them).
pub fn evaluate_program(program: &Program, store: &Triplestore) -> Result<ProgramResult> {
    // Seed the database with the EDB relations.
    let mut db: BTreeMap<String, HashSet<DlTuple>> = BTreeMap::new();
    for pred in program.edb_predicates() {
        let triples = store.require_relation(pred)?;
        let tuples = triples
            .iter()
            .map(|t| vec![t.s(), t.p(), t.o()])
            .collect::<HashSet<_>>();
        db.insert(pred.to_owned(), tuples);
    }
    // IDB predicates referencing store relations by the same name extend them.
    for pred in program.idb_predicates() {
        let initial = match store.relation(pred) {
            Some(rel) => rel
                .triples()
                .iter()
                .map(|t| vec![t.s(), t.p(), t.o()])
                .collect(),
            None => HashSet::new(),
        };
        db.entry(pred.to_owned()).or_insert(initial);
    }

    let mut rounds: u64 = 0;
    let mut bindings: u64 = 0;
    for stratum in program.stratification()? {
        let rules: Vec<&Rule> = program
            .rules()
            .iter()
            .filter(|r| stratum.contains(&r.head.predicate))
            .collect();
        loop {
            rounds += 1;
            let mut changed = false;
            for rule in &rules {
                let derived = eval_rule(rule, &db, store, &mut bindings)?;
                let target = db
                    .get_mut(&rule.head.predicate)
                    .expect("IDB predicate seeded");
                for tuple in derived {
                    if target.insert(tuple) {
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }

    // Ensure the output predicate exists even if it never occurs in a head
    // (e.g. a pure-EDB "program" would be odd, but don't panic on it).
    db.entry(program.output().to_owned()).or_default();
    Ok(ProgramResult {
        relations: db,
        output: program.output().to_owned(),
        fixpoint_rounds: rounds,
        bindings_considered: bindings,
    })
}

/// A variable assignment built while matching body atoms.
type Binding = HashMap<String, ObjectId>;

fn resolve(term: &DlTerm, binding: &Binding, store: &Triplestore) -> Option<ObjectId> {
    match term {
        DlTerm::Var(v) => binding.get(v).copied(),
        DlTerm::Const(name) => store.object_id(name),
    }
}

/// Checks a single non-binding literal under a (partial) binding.
///
/// Returns `Ok(true)` if it holds, `Ok(false)` if it is violated. Callers
/// only invoke this once all the literal's variables are bound.
fn check_filter(
    literal: &Literal,
    binding: &Binding,
    db: &BTreeMap<String, HashSet<DlTuple>>,
    store: &Triplestore,
) -> Result<bool> {
    match literal {
        Literal::Atom { negated: false, .. } => Ok(true), // handled by the join
        Literal::Atom {
            atom,
            negated: true,
        } => {
            let relation = db
                .get(&atom.predicate)
                .ok_or_else(|| Error::UnknownRelation(atom.predicate.clone()))?;
            let tuple: Option<DlTuple> = atom
                .args
                .iter()
                .map(|t| resolve(t, binding, store))
                .collect();
            Ok(match tuple {
                // An unresolvable constant means the tuple cannot be in the
                // relation, so the negation holds.
                None => true,
                Some(tuple) => !relation.contains(&tuple),
            })
        }
        Literal::Sim {
            left,
            right,
            negated,
        } => {
            let l = resolve(left, binding, store);
            let r = resolve(right, binding, store);
            let holds = match (l, r) {
                (Some(l), Some(r)) => store.data_eq(l, r),
                _ => false,
            };
            Ok(holds != *negated)
        }
        Literal::Cmp {
            left,
            right,
            negated,
        } => {
            let l = resolve(left, binding, store);
            let r = resolve(right, binding, store);
            let holds = match (l, r) {
                (Some(l), Some(r)) => l == r,
                // An unresolvable constant equals nothing.
                _ => false,
            };
            Ok(holds != *negated)
        }
    }
}

fn eval_rule(
    rule: &Rule,
    db: &BTreeMap<String, HashSet<DlTuple>>,
    store: &Triplestore,
    bindings_considered: &mut u64,
) -> Result<Vec<DlTuple>> {
    // Separate the binding atoms from the filter literals, and schedule each
    // filter at the earliest join level where all its variables are bound.
    // Filtering as soon as possible keeps the search tree small — without it
    // a rule like `P(..) :- U(x1,x2,x3), U(y1,y2,y3), x1 != y1, …` would
    // materialise |U|² bindings before applying any condition.
    let atoms: Vec<&crate::ast::Atom> = rule
        .body
        .iter()
        .filter_map(|l| match l {
            Literal::Atom {
                atom,
                negated: false,
            } => Some(atom),
            _ => None,
        })
        .collect();
    let filters: Vec<&Literal> = rule.body.iter().filter(|l| !l.is_positive_atom()).collect();
    let mut bound: Vec<&str> = Vec::new();
    let mut filters_at_level: Vec<Vec<&Literal>> = vec![Vec::new(); atoms.len() + 1];
    {
        let mut remaining: Vec<&Literal> = filters;
        for (level, atom) in atoms.iter().enumerate() {
            for v in atom.variables() {
                if !bound.contains(&v) {
                    bound.push(v);
                }
            }
            let (ready, not_ready): (Vec<&Literal>, Vec<&Literal>) = remaining
                .into_iter()
                .partition(|l| l.variables().iter().all(|v| bound.contains(v)));
            filters_at_level[level + 1] = ready;
            remaining = not_ready;
        }
        // Filters with no variables (constant-only) run at level 0; anything
        // left over has unbound variables, which `Rule::is_safe` rules out.
        filters_at_level[0] = remaining;
    }

    struct Search<'a> {
        atoms: &'a [&'a crate::ast::Atom],
        filters_at_level: &'a [Vec<&'a Literal>],
        rule: &'a Rule,
        db: &'a BTreeMap<String, HashSet<DlTuple>>,
        store: &'a Triplestore,
        results: Vec<DlTuple>,
        bindings_considered: u64,
    }

    impl Search<'_> {
        fn run(&mut self, level: usize, binding: &mut Binding) -> Result<()> {
            for literal in &self.filters_at_level[level] {
                if !check_filter(literal, binding, self.db, self.store)? {
                    return Ok(());
                }
            }
            if level == self.atoms.len() {
                let head: Option<DlTuple> = self
                    .rule
                    .head
                    .args
                    .iter()
                    .map(|t| resolve(t, binding, self.store))
                    .collect();
                match head {
                    Some(tuple) => self.results.push(tuple),
                    None => {
                        return Err(Error::UnknownObject(format!(
                        "head of rule `{}` mentions a constant that does not exist in the store",
                        self.rule
                    )))
                    }
                }
                return Ok(());
            }
            let atom = self.atoms[level];
            let relation = self
                .db
                .get(&atom.predicate)
                .ok_or_else(|| Error::UnknownRelation(atom.predicate.clone()))?;
            'tuples: for tuple in relation {
                self.bindings_considered += 1;
                if tuple.len() != atom.arity() {
                    continue;
                }
                let mut newly_bound: Vec<String> = Vec::new();
                for (term, &value) in atom.args.iter().zip(tuple.iter()) {
                    match term {
                        DlTerm::Const(name) => match self.store.object_id(name) {
                            Some(id) if id == value => {}
                            _ => {
                                for v in &newly_bound {
                                    binding.remove(v);
                                }
                                continue 'tuples;
                            }
                        },
                        DlTerm::Var(v) => match binding.get(v) {
                            Some(&b) if b != value => {
                                for v in &newly_bound {
                                    binding.remove(v);
                                }
                                continue 'tuples;
                            }
                            Some(_) => {}
                            None => {
                                binding.insert(v.clone(), value);
                                newly_bound.push(v.clone());
                            }
                        },
                    }
                }
                let outcome = self.run(level + 1, binding);
                for v in &newly_bound {
                    binding.remove(v);
                }
                outcome?;
            }
            Ok(())
        }
    }

    let mut search = Search {
        atoms: &atoms,
        filters_at_level: &filters_at_level,
        rule,
        db,
        store,
        results: Vec::new(),
        bindings_considered: 0,
    };
    let mut binding = Binding::new();
    search.run(0, &mut binding)?;
    *bindings_considered += search.bindings_considered;
    Ok(search.results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use trial_core::{TriplestoreBuilder, Value};

    fn figure1() -> Triplestore {
        let mut b = TriplestoreBuilder::new();
        for (s, p, o) in [
            ("St.Andrews", "BusOp1", "Edinburgh"),
            ("Edinburgh", "TrainOp1", "London"),
            ("London", "TrainOp2", "Brussels"),
            ("BusOp1", "part_of", "NatExpress"),
            ("TrainOp1", "part_of", "EastCoast"),
            ("TrainOp2", "part_of", "Eurostar"),
            ("EastCoast", "part_of", "NatExpress"),
        ] {
            b.add_triple("E", s, p, o);
        }
        b.finish()
    }

    #[test]
    fn example2_as_datalog() {
        let store = figure1();
        let program =
            parse_program("Ans(x, c, y) :- E(x, op, y), E(op, p, c), p = 'part_of'.").unwrap();
        let result = evaluate_program(&program, &store).unwrap();
        let triples = result.output_triples().unwrap();
        assert_eq!(
            store.display_triples(&triples),
            vec![
                "(Edinburgh, EastCoast, London)".to_string(),
                "(London, Eurostar, Brussels)".to_string(),
                "(St.Andrews, NatExpress, Edinburgh)".to_string(),
            ]
        );
        assert!(result.bindings_considered > 0);
        assert!(result.predicates().any(|p| p == "E"));
    }

    #[test]
    fn planned_pipeline_matches_native_evaluation() {
        let store = figure1();
        let program = parse_program(
            "Reach(x, y, z) :- E(x, y, z).
             Reach(x, y, z) :- Reach(x, y, w), E(w, u, z).
             Ans(x, y, z) :- Reach(x, y, z).",
        )
        .unwrap();
        let native = evaluate_program(&program, &store)
            .unwrap()
            .output_triples()
            .unwrap();
        let planned = evaluate_program_planned(&program, &store).unwrap();
        assert_eq!(native, planned.result);
        assert!(planned.stats.work() > 0);
        // The recursive program plans into a star over an index scan.
        let plan_text = explain_program(&program, &store).unwrap();
        assert!(
            plan_text.contains("Star"),
            "expected a star operator in:\n{plan_text}"
        );
        assert!(plan_text.contains("IndexScan E"), "got:\n{plan_text}");
    }

    #[test]
    fn recursive_reachability() {
        let store = figure1();
        let program = parse_program(
            "Reach(x, y, z) :- E(x, y, z).
             Reach(x, y, z) :- Reach(x, y, w), E(w, u, z).
             Ans(x, y, z) :- Reach(x, y, z).",
        )
        .unwrap();
        let result = evaluate_program(&program, &store).unwrap();
        let triples = result.output_triples().unwrap();
        // Matches the algebra's Reach→ on the same store.
        let algebra =
            trial_eval::evaluate(&trial_core::builder::queries::reach_forward("E"), &store)
                .unwrap();
        assert_eq!(triples, algebra.result);
        assert!(result.fixpoint_rounds >= 2);
    }

    #[test]
    fn negation_and_sim_literals() {
        let mut b = TriplestoreBuilder::new();
        b.add_triple("E", "a", "p", "b");
        b.add_triple("E", "b", "p", "c");
        b.add_triple("F", "a", "p", "b");
        b.object_with_value("a", Value::int(1));
        b.object_with_value("c", Value::int(1));
        b.object_with_value("b", Value::int(2));
        let store = b.finish();
        // Triples of E not in F, whose endpoints carry the same data value.
        let program =
            parse_program("Ans(x, y, z) :- E(x, y, z), not F(x, y, z), not sim(x, z), x != z.")
                .unwrap();
        let result = evaluate_program(&program, &store).unwrap();
        let triples = result.output_triples().unwrap();
        // (b, p, c) is not in F; ρ(b)=2 ≠ ρ(c)=1 so "not sim" holds; b ≠ c.
        assert_eq!(
            store.display_triples(&triples),
            vec!["(b, p, c)".to_string()]
        );
        // Flipping to positive sim selects nothing here: (a,p,b) is in F.
        let program = parse_program("Ans(x, y, z) :- E(x, y, z), sim(x, z).").unwrap();
        let result = evaluate_program(&program, &store).unwrap();
        assert!(result.output_triples().unwrap().is_empty());
    }

    #[test]
    fn facts_and_unknown_constants() {
        let store = figure1();
        // A fact with known constants extends the IDB.
        let program = parse_program(
            "Extra('Edinburgh', 'part_of', 'NatExpress').
             Ans(x, y, z) :- Extra(x, y, z).",
        )
        .unwrap();
        let result = evaluate_program(&program, &store).unwrap();
        assert_eq!(result.output_triples().unwrap().len(), 1);
        // A fact naming an unknown object is an error (the store's object set
        // is fixed).
        let program = parse_program(
            "Extra('Narnia', 'part_of', 'NatExpress').
             Ans(x, y, z) :- Extra(x, y, z).",
        )
        .unwrap();
        assert!(evaluate_program(&program, &store).is_err());
        // Comparisons against unknown constants are simply unsatisfied.
        let program = parse_program("Ans(x, y, z) :- E(x, y, z), x = 'Narnia'.").unwrap();
        let result = evaluate_program(&program, &store).unwrap();
        assert!(result.output_triples().unwrap().is_empty());
        let program = parse_program("Ans(x, y, z) :- E(x, y, z), x != 'Narnia'.").unwrap();
        let result = evaluate_program(&program, &store).unwrap();
        assert_eq!(result.output_triples().unwrap().len(), 7);
    }

    #[test]
    fn missing_edb_relation_is_an_error() {
        let store = figure1();
        let program = parse_program("Ans(x, y, z) :- Missing(x, y, z).").unwrap();
        assert!(matches!(
            evaluate_program(&program, &store),
            Err(Error::UnknownRelation(_))
        ));
    }

    #[test]
    fn lower_arity_output_is_not_a_triple_set() {
        let store = figure1();
        let program = parse_program("Pair(x, z) :- E(x, y, z).\nAns(x, z) :- Pair(x, z).").unwrap();
        let result = evaluate_program(&program, &store).unwrap();
        assert_eq!(result.output_relation().len(), 7);
        assert!(result.output_triples().is_err());
    }

    #[test]
    fn stratified_negation_over_recursion() {
        let store = figure1();
        // Pairs reachable in one or more steps, minus the direct edges.
        let program = parse_program(
            "Reach(x, y, z) :- E(x, y, z).
             Reach(x, y, z) :- Reach(x, y, w), E(w, u, z).
             Ans(x, y, z) :- Reach(x, y, z), not E(x, y, z).",
        )
        .unwrap();
        let result = evaluate_program(&program, &store).unwrap();
        let triples = result.output_triples().unwrap();
        assert!(!triples.is_empty());
        let e = store.require_relation("E").unwrap();
        for t in triples.iter() {
            assert!(!e.contains(t));
        }
    }
}
