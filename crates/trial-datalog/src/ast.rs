//! Abstract syntax of TripleDatalog¬ rules.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// A term of a Datalog atom: a variable or an object constant.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum DlTerm {
    /// A variable, e.g. `x`.
    Var(String),
    /// An object constant referenced by name, e.g. `'part_of'`.
    Const(String),
}

impl DlTerm {
    /// Builds a variable term.
    pub fn var(name: impl Into<String>) -> Self {
        DlTerm::Var(name.into())
    }

    /// Builds a constant term.
    pub fn constant(name: impl Into<String>) -> Self {
        DlTerm::Const(name.into())
    }

    /// Returns the variable name if this is a variable.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            DlTerm::Var(v) => Some(v),
            DlTerm::Const(_) => None,
        }
    }
}

impl fmt::Display for DlTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DlTerm::Var(v) => write!(f, "{v}"),
            DlTerm::Const(c) => write!(f, "'{c}'"),
        }
    }
}

/// A relational atom `P(t1, …, tk)` with `k ≤ 3`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Atom {
    /// Predicate name.
    pub predicate: String,
    /// Argument terms (arity at most 3).
    pub args: Vec<DlTerm>,
}

impl Atom {
    /// Builds an atom.
    pub fn new(predicate: impl Into<String>, args: Vec<DlTerm>) -> Self {
        Atom {
            predicate: predicate.into(),
            args,
        }
    }

    /// The atom's arity.
    pub fn arity(&self) -> usize {
        self.args.len()
    }

    /// Variables appearing in the atom (without duplicates, in first-use order).
    pub fn variables(&self) -> Vec<&str> {
        let mut seen = Vec::new();
        for arg in &self.args {
            if let DlTerm::Var(v) = arg {
                if !seen.contains(&v.as_str()) {
                    seen.push(v.as_str());
                }
            }
        }
        seen
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.predicate)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

/// A body literal: a possibly negated relational atom, a data-equivalence
/// test `sim(x, y)` (the paper's `∼`), or an (in)equality between terms.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Literal {
    /// `P(t̄)` or `not P(t̄)`.
    Atom {
        /// The atom.
        atom: Atom,
        /// `true` if the literal is negated.
        negated: bool,
    },
    /// `sim(t1, t2)` or `not sim(t1, t2)` — data-value equality `ρ(t1) = ρ(t2)`.
    Sim {
        /// Left term.
        left: DlTerm,
        /// Right term.
        right: DlTerm,
        /// `true` if the literal is negated.
        negated: bool,
    },
    /// `t1 = t2` or `t1 != t2`.
    Cmp {
        /// Left term.
        left: DlTerm,
        /// Right term.
        right: DlTerm,
        /// `true` for `!=`.
        negated: bool,
    },
}

impl Literal {
    /// Builds a positive relational literal.
    pub fn pos(atom: Atom) -> Self {
        Literal::Atom {
            atom,
            negated: false,
        }
    }

    /// Builds a negated relational literal.
    pub fn neg(atom: Atom) -> Self {
        Literal::Atom {
            atom,
            negated: true,
        }
    }

    /// Variables appearing in the literal.
    pub fn variables(&self) -> Vec<&str> {
        match self {
            Literal::Atom { atom, .. } => atom.variables(),
            Literal::Sim { left, right, .. } | Literal::Cmp { left, right, .. } => {
                let mut vs = Vec::new();
                for t in [left, right] {
                    if let DlTerm::Var(v) = t {
                        if !vs.contains(&v.as_str()) {
                            vs.push(v.as_str());
                        }
                    }
                }
                vs
            }
        }
    }

    /// `true` if this is a positive relational atom (the kind that can bind
    /// variables during evaluation).
    pub fn is_positive_atom(&self) -> bool {
        matches!(self, Literal::Atom { negated: false, .. })
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Atom { atom, negated } => {
                if *negated {
                    write!(f, "not {atom}")
                } else {
                    write!(f, "{atom}")
                }
            }
            Literal::Sim {
                left,
                right,
                negated,
            } => {
                if *negated {
                    write!(f, "not sim({left}, {right})")
                } else {
                    write!(f, "sim({left}, {right})")
                }
            }
            Literal::Cmp {
                left,
                right,
                negated,
            } => {
                if *negated {
                    write!(f, "{left} != {right}")
                } else {
                    write!(f, "{left} = {right}")
                }
            }
        }
    }
}

/// A Datalog rule `Head(…) :- L1, …, Ln.`
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Rule {
    /// The head atom.
    pub head: Atom,
    /// The body literals.
    pub body: Vec<Literal>,
}

impl Rule {
    /// Builds a rule.
    pub fn new(head: Atom, body: Vec<Literal>) -> Self {
        Rule { head, body }
    }

    /// Predicates referenced in the body, each tagged with whether it occurs
    /// under negation.
    pub fn body_predicates(&self) -> Vec<(&str, bool)> {
        self.body
            .iter()
            .filter_map(|l| match l {
                Literal::Atom { atom, negated } => Some((atom.predicate.as_str(), *negated)),
                _ => None,
            })
            .collect()
    }

    /// All distinct variables of the rule.
    pub fn variables(&self) -> BTreeSet<&str> {
        let mut vars: BTreeSet<&str> = BTreeSet::new();
        vars.extend(self.head.variables());
        for l in &self.body {
            vars.extend(l.variables());
        }
        vars
    }

    /// Checks the *safety* condition: every variable of the head and of the
    /// non-binding literals must occur in some positive relational body atom.
    pub fn is_safe(&self) -> bool {
        let mut bound: BTreeSet<&str> = BTreeSet::new();
        for l in &self.body {
            if l.is_positive_atom() {
                bound.extend(l.variables());
            }
        }
        let head_safe = self.head.variables().iter().all(|v| bound.contains(v));
        let body_safe = self.body.iter().all(|l| {
            if l.is_positive_atom() {
                true
            } else {
                l.variables().iter().all(|v| bound.contains(v))
            }
        });
        head_safe && body_safe
    }

    /// Number of positive relational atoms in the body.
    pub fn positive_atom_count(&self) -> usize {
        self.body.iter().filter(|l| l.is_positive_atom()).count()
    }

    /// Number of relational atoms (positive or negated) in the body.
    pub fn relational_atom_count(&self) -> usize {
        self.body
            .iter()
            .filter(|l| matches!(l, Literal::Atom { .. }))
            .count()
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} :- ", self.head)?;
        for (i, l) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{l}")?;
        }
        write!(f, ".")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &str) -> DlTerm {
        DlTerm::var(s)
    }

    #[test]
    fn term_and_atom_display() {
        let a = Atom::new("E", vec![v("x"), DlTerm::constant("part_of"), v("y")]);
        assert_eq!(a.to_string(), "E(x, 'part_of', y)");
        assert_eq!(a.arity(), 3);
        assert_eq!(a.variables(), vec!["x", "y"]);
        assert_eq!(v("x").as_var(), Some("x"));
        assert_eq!(DlTerm::constant("c").as_var(), None);
    }

    #[test]
    fn rule_display_and_accessors() {
        let rule = Rule::new(
            Atom::new("Ans", vec![v("x"), v("y"), v("z")]),
            vec![
                Literal::pos(Atom::new("E", vec![v("x"), v("w"), v("y")])),
                Literal::neg(Atom::new("F", vec![v("x"), v("y"), v("z")])),
                Literal::Sim {
                    left: v("x"),
                    right: v("y"),
                    negated: false,
                },
                Literal::Cmp {
                    left: v("w"),
                    right: DlTerm::constant("part_of"),
                    negated: true,
                },
            ],
        );
        assert_eq!(
            rule.to_string(),
            "Ans(x, y, z) :- E(x, w, y), not F(x, y, z), sim(x, y), w != 'part_of'."
        );
        assert_eq!(rule.body_predicates(), vec![("E", false), ("F", true)]);
        assert_eq!(rule.positive_atom_count(), 1);
        assert_eq!(rule.relational_atom_count(), 2);
        assert_eq!(
            rule.variables().into_iter().collect::<Vec<_>>(),
            vec!["w", "x", "y", "z"]
        );
    }

    #[test]
    fn safety_checks() {
        // Safe: all head vars bound by the positive atom.
        let safe = Rule::new(
            Atom::new("P", vec![v("x"), v("y"), v("z")]),
            vec![Literal::pos(Atom::new("E", vec![v("x"), v("y"), v("z")]))],
        );
        assert!(safe.is_safe());
        // Unsafe: head variable z never bound.
        let unsafe_head = Rule::new(
            Atom::new("P", vec![v("x"), v("y"), v("z")]),
            vec![Literal::pos(Atom::new("E", vec![v("x"), v("y"), v("y")]))],
        );
        assert!(!unsafe_head.is_safe());
        // Unsafe: negated atom uses an unbound variable.
        let unsafe_neg = Rule::new(
            Atom::new("P", vec![v("x"), v("x"), v("x")]),
            vec![
                Literal::pos(Atom::new("E", vec![v("x"), v("x"), v("x")])),
                Literal::neg(Atom::new("F", vec![v("x"), v("q"), v("x")])),
            ],
        );
        assert!(!unsafe_neg.is_safe());
        // Constants never need binding.
        let with_const = Rule::new(
            Atom::new("P", vec![v("x"), v("x"), v("x")]),
            vec![
                Literal::pos(Atom::new("E", vec![v("x"), DlTerm::constant("c"), v("x")])),
                Literal::Cmp {
                    left: v("x"),
                    right: DlTerm::constant("d"),
                    negated: false,
                },
            ],
        );
        assert!(with_const.is_safe());
    }

    #[test]
    fn literal_variables_and_positivity() {
        let sim = Literal::Sim {
            left: v("a"),
            right: v("a"),
            negated: true,
        };
        assert_eq!(sim.variables(), vec!["a"]);
        assert!(!sim.is_positive_atom());
        let cmp = Literal::Cmp {
            left: v("a"),
            right: DlTerm::constant("k"),
            negated: false,
        };
        assert_eq!(cmp.variables(), vec!["a"]);
        assert!(Literal::pos(Atom::new("E", vec![v("a")])).is_positive_atom());
        assert!(!Literal::neg(Atom::new("E", vec![v("a")])).is_positive_atom());
    }
}
