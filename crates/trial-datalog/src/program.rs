//! Programs: validation, dependency analysis, stratification and
//! classification into the paper's fragments.

use crate::ast::{Literal, Rule};
use std::collections::{BTreeMap, BTreeSet};
use trial_core::{Error, Result};

/// Syntactic classification of a program with respect to the fragments of
/// Section 4 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProgramClass {
    /// A non-recursive TripleDatalog¬ program — equivalent to TriAL
    /// (Proposition 2).
    NonRecursiveTripleDatalog,
    /// A ReachTripleDatalog¬ program — equivalent to TriAL\* (Theorem 2).
    ReachTripleDatalog,
    /// A stratified program outside the paper's two fragments (e.g. rules
    /// with three relational atoms, or recursion that is not of the simple
    /// reachability shape). Still evaluable by this crate, but not covered
    /// by the capture theorems.
    GeneralStratified,
}

impl std::fmt::Display for ProgramClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProgramClass::NonRecursiveTripleDatalog => write!(f, "TripleDatalog¬ (non-recursive)"),
            ProgramClass::ReachTripleDatalog => write!(f, "ReachTripleDatalog¬"),
            ProgramClass::GeneralStratified => write!(f, "general stratified Datalog¬"),
        }
    }
}

/// A validated TripleDatalog¬ program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    rules: Vec<Rule>,
    output: String,
}

impl Program {
    /// Validates and builds a program.
    ///
    /// Checks performed:
    /// * every rule is *safe* (range-restricted);
    /// * every predicate is used with a consistent arity of at most 3;
    /// * the program is *stratified* (no recursion through negation).
    pub fn new(rules: Vec<Rule>, output: impl Into<String>) -> Result<Program> {
        let output = output.into();
        if rules.is_empty() {
            return Err(Error::InvalidExpression(
                "a Datalog program needs at least one rule".into(),
            ));
        }
        fn record_arity(
            arities: &mut BTreeMap<String, usize>,
            pred: &str,
            arity: usize,
        ) -> Result<()> {
            if arity > 3 {
                return Err(Error::InvalidExpression(format!(
                    "predicate `{pred}` has arity {arity} > 3"
                )));
            }
            match arities.get(pred) {
                Some(&a) if a != arity => Err(Error::InvalidExpression(format!(
                    "predicate `{pred}` is used with arities {a} and {arity}"
                ))),
                _ => {
                    arities.insert(pred.to_owned(), arity);
                    Ok(())
                }
            }
        }
        let mut arities: BTreeMap<String, usize> = BTreeMap::new();
        for rule in &rules {
            if !rule.is_safe() {
                return Err(Error::InvalidExpression(format!(
                    "rule `{rule}` is unsafe: every head variable and every variable of a \
                     negated or comparison literal must occur in a positive body atom"
                )));
            }
            record_arity(&mut arities, &rule.head.predicate, rule.head.arity())?;
            for lit in &rule.body {
                if let Literal::Atom { atom, .. } = lit {
                    record_arity(&mut arities, &atom.predicate, atom.arity())?;
                }
            }
        }
        let program = Program { rules, output };
        // Stratification doubles as the recursion-through-negation check.
        program.stratification()?;
        Ok(program)
    }

    /// The program's rules.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// The output (answer) predicate.
    pub fn output(&self) -> &str {
        &self.output
    }

    /// Intensional predicates: those defined by at least one rule head.
    pub fn idb_predicates(&self) -> BTreeSet<&str> {
        self.rules
            .iter()
            .map(|r| r.head.predicate.as_str())
            .collect()
    }

    /// Extensional predicates: referenced in bodies but never defined by a
    /// rule. These must be relations of the triplestore at evaluation time.
    pub fn edb_predicates(&self) -> BTreeSet<&str> {
        let idb = self.idb_predicates();
        self.rules
            .iter()
            .flat_map(|r| r.body_predicates())
            .map(|(p, _)| p)
            .filter(|p| !idb.contains(p))
            .collect()
    }

    /// Returns `true` if some predicate (transitively) depends on itself.
    pub fn is_recursive(&self) -> bool {
        let idb = self.idb_predicates();
        // Depth-first search over the dependency graph looking for a cycle.
        for &start in &idb {
            let mut stack = vec![start];
            let mut seen: BTreeSet<&str> = BTreeSet::new();
            while let Some(p) = stack.pop() {
                for rule in self.rules.iter().filter(|r| r.head.predicate == p) {
                    for (q, _) in rule.body_predicates() {
                        if q == start {
                            return true;
                        }
                        if idb.contains(q) && seen.insert(q) {
                            stack.push(q);
                        }
                    }
                }
            }
        }
        false
    }

    /// Direct dependencies of an IDB predicate: the predicates occurring in
    /// the bodies of its rules, each tagged with whether the occurrence is
    /// negated.
    pub fn dependencies(&self, pred: &str) -> Vec<(&str, bool)> {
        let mut out = Vec::new();
        for rule in self.rules.iter().filter(|r| r.head.predicate == pred) {
            out.extend(rule.body_predicates());
        }
        out.sort();
        out.dedup();
        out
    }

    /// Computes a stratification: an assignment of IDB predicates to strata
    /// such that positive dependencies stay within or below a predicate's
    /// stratum and negative dependencies are strictly below.
    ///
    /// Returns the strata in evaluation order. Fails if the program uses
    /// recursion through negation.
    pub fn stratification(&self) -> Result<Vec<Vec<String>>> {
        let idb: Vec<&str> = self.idb_predicates().into_iter().collect();
        let index: BTreeMap<&str, usize> = idb.iter().enumerate().map(|(i, &p)| (p, i)).collect();
        let n = idb.len();
        let mut stratum = vec![0usize; n];
        // Iterate the constraint system to a fixpoint; more than n·n rounds
        // means an ever-growing stratum, i.e. recursion through negation.
        let max_rounds = n * n + 1;
        for round in 0..=max_rounds {
            let mut changed = false;
            for rule in &self.rules {
                let head = index[rule.head.predicate.as_str()];
                for (pred, negated) in rule.body_predicates() {
                    if let Some(&body) = index.get(pred) {
                        let required = if negated {
                            stratum[body] + 1
                        } else {
                            stratum[body]
                        };
                        if stratum[head] < required {
                            stratum[head] = required;
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
            if round == max_rounds {
                return Err(Error::InvalidExpression(
                    "program is not stratified: it uses recursion through negation".into(),
                ));
            }
            if stratum.iter().any(|&s| s > n) {
                return Err(Error::InvalidExpression(
                    "program is not stratified: it uses recursion through negation".into(),
                ));
            }
        }
        let max_stratum = stratum.iter().copied().max().unwrap_or(0);
        let mut strata: Vec<Vec<String>> = vec![Vec::new(); max_stratum + 1];
        for (i, &s) in stratum.iter().enumerate() {
            strata[s].push(idb[i].to_owned());
        }
        Ok(strata.into_iter().filter(|s| !s.is_empty()).collect())
    }

    /// Classifies the program into one of the paper's fragments.
    pub fn classify(&self) -> ProgramClass {
        let within_triple_datalog = self.rules.iter().all(|r| r.relational_atom_count() <= 2);
        if !within_triple_datalog {
            return ProgramClass::GeneralStratified;
        }
        if !self.is_recursive() {
            return ProgramClass::NonRecursiveTripleDatalog;
        }
        // Recursive: every recursive predicate must follow the
        // ReachTripleDatalog¬ template.
        let idb = self.idb_predicates();
        let recursive_preds: Vec<&str> = idb
            .iter()
            .copied()
            .filter(|p| self.predicate_is_recursive(p))
            .collect();
        for pred in recursive_preds {
            if !self.is_reach_predicate(pred) {
                return ProgramClass::GeneralStratified;
            }
        }
        ProgramClass::ReachTripleDatalog
    }

    /// Returns `true` if `pred` (transitively) depends on itself.
    pub fn predicate_is_recursive(&self, pred: &str) -> bool {
        self.depends_on(pred, pred)
    }

    /// Returns `true` if `from` (transitively, through rule bodies) depends
    /// on `target`.
    pub fn depends_on(&self, from: &str, target: &str) -> bool {
        let idb = self.idb_predicates();
        let mut stack = vec![from];
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        while let Some(p) = stack.pop() {
            for rule in self.rules.iter().filter(|r| r.head.predicate == p) {
                for (q, _) in rule.body_predicates() {
                    if q == target {
                        return true;
                    }
                    if idb.contains(q) && seen.insert(q) {
                        stack.push(q);
                    }
                }
            }
        }
        false
    }

    /// Checks that a recursive predicate follows the ReachTripleDatalog¬
    /// template: exactly two rules,
    /// `S(x̄) ← R(x̄)` and
    /// `S(x̄) ← S(x̄1), R(x̄2), V(y1,z1), …, V(yk,zk)` with each `V` an
    /// (in)equality or (negated) `sim` literal.
    ///
    /// The paper requires `R` to be "non-recursive"; we read that as *not
    /// mutually recursive with `S`* (i.e. `R` must not depend on `S`), which
    /// is the reading under which the Theorem 2 translation of nested Kleene
    /// stars type-checks — the `R` produced for an outer star is itself a
    /// reachability predicate, just one defined in an earlier stratum.
    pub(crate) fn is_reach_predicate(&self, pred: &str) -> bool {
        let rules: Vec<&Rule> = self
            .rules
            .iter()
            .filter(|r| r.head.predicate == pred)
            .collect();
        if rules.len() != 2 {
            return false;
        }
        let is_base = |r: &Rule| {
            r.body.len() == 1
                && matches!(
                    &r.body[0],
                    Literal::Atom { atom, negated: false }
                        if atom.predicate != pred && !self.depends_on(&atom.predicate, pred)
                )
        };
        let is_step = |r: &Rule| {
            let atoms: Vec<_> = r
                .body
                .iter()
                .filter_map(|l| match l {
                    Literal::Atom {
                        atom,
                        negated: false,
                    } => Some(atom),
                    _ => None,
                })
                .collect();
            if atoms.len() != 2 {
                return false;
            }
            let mentions_self = atoms.iter().filter(|a| a.predicate == pred).count() == 1;
            let other_is_lower = atoms
                .iter()
                .filter(|a| a.predicate != pred)
                .all(|a| !self.depends_on(&a.predicate, pred));
            let rest_are_conditions = r.body.iter().all(|l| match l {
                Literal::Atom { negated, .. } => !negated,
                Literal::Sim { .. } | Literal::Cmp { .. } => true,
            });
            mentions_self && other_is_lower && rest_are_conditions
        };
        (is_base(rules[0]) && is_step(rules[1])) || (is_base(rules[1]) && is_step(rules[0]))
    }
}

impl std::fmt::Display for Program {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for rule in &self.rules {
            writeln!(f, "{rule}")?;
        }
        write!(f, "% output: {}", self.output)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    #[test]
    fn classify_nonrecursive() {
        let p = parse_program("Ans(x, c, y) :- E(x, op, y), E(op, p, c).").unwrap();
        assert_eq!(p.classify(), ProgramClass::NonRecursiveTripleDatalog);
        assert!(!p.is_recursive());
        assert_eq!(
            p.edb_predicates().into_iter().collect::<Vec<_>>(),
            vec!["E"]
        );
        assert_eq!(
            p.idb_predicates().into_iter().collect::<Vec<_>>(),
            vec!["Ans"]
        );
    }

    #[test]
    fn classify_reach_datalog() {
        let p = parse_program(
            "Reach(x, y, z) :- E(x, y, z).
             Reach(x, y, z) :- Reach(x, y, w), E(w, u, z), sim(x, w).
             Ans(x, y, z) :- Reach(x, y, z).",
        )
        .unwrap();
        assert!(p.is_recursive());
        assert!(p.predicate_is_recursive("Reach"));
        assert!(!p.predicate_is_recursive("Ans"));
        assert_eq!(p.classify(), ProgramClass::ReachTripleDatalog);
    }

    #[test]
    fn classify_general_when_three_atoms() {
        let p = parse_program("Ans(x, y, z) :- E(x, y, w), E(w, y, v), E(v, y, z).").unwrap();
        assert_eq!(p.classify(), ProgramClass::GeneralStratified);
    }

    #[test]
    fn classify_general_when_recursion_is_not_reach_shaped() {
        // Three rules for the recursive predicate.
        let p = parse_program(
            "R(x, y, z) :- E(x, y, z).
             R(x, y, z) :- F(x, y, z).
             R(x, y, z) :- R(x, y, w), E(w, u, z).",
        )
        .unwrap();
        assert_eq!(p.classify(), ProgramClass::GeneralStratified);
        // Mutual recursion is also outside the fragment.
        let p = parse_program(
            "A(x, y, z) :- E(x, y, z).
             A(x, y, z) :- B(x, y, w), E(w, u, z).
             B(x, y, z) :- E(x, y, z).
             B(x, y, z) :- A(x, y, w), E(w, u, z).",
        )
        .unwrap();
        assert_eq!(p.classify(), ProgramClass::GeneralStratified);
    }

    #[test]
    fn stratification_orders_negation() {
        let p = parse_program(
            "Base(x, y, z) :- E(x, y, z).
             Good(x, y, z) :- E(x, y, z), not Base(x, y, z).
             Ans(x, y, z) :- Good(x, y, z).",
        )
        .unwrap();
        let strata = p.stratification().unwrap();
        let pos = |name: &str| {
            strata
                .iter()
                .position(|s| s.iter().any(|p| p == name))
                .unwrap()
        };
        assert!(pos("Base") < pos("Good"));
        assert!(pos("Good") <= pos("Ans"));
    }

    #[test]
    fn recursion_through_negation_is_rejected() {
        let err = parse_program(
            "P(x, y, z) :- E(x, y, z), not Q(x, y, z).
             Q(x, y, z) :- E(x, y, z), not P(x, y, z).",
        )
        .unwrap_err();
        assert!(err.to_string().contains("stratified"));
    }

    #[test]
    fn arity_consistency_is_enforced() {
        // Mixed arities for the same predicate are rejected …
        let conflict = parse_program(
            "P(x, y) :- E(x, y, y).
             Ans(x, y, z) :- E(x, y, z), P(x, y, z).",
        );
        assert!(conflict.is_err());
        // … while distinct predicates may have distinct arities.
        let ok = parse_program(
            "P(x, y) :- E(x, y, y).
             Ans(x, y, z) :- E(x, y, z), P(x, y).",
        );
        assert!(ok.is_ok());
    }

    #[test]
    fn display_includes_output_marker() {
        let p = parse_program("Ans(x, y, z) :- E(x, y, z).").unwrap();
        let text = p.to_string();
        assert!(text.contains("Ans(x, y, z) :- E(x, y, z)."));
        assert!(text.contains("% output: Ans"));
    }

    #[test]
    fn dependencies_are_reported() {
        let p = parse_program(
            "Ans(x, y, z) :- E(x, y, z), not F(x, y, z).
             Ans(x, y, z) :- G(x, y, z).",
        )
        .unwrap();
        assert_eq!(
            p.dependencies("Ans"),
            vec![("E", false), ("F", true), ("G", false)]
        );
    }
}
