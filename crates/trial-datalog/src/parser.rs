//! A parser for TripleDatalog¬ programs.
//!
//! Syntax (one rule per `.`; `%` and `#` start line comments):
//!
//! ```text
//! Ans(x, c, y)  :- E(x, op, y), E(op, p, c), p = 'part_of'.
//! Reach(x, y, z) :- E(x, y, z).
//! Reach(x, y, z) :- Reach(x, y, w), E(w, u, z), not sim(x, z), y != 'loop'.
//! ```
//!
//! * predicate names start with an upper- or lower-case letter; arity ≤ 3;
//! * variables are plain identifiers, object constants are single-quoted;
//! * `sim(a, b)` is the data-equivalence relation `∼`;
//! * `not` negates a relational atom or a `sim` literal, `!=` negates `=`.
//!
//! The first rule's head predicate is taken as the program's output
//! predicate unless a later rule re-uses the name `Ans`, which always wins.

use crate::ast::{Atom, DlTerm, Literal, Rule};
use crate::program::Program;
use trial_core::{Error, Result};

/// Parses a TripleDatalog¬ program.
pub fn parse_program(input: &str) -> Result<Program> {
    let mut rules = Vec::new();
    let mut parser = P {
        chars: input.chars().collect(),
        pos: 0,
    };
    loop {
        parser.skip_ws();
        if parser.at_end() {
            break;
        }
        rules.push(parser.parse_rule()?);
    }
    if rules.is_empty() {
        return Err(Error::Parse {
            message: "program contains no rules".into(),
            offset: 0,
        });
    }
    let output = if rules.iter().any(|r| r.head.predicate == "Ans") {
        "Ans".to_owned()
    } else {
        rules[0].head.predicate.clone()
    };
    Program::new(rules, output)
}

struct P {
    chars: Vec<char>,
    pos: usize,
}

impl P {
    fn at_end(&self) -> bool {
        self.pos >= self.chars.len()
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn error(&self, message: impl Into<String>) -> Error {
        Error::Parse {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        loop {
            while matches!(self.peek(), Some(c) if c.is_whitespace()) {
                self.pos += 1;
            }
            if matches!(self.peek(), Some('%') | Some('#')) {
                while !matches!(self.peek(), None | Some('\n')) {
                    self.pos += 1;
                }
            } else {
                return;
            }
        }
    }

    fn eat(&mut self, expected: char) -> Result<()> {
        self.skip_ws();
        match self.peek() {
            Some(c) if c == expected => {
                self.pos += 1;
                Ok(())
            }
            other => Err(self.error(format!(
                "expected `{expected}`, found `{}`",
                other
                    .map(String::from)
                    .unwrap_or_else(|| "end of input".into())
            ))),
        }
    }

    fn try_eat(&mut self, expected: char) -> bool {
        self.skip_ws();
        if self.peek() == Some(expected) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn parse_ident(&mut self) -> Result<String> {
        self.skip_ws();
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_alphanumeric() || c == '_') {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.error("expected an identifier"));
        }
        Ok(self.chars[start..self.pos].iter().collect())
    }

    fn parse_term(&mut self) -> Result<DlTerm> {
        self.skip_ws();
        if self.peek() == Some('\'') {
            self.pos += 1;
            let start = self.pos;
            while !matches!(self.peek(), None | Some('\'')) {
                self.pos += 1;
            }
            if self.peek().is_none() {
                return Err(self.error("unterminated object constant"));
            }
            let name: String = self.chars[start..self.pos].iter().collect();
            self.pos += 1;
            Ok(DlTerm::Const(name))
        } else {
            Ok(DlTerm::Var(self.parse_ident()?))
        }
    }

    fn parse_atom(&mut self, predicate: String) -> Result<Atom> {
        self.eat('(')?;
        let mut args = Vec::new();
        if !self.try_eat(')') {
            loop {
                args.push(self.parse_term()?);
                if self.try_eat(')') {
                    break;
                }
                self.eat(',')?;
            }
        }
        if args.len() > 3 {
            return Err(self.error(format!(
                "predicate `{predicate}` has arity {}, but TripleDatalog predicates have arity at most 3",
                args.len()
            )));
        }
        Ok(Atom::new(predicate, args))
    }

    fn parse_rule(&mut self) -> Result<Rule> {
        let head_pred = self.parse_ident()?;
        let head = self.parse_atom(head_pred)?;
        self.skip_ws();
        // Accept ":-" or "<-".
        if self.try_eat(':') || self.try_eat('<') {
            self.eat('-')?;
        } else {
            // A fact: `P(a, b, c).`
            self.eat('.')?;
            return Ok(Rule::new(head, Vec::new()));
        }
        let mut body = Vec::new();
        loop {
            body.push(self.parse_literal()?);
            if self.try_eat(',') {
                continue;
            }
            self.eat('.')?;
            break;
        }
        Ok(Rule::new(head, body))
    }

    fn parse_literal(&mut self) -> Result<Literal> {
        self.skip_ws();
        // A literal may start with `not`, an identifier (predicate, sim, or a
        // variable of a comparison), or a constant (comparison).
        let checkpoint = self.pos;
        if self.peek() == Some('\'') {
            // Constant on the left of a comparison.
            let left = self.parse_term()?;
            return self.parse_cmp_rest(left);
        }
        let word = self.parse_ident()?;
        if word == "not" {
            let inner = self.parse_literal()?;
            return match inner {
                Literal::Atom { atom, negated } => Ok(Literal::Atom {
                    atom,
                    negated: !negated,
                }),
                Literal::Sim {
                    left,
                    right,
                    negated,
                } => Ok(Literal::Sim {
                    left,
                    right,
                    negated: !negated,
                }),
                Literal::Cmp {
                    left,
                    right,
                    negated,
                } => Ok(Literal::Cmp {
                    left,
                    right,
                    negated: !negated,
                }),
            };
        }
        self.skip_ws();
        if self.peek() == Some('(') {
            if word == "sim" {
                self.eat('(')?;
                let left = self.parse_term()?;
                self.eat(',')?;
                let right = self.parse_term()?;
                self.eat(')')?;
                return Ok(Literal::Sim {
                    left,
                    right,
                    negated: false,
                });
            }
            let atom = self.parse_atom(word)?;
            return Ok(Literal::Atom {
                atom,
                negated: false,
            });
        }
        // Otherwise it must be a comparison whose left side is the identifier
        // we just read (a variable).
        self.pos = checkpoint;
        let left = self.parse_term()?;
        self.parse_cmp_rest(left)
    }

    fn parse_cmp_rest(&mut self, left: DlTerm) -> Result<Literal> {
        self.skip_ws();
        let negated = match self.peek() {
            Some('=') => {
                self.pos += 1;
                false
            }
            Some('!') => {
                self.pos += 1;
                self.eat('=')?;
                true
            }
            _ => return Err(self.error("expected `=` or `!=` in comparison literal")),
        };
        let right = self.parse_term()?;
        Ok(Literal::Cmp {
            left,
            right,
            negated,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::DlTerm as T;

    #[test]
    fn parse_single_rule() {
        let p = parse_program("Ans(x, c, y) :- E(x, op, y), E(op, p, c), p = 'part_of'.").unwrap();
        assert_eq!(p.rules().len(), 1);
        assert_eq!(p.output(), "Ans");
        let rule = &p.rules()[0];
        assert_eq!(rule.head.predicate, "Ans");
        assert_eq!(rule.body.len(), 3);
        assert_eq!(rule.positive_atom_count(), 2);
    }

    #[test]
    fn parse_recursive_program_with_negation_and_sim() {
        let text = "
            % transitive reachability with label constraints
            Reach(x, y, z) :- E(x, y, z).
            Reach(x, y, z) :- Reach(x, y, w), E(w, u, z), not sim(x, z), y != 'loop'.
            Ans(x, y, z) :- Reach(x, y, z), not Bad(x, y, z).
            Bad(x, x, x) :- E(x, x, x).
        ";
        let p = parse_program(text).unwrap();
        assert_eq!(p.rules().len(), 4);
        assert_eq!(p.output(), "Ans");
        assert!(p.is_recursive());
        let recursive_rule = &p.rules()[1];
        assert!(recursive_rule
            .body
            .iter()
            .any(|l| matches!(l, Literal::Sim { negated: true, .. })));
        assert!(recursive_rule.body.iter().any(|l| matches!(
            l,
            Literal::Cmp {
                negated: true,
                right: T::Const(c),
                ..
            } if c == "loop"
        )));
    }

    #[test]
    fn parse_facts_and_arrow_variant() {
        let p = parse_program("P('a', 'b', 'c').\nQ(x, y, z) <- P(x, y, z).").unwrap();
        assert_eq!(p.rules().len(), 2);
        assert!(p.rules()[0].body.is_empty());
        assert_eq!(p.output(), "P");
    }

    #[test]
    fn display_roundtrip() {
        let text =
            "Ans(x, y, z) :- E(x, w, y), E(y, w, z), not F(x, y, z), sim(x, y), w != 'part_of'.";
        let p = parse_program(text).unwrap();
        let rendered = p.rules()[0].to_string();
        let p2 = parse_program(&rendered).unwrap();
        assert_eq!(p.rules(), p2.rules());
    }

    #[test]
    fn errors() {
        assert!(parse_program("").is_err());
        assert!(parse_program("Ans(x, y, z)").is_err()); // missing dot
        assert!(parse_program("Ans(x, y, z) :- E(x, y, z)").is_err()); // missing dot
        assert!(parse_program("Ans(w, x, y, z) :- E(x, y, z).").is_err()); // arity 4
        assert!(parse_program("Ans(x, y, z) :- E(x, y, z), x <> y.").is_err());
        assert!(parse_program("Ans(x, y, z) :- E(x, y, 'unterminated.").is_err());
        // Unsafe rules are rejected by Program::new.
        assert!(parse_program("Ans(x, y, z) :- E(x, y, y).").is_err());
    }

    #[test]
    fn comments_are_skipped() {
        let p = parse_program("# leading comment\nAns(x,y,z) :- E(x,y,z). % trailing\n% another\n")
            .unwrap();
        assert_eq!(p.rules().len(), 1);
    }
}
