//! Translation of TriAL / TriAL\* expressions into TripleDatalog¬ /
//! ReachTripleDatalog¬ programs — the "algebra ⊆ Datalog" halves of
//! Proposition 2 and Theorem 2.
//!
//! Every sub-expression receives a fresh predicate (structurally identical
//! sub-expressions share one), and a final `Ans` rule exposes the top-level
//! expression. The shapes emitted are exactly those accepted back by
//! [`crate::program_to_expr`], so the two translations compose.
//!
//! The universal relation `U` (and therefore complements) needs the active
//! domain; it is defined with auxiliary predicates over the extensional
//! relations passed in by the caller:
//!
//! ```text
//! D(x, x, x) :- E(x, y, z).     % one rule per relation and position
//! D(y, y, y) :- E(x, y, z).
//! D(z, z, z) :- E(x, y, z).
//! Pair(x, y, y) :- D(x, x, x), D(y, y, y).
//! U(x, y, z) :- Pair(x, y, y), D(z, z, z).
//! ```
//!
//! Data-value constants in `η` conditions have no TripleDatalog¬
//! counterpart (the language only has the binary relation `∼`), so
//! expressions using them are reported as unsupported — mirroring the
//! paper, whose Datalog representation likewise only has `∼`.

use crate::ast::{Atom, DlTerm, Literal, Rule};
use crate::program::Program;
use std::collections::HashMap;
use trial_core::condition::{DataOperand, ObjOperand};
use trial_core::{Conditions, Error, Expr, OutputSpec, Pos, Result, StarDirection};

/// Translates an expression into an equivalent Datalog program.
///
/// `edb_relations` must list the relations of the triplestore the program
/// will be evaluated on; they define the active domain used for `U` and
/// complements. (Passing `store.relation_names()` is always correct.)
pub fn expr_to_program(expr: &Expr, edb_relations: &[&str]) -> Result<Program> {
    expr.validate()?;
    let mut t = Translator {
        edb_relations,
        rules: Vec::new(),
        names: HashMap::new(),
        counter: 0,
        universe_pred: None,
    };
    let top = t.translate(expr)?;
    // Expose the result through the conventional `Ans` predicate.
    t.rules.push(Rule::new(
        Atom::new("Ans", vars(["x1", "x2", "x3"])),
        vec![Literal::pos(Atom::new(top, vars(["x1", "x2", "x3"])))],
    ));
    Program::new(t.rules, "Ans")
}

fn vars<const N: usize>(names: [&str; N]) -> Vec<DlTerm> {
    names.iter().map(|n| DlTerm::var(*n)).collect()
}

struct Translator<'a> {
    edb_relations: &'a [&'a str],
    rules: Vec<Rule>,
    names: HashMap<Expr, String>,
    counter: usize,
    universe_pred: Option<String>,
}

impl<'a> Translator<'a> {
    fn fresh(&mut self, hint: &str) -> String {
        let name = format!("{hint}{}", self.counter);
        self.counter += 1;
        name
    }

    /// Returns the predicate name holding the value of `expr`, emitting the
    /// defining rules on first use.
    fn translate(&mut self, expr: &Expr) -> Result<String> {
        if let Some(name) = self.names.get(expr) {
            return Ok(name.clone());
        }
        let name = match expr {
            Expr::Rel(rel) => rel.clone(),
            Expr::Empty => {
                let name = self.fresh("Empty");
                let edb = self.some_edb()?;
                // Safe but unsatisfiable: x != x.
                self.rules.push(Rule::new(
                    Atom::new(&name, vars(["x", "y", "z"])),
                    vec![
                        Literal::pos(Atom::new(edb, vars(["x", "y", "z"]))),
                        Literal::Cmp {
                            left: DlTerm::var("x"),
                            right: DlTerm::var("x"),
                            negated: true,
                        },
                    ],
                ));
                name
            }
            Expr::Universe => self.universe_predicate()?,
            Expr::Select { input, cond } => {
                let inner = self.translate(input)?;
                let name = self.fresh("Sel");
                let mut body = vec![Literal::pos(Atom::new(&inner, vars(["x1", "x2", "x3"])))];
                body.extend(condition_literals(cond)?);
                self.rules
                    .push(Rule::new(Atom::new(&name, vars(["x1", "x2", "x3"])), body));
                name
            }
            Expr::Union(a, b) => {
                let pa = self.translate(a)?;
                let pb = self.translate(b)?;
                let name = self.fresh("Union");
                for p in [pa, pb] {
                    self.rules.push(Rule::new(
                        Atom::new(&name, vars(["x1", "x2", "x3"])),
                        vec![Literal::pos(Atom::new(p, vars(["x1", "x2", "x3"])))],
                    ));
                }
                name
            }
            Expr::Diff(a, b) => {
                let pa = self.translate(a)?;
                let pb = self.translate(b)?;
                let name = self.fresh("Diff");
                self.rules.push(Rule::new(
                    Atom::new(&name, vars(["x1", "x2", "x3"])),
                    vec![
                        Literal::pos(Atom::new(pa, vars(["x1", "x2", "x3"]))),
                        Literal::neg(Atom::new(pb, vars(["x1", "x2", "x3"]))),
                    ],
                ));
                name
            }
            Expr::Intersect(a, b) => {
                let pa = self.translate(a)?;
                let pb = self.translate(b)?;
                let name = self.fresh("Inter");
                self.rules.push(Rule::new(
                    Atom::new(&name, vars(["x1", "x2", "x3"])),
                    vec![
                        Literal::pos(Atom::new(pa, vars(["x1", "x2", "x3"]))),
                        Literal::pos(Atom::new(pb, vars(["x1", "x2", "x3"]))),
                    ],
                ));
                name
            }
            Expr::Complement(inner) => {
                let pe = self.translate(inner)?;
                let u = self.universe_predicate()?;
                let name = self.fresh("Compl");
                self.rules.push(Rule::new(
                    Atom::new(&name, vars(["x1", "x2", "x3"])),
                    vec![
                        Literal::pos(Atom::new(u, vars(["x1", "x2", "x3"]))),
                        Literal::neg(Atom::new(pe, vars(["x1", "x2", "x3"]))),
                    ],
                ));
                name
            }
            Expr::Join {
                left,
                right,
                output,
                cond,
            } => {
                let pl = self.translate(left)?;
                let pr = self.translate(right)?;
                let name = self.fresh("Join");
                let mut body = vec![
                    Literal::pos(Atom::new(pl, vars(["x1", "x2", "x3"]))),
                    Literal::pos(Atom::new(pr, vars(["y1", "y2", "y3"]))),
                ];
                body.extend(condition_literals(cond)?);
                self.rules
                    .push(Rule::new(Atom::new(&name, head_args(output)), body));
                name
            }
            Expr::Star {
                input,
                output,
                cond,
                direction,
            } => {
                let pin = self.translate(input)?;
                let name = self.fresh("Star");
                // Base rule: Star(x1, x2, x3) :- In(x1, x2, x3).
                self.rules.push(Rule::new(
                    Atom::new(&name, vars(["x1", "x2", "x3"])),
                    vec![Literal::pos(Atom::new(&pin, vars(["x1", "x2", "x3"])))],
                ));
                // Step rule, with the accumulated predicate on the side the
                // closure folds from.
                let (left_atom, right_atom) = match direction {
                    StarDirection::Right => (
                        Atom::new(&name, vars(["x1", "x2", "x3"])),
                        Atom::new(&pin, vars(["y1", "y2", "y3"])),
                    ),
                    StarDirection::Left => (
                        Atom::new(&pin, vars(["x1", "x2", "x3"])),
                        Atom::new(&name, vars(["y1", "y2", "y3"])),
                    ),
                };
                let mut body = vec![Literal::pos(left_atom), Literal::pos(right_atom)];
                body.extend(condition_literals(cond)?);
                self.rules
                    .push(Rule::new(Atom::new(&name, head_args(output)), body));
                name
            }
        };
        self.names.insert(expr.clone(), name.clone());
        Ok(name)
    }

    fn some_edb(&self) -> Result<&'a str> {
        self.edb_relations.first().copied().ok_or_else(|| {
            Error::Unsupported(
                "translating EMPTY/U/complement requires at least one extensional relation".into(),
            )
        })
    }

    /// Emits (once) the predicates defining the universal relation and
    /// returns the name of the `U`-predicate.
    fn universe_predicate(&mut self) -> Result<String> {
        if let Some(name) = &self.universe_pred {
            return Ok(name.clone());
        }
        if self.edb_relations.is_empty() {
            return Err(Error::Unsupported(
                "translating U requires at least one extensional relation".into(),
            ));
        }
        let dom = self.fresh("Dom");
        for rel in self.edb_relations {
            for head_var in ["x", "y", "z"] {
                self.rules.push(Rule::new(
                    Atom::new(&dom, vars([head_var, head_var, head_var])),
                    vec![Literal::pos(Atom::new(*rel, vars(["x", "y", "z"])))],
                ));
            }
        }
        let pair = self.fresh("DomPair");
        self.rules.push(Rule::new(
            Atom::new(&pair, vars(["x", "y", "y"])),
            vec![
                Literal::pos(Atom::new(&dom, vars(["x", "x", "x"]))),
                Literal::pos(Atom::new(&dom, vars(["y", "y", "y"]))),
            ],
        ));
        let universe = self.fresh("Univ");
        self.rules.push(Rule::new(
            Atom::new(&universe, vars(["x", "y", "z"])),
            vec![
                Literal::pos(Atom::new(&pair, vars(["x", "y", "y"]))),
                Literal::pos(Atom::new(&dom, vars(["z", "z", "z"]))),
            ],
        ));
        self.universe_pred = Some(universe.clone());
        Ok(universe)
    }
}

/// The Datalog variable used for a join position.
fn pos_var(pos: Pos) -> DlTerm {
    let name = match pos {
        Pos::L1 => "x1",
        Pos::L2 => "x2",
        Pos::L3 => "x3",
        Pos::R1 => "y1",
        Pos::R2 => "y2",
        Pos::R3 => "y3",
    };
    DlTerm::var(name)
}

fn head_args(output: &OutputSpec) -> Vec<DlTerm> {
    output.iter().map(pos_var).collect()
}

/// Translates `(θ, η)` conditions into body literals.
fn condition_literals(cond: &Conditions) -> Result<Vec<Literal>> {
    let mut out = Vec::new();
    for atom in &cond.theta {
        let right = match &atom.rhs {
            ObjOperand::Pos(p) => pos_var(*p),
            ObjOperand::Const(name) => DlTerm::constant(name.clone()),
        };
        out.push(Literal::Cmp {
            left: pos_var(atom.lhs),
            right,
            negated: atom.cmp == trial_core::Cmp::Neq,
        });
    }
    for atom in &cond.eta {
        let right = match &atom.rhs {
            DataOperand::Pos(p) => pos_var(*p),
            DataOperand::Const(v) => {
                return Err(Error::Unsupported(format!(
                    "data-value constant `{v}` has no TripleDatalog¬ counterpart \
                     (the language only has the binary relation ∼)"
                )))
            }
        };
        out.push(Literal::Sim {
            left: pos_var(atom.lhs),
            right,
            negated: atom.cmp == trial_core::Cmp::Neq,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate_program;
    use crate::program::ProgramClass;
    use crate::to_algebra::program_to_expr;
    use trial_core::builder::{queries, ExprBuilderExt};
    use trial_core::{Triplestore, TriplestoreBuilder};
    use trial_eval::evaluate;

    fn figure1() -> Triplestore {
        let mut b = TriplestoreBuilder::new();
        for (s, p, o) in [
            ("St.Andrews", "BusOp1", "Edinburgh"),
            ("Edinburgh", "TrainOp1", "London"),
            ("London", "TrainOp2", "Brussels"),
            ("BusOp1", "part_of", "NatExpress"),
            ("TrainOp1", "part_of", "EastCoast"),
            ("TrainOp2", "part_of", "Eurostar"),
            ("EastCoast", "part_of", "NatExpress"),
        ] {
            b.add_triple("E", s, p, o);
        }
        b.finish()
    }

    fn relation_names(store: &Triplestore) -> Vec<&str> {
        store.relation_names().collect()
    }

    /// The algebra expression and its Datalog translation agree on `store`.
    fn assert_agrees(expr: &Expr, store: &Triplestore) {
        let rels = relation_names(store);
        let program = expr_to_program(expr, &rels).unwrap();
        let datalog = evaluate_program(&program, store)
            .unwrap()
            .output_triples()
            .unwrap();
        let algebra = evaluate(expr, store).unwrap().result;
        assert_eq!(datalog, algebra, "expr: {expr}\nprogram:\n{program}");
    }

    fn expression_zoo() -> Vec<Expr> {
        vec![
            Expr::rel("E"),
            Expr::Empty.union(Expr::rel("E")),
            queries::example2("E"),
            queries::example2_extended("E"),
            queries::reach_forward("E"),
            queries::reach_down("E"),
            queries::reach_same_label("E"),
            queries::same_company_reachability("E"),
            queries::at_least_four_objects(),
            queries::at_least_six_objects(),
            Expr::rel("E").complement(),
            Expr::rel("E").minus(queries::example2("E")),
            Expr::rel("E").intersect_via_join(Expr::rel("E")),
            Expr::Universe.minus(Expr::rel("E")),
            Expr::rel("E").select(
                Conditions::new()
                    .obj_eq_const(Pos::L2, "part_of")
                    .obj_neq(Pos::L1, Pos::L3),
            ),
            Expr::rel("E")
                .select(Conditions::new().data_eq(Pos::L1, Pos::L3))
                .reach_forward(),
        ]
    }

    #[test]
    fn zoo_agrees_with_algebra_semantics() {
        let store = figure1();
        for expr in expression_zoo() {
            assert_agrees(&expr, &store);
        }
    }

    #[test]
    fn emitted_programs_stay_in_the_paper_fragments() {
        let store = figure1();
        let rels = relation_names(&store);
        for expr in expression_zoo() {
            let program = expr_to_program(&expr, &rels).unwrap();
            let class = program.classify();
            if expr.is_recursive() {
                assert_eq!(class, ProgramClass::ReachTripleDatalog, "expr: {expr}");
            } else {
                assert_eq!(
                    class,
                    ProgramClass::NonRecursiveTripleDatalog,
                    "expr: {expr}"
                );
            }
        }
    }

    #[test]
    fn translation_roundtrips_through_the_algebra() {
        // expr → program → expr' need not be syntactically identical, but it
        // must be semantically equivalent.
        let store = figure1();
        let rels = relation_names(&store);
        for expr in expression_zoo() {
            let program = expr_to_program(&expr, &rels).unwrap();
            let back = program_to_expr(&program)
                .unwrap_or_else(|e| panic!("round trip failed for {expr}: {e}"));
            let original = evaluate(&expr, &store).unwrap().result;
            let roundtripped = evaluate(&back, &store).unwrap().result;
            assert_eq!(original, roundtripped, "expr: {expr}\nback: {back}");
        }
    }

    #[test]
    fn shared_subexpressions_share_predicates() {
        let store = figure1();
        let rels = relation_names(&store);
        let e = queries::example2("E");
        let expr = e.clone().union(e);
        let program = expr_to_program(&expr, &rels).unwrap();
        // One join predicate, one union predicate, one Ans rule:
        // the join sub-expression is emitted once even though it occurs twice.
        let join_rules = program
            .rules()
            .iter()
            .filter(|r| r.head.predicate.starts_with("Join"))
            .count();
        assert_eq!(join_rules, 1);
    }

    #[test]
    fn data_constants_are_unsupported() {
        let expr = Expr::rel("E")
            .select(Conditions::new().data_eq_const(Pos::L1, trial_core::Value::int(1)));
        assert!(matches!(
            expr_to_program(&expr, &["E"]),
            Err(Error::Unsupported(_))
        ));
    }

    #[test]
    fn universe_requires_an_edb_relation() {
        assert!(matches!(
            expr_to_program(&Expr::Universe, &[]),
            Err(Error::Unsupported(_))
        ));
        assert!(matches!(
            expr_to_program(&Expr::Empty, &[]),
            Err(Error::Unsupported(_))
        ));
    }

    #[test]
    fn left_star_uses_accumulator_on_the_right() {
        let store = figure1();
        let rels = relation_names(&store);
        let expr = queries::reach_down("E");
        let program = expr_to_program(&expr, &rels).unwrap();
        let step = program
            .rules()
            .iter()
            .find(|r| r.head.predicate.starts_with("Star") && r.body.len() > 1)
            .unwrap();
        // First body atom is the base relation, second is the star predicate.
        match (&step.body[0], &step.body[1]) {
            (Literal::Atom { atom: a, .. }, Literal::Atom { atom: b, .. }) => {
                assert_eq!(a.predicate, "E");
                assert!(b.predicate.starts_with("Star"));
            }
            other => panic!("unexpected body {other:?}"),
        }
    }
}
