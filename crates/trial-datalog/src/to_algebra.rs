//! Translation of TripleDatalog¬ / ReachTripleDatalog¬ programs into TriAL
//! and TriAL\* expressions — the "Datalog ⊆ algebra" halves of
//! Proposition 2 and Theorem 2.
//!
//! The translation follows the paper's proofs: every IDB predicate `S`
//! receives an expression `e_S`, built in dependency order. A rule with two
//! relational atoms becomes a triple join whose output specification is read
//! off the head-variable positions, whose `θ` collects repeated-variable and
//! constant constraints plus the rule's (in)equality literals, and whose `η`
//! collects the `sim` literals. Negated atoms become complements. A
//! reachability predicate (the two-rule template of ReachTripleDatalog¬)
//! becomes a right Kleene closure.
//!
//! The translation supports exactly the shape of programs produced by
//! [`crate::expr_to_program`] plus hand-written programs that obey the
//! paper's rule format with arity-3 predicates. Anything outside that
//! (facts, predicates of lower arity, constants in rule heads, `sim`
//! against constants) is reported as [`trial_core::Error::Unsupported`].

use crate::ast::{Atom, DlTerm, Literal, Rule};
use crate::program::{Program, ProgramClass};
use std::collections::{BTreeMap, HashMap};
use trial_core::{Conditions, Error, Expr, OutputSpec, Pos, Result, Side};

/// Translates a program into an equivalent TriAL / TriAL\* expression for
/// its output predicate.
pub fn program_to_expr(program: &Program) -> Result<Expr> {
    if program.classify() == ProgramClass::GeneralStratified {
        return Err(Error::Unsupported(
            "only TripleDatalog¬ and ReachTripleDatalog¬ programs can be translated to TriAL/TriAL*"
                .into(),
        ));
    }
    let translator = Translator { program };
    translator.translate()
}

struct Translator<'a> {
    program: &'a Program,
}

impl<'a> Translator<'a> {
    fn translate(&self) -> Result<Expr> {
        let mut exprs: HashMap<String, Expr> = HashMap::new();
        // Seed EDB predicates.
        for pred in self.program.edb_predicates() {
            exprs.insert(pred.to_owned(), Expr::rel(pred));
        }
        // Process IDB predicates in dependency order (repeatedly translate
        // every predicate whose dependencies are all available).
        let mut pending: Vec<&str> = self.program.idb_predicates().into_iter().collect();
        while !pending.is_empty() {
            let mut progressed = false;
            let mut still_pending = Vec::new();
            for pred in pending {
                let deps_ready = self
                    .program
                    .dependencies(pred)
                    .iter()
                    .all(|(d, _)| *d == pred || exprs.contains_key(*d));
                if deps_ready {
                    let expr = self.translate_predicate(pred, &exprs)?;
                    exprs.insert(pred.to_owned(), expr);
                    progressed = true;
                } else {
                    still_pending.push(pred);
                }
            }
            if !progressed {
                return Err(Error::Unsupported(
                    "cyclic dependencies outside the ReachTripleDatalog¬ template".into(),
                ));
            }
            pending = still_pending;
        }
        exprs
            .get(self.program.output())
            .cloned()
            .ok_or_else(|| Error::UnknownRelation(self.program.output().to_owned()))
    }

    fn translate_predicate(&self, pred: &str, exprs: &HashMap<String, Expr>) -> Result<Expr> {
        let rules: Vec<&Rule> = self
            .program
            .rules()
            .iter()
            .filter(|r| r.head.predicate == pred)
            .collect();
        if self.program.predicate_is_recursive(pred) {
            return self.translate_reach_predicate(pred, &rules, exprs);
        }
        let mut result: Option<Expr> = None;
        for rule in rules {
            let e = self.translate_rule(rule, exprs)?;
            result = Some(match result {
                None => e,
                Some(acc) => acc.union(e),
            });
        }
        result.ok_or_else(|| Error::UnknownRelation(pred.to_owned()))
    }

    /// Translates a reachability predicate (two-rule template) into a right
    /// Kleene closure, following the proof of Theorem 2.
    fn translate_reach_predicate(
        &self,
        pred: &str,
        rules: &[&Rule],
        exprs: &HashMap<String, Expr>,
    ) -> Result<Expr> {
        let (base, step) = match rules {
            [a, b] if a.body.len() == 1 => (a, b),
            [a, b] if b.body.len() == 1 => (b, a),
            _ => {
                return Err(Error::Unsupported(format!(
                    "recursive predicate `{pred}` is not in the two-rule ReachTripleDatalog¬ form"
                )))
            }
        };
        // Base rule must be S(x̄) ← R(x̄) with the head repeating the atom's
        // variables verbatim.
        let base_atom = match &base.body[0] {
            Literal::Atom {
                atom,
                negated: false,
            } => atom,
            _ => {
                return Err(Error::Unsupported(format!(
                    "base rule of `{pred}` must be a single positive atom"
                )))
            }
        };
        if base_atom.args != base.head.args
            || base_atom.args.iter().any(|t| t.as_var().is_none())
            || base_atom.variables().len() != 3
        {
            return Err(Error::Unsupported(format!(
                "base rule of `{pred}` must repeat the body atom's three distinct variables in its head"
            )));
        }
        let base_expr = exprs
            .get(&base_atom.predicate)
            .cloned()
            .ok_or_else(|| Error::UnknownRelation(base_atom.predicate.clone()))?;
        // Step rule: S(h̄) ← S(x̄1), R(x̄2), conditions — with S on the left
        // and R on the right of the iterated join.
        let atoms: Vec<&Atom> = step
            .body
            .iter()
            .filter_map(|l| match l {
                Literal::Atom {
                    atom,
                    negated: false,
                } => Some(atom),
                _ => None,
            })
            .collect();
        if atoms.len() != 2 {
            return Err(Error::Unsupported(format!(
                "step rule of `{pred}` must have exactly two positive atoms"
            )));
        }
        let (self_atom, other_atom) = if atoms[0].predicate == pred {
            (atoms[0], atoms[1])
        } else if atoms[1].predicate == pred {
            (atoms[1], atoms[0])
        } else {
            return Err(Error::Unsupported(format!(
                "step rule of `{pred}` must mention `{pred}` exactly once"
            )));
        };
        if other_atom.predicate != base_atom.predicate {
            return Err(Error::Unsupported(format!(
                "base and step rules of `{pred}` must use the same non-recursive predicate \
                 (found `{}` and `{}`)",
                base_atom.predicate, other_atom.predicate
            )));
        }
        let (output, cond) = build_join_shape(
            &step.head,
            self_atom,
            other_atom,
            step.body.iter().filter(|l| !l.is_positive_atom()),
        )?;
        Ok(base_expr.right_star(output, cond))
    }

    /// Translates one non-recursive rule into a join expression.
    fn translate_rule(&self, rule: &Rule, exprs: &HashMap<String, Expr>) -> Result<Expr> {
        let rel_atoms: Vec<(&Atom, bool)> = rule
            .body
            .iter()
            .filter_map(|l| match l {
                Literal::Atom { atom, negated } => Some((atom, *negated)),
                _ => None,
            })
            .collect();
        let (left, right) = match rel_atoms.as_slice() {
            [] => {
                return Err(Error::Unsupported(format!(
                    "rule `{rule}` has no relational atom (facts are not translatable)"
                )))
            }
            [only] => (*only, *only),
            [a, b] => (*a, *b),
            _ => {
                return Err(Error::Unsupported(format!(
                    "rule `{rule}` has more than two relational atoms"
                )))
            }
        };
        let expr_of = |(atom, negated): (&Atom, bool)| -> Result<Expr> {
            let base = exprs
                .get(&atom.predicate)
                .cloned()
                .ok_or_else(|| Error::UnknownRelation(atom.predicate.clone()))?;
            Ok(if negated { base.complement() } else { base })
        };
        let left_expr = expr_of(left)?;
        let right_expr = expr_of(right)?;
        let single_atom = rel_atoms.len() == 1;
        let (output, mut cond) = build_join_shape(
            &rule.head,
            left.0,
            right.0,
            rule.body
                .iter()
                .filter(|l| !matches!(l, Literal::Atom { .. })),
        )?;
        if single_atom {
            // The same atom plays both roles; force the two copies to agree.
            cond = cond
                .obj_eq(Pos::L1, Pos::R1)
                .obj_eq(Pos::L2, Pos::R2)
                .obj_eq(Pos::L3, Pos::R3);
        }
        Ok(left_expr.join(right_expr, output, cond))
    }
}

/// Derives the output specification and join conditions for a rule whose
/// positive atoms are `left` (positions 1–3) and `right` (positions 1'–3').
fn build_join_shape<'a>(
    head: &Atom,
    left: &Atom,
    right: &Atom,
    extra_literals: impl Iterator<Item = &'a Literal>,
) -> Result<(OutputSpec, Conditions)> {
    if left.arity() != 3 || right.arity() != 3 || head.arity() != 3 {
        return Err(Error::Unsupported(
            "the algebra translation requires arity-3 predicates throughout".into(),
        ));
    }
    // Map each variable to the positions where it occurs.
    let mut var_positions: BTreeMap<&str, Vec<Pos>> = BTreeMap::new();
    let mut cond = Conditions::new();
    for (side, atom) in [(Side::Left, left), (Side::Right, right)] {
        for (i, term) in atom.args.iter().enumerate() {
            let pos = Pos::new(side, i as u8 + 1);
            match term {
                DlTerm::Var(v) => var_positions.entry(v).or_default().push(pos),
                DlTerm::Const(name) => {
                    cond = cond.obj_eq_const(pos, name.clone());
                }
            }
        }
    }
    // Repeated variables induce equalities anchored at the first occurrence.
    for positions in var_positions.values() {
        for later in &positions[1..] {
            cond = cond.obj_eq(positions[0], *later);
        }
    }
    // Explicit condition literals.
    let pos_of = |term: &DlTerm| -> Option<Pos> {
        term.as_var()
            .and_then(|v| var_positions.get(v).map(|ps| ps[0]))
    };
    for literal in extra_literals {
        match literal {
            Literal::Cmp {
                left,
                right,
                negated,
            } => {
                cond = match (pos_of(left), pos_of(right), left, right) {
                    (Some(a), Some(b), _, _) => {
                        if *negated {
                            cond.obj_neq(a, b)
                        } else {
                            cond.obj_eq(a, b)
                        }
                    }
                    (Some(a), None, _, DlTerm::Const(c)) => {
                        if *negated {
                            cond.obj_neq_const(a, c.clone())
                        } else {
                            cond.obj_eq_const(a, c.clone())
                        }
                    }
                    (None, Some(b), DlTerm::Const(c), _) => {
                        if *negated {
                            cond.obj_neq_const(b, c.clone())
                        } else {
                            cond.obj_eq_const(b, c.clone())
                        }
                    }
                    _ => {
                        return Err(Error::Unsupported(format!(
                            "comparison `{literal}` does not reference a bound variable"
                        )))
                    }
                };
            }
            Literal::Sim {
                left,
                right,
                negated,
            } => {
                let (Some(a), Some(b)) = (pos_of(left), pos_of(right)) else {
                    return Err(Error::Unsupported(format!(
                        "`{literal}` must relate two bound variables"
                    )));
                };
                cond = if *negated {
                    cond.data_neq(a, b)
                } else {
                    cond.data_eq(a, b)
                };
            }
            Literal::Atom { .. } => {
                // Negated atoms are handled by the caller (complement);
                // positive atoms were consumed as the join arguments.
            }
        }
    }
    // Output specification from the head.
    let mut out = [Pos::L1; 3];
    for (i, term) in head.args.iter().enumerate() {
        match term {
            DlTerm::Var(v) => {
                out[i] = var_positions
                    .get(v.as_str())
                    .map(|ps| ps[0])
                    .ok_or_else(|| {
                        Error::Unsupported(format!("head variable `{v}` is not bound in the body"))
                    })?;
            }
            DlTerm::Const(c) => {
                return Err(Error::Unsupported(format!(
                    "constant `{c}` in a rule head is not supported by the algebra translation"
                )))
            }
        }
    }
    Ok((OutputSpec(out), cond))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate_program;
    use crate::parser::parse_program;
    use trial_core::builder::queries;
    use trial_core::{Triplestore, TriplestoreBuilder};
    use trial_eval::evaluate;

    fn figure1() -> Triplestore {
        let mut b = TriplestoreBuilder::new();
        for (s, p, o) in [
            ("St.Andrews", "BusOp1", "Edinburgh"),
            ("Edinburgh", "TrainOp1", "London"),
            ("London", "TrainOp2", "Brussels"),
            ("BusOp1", "part_of", "NatExpress"),
            ("TrainOp1", "part_of", "EastCoast"),
            ("TrainOp2", "part_of", "Eurostar"),
            ("EastCoast", "part_of", "NatExpress"),
        ] {
            b.add_triple("E", s, p, o);
        }
        b.finish()
    }

    /// Checks that evaluating the program directly and evaluating its
    /// translated algebra expression produce the same triples.
    fn assert_translation_agrees(text: &str, store: &Triplestore) {
        let program = parse_program(text).unwrap();
        let expr = program_to_expr(&program).unwrap();
        let datalog = evaluate_program(&program, store)
            .unwrap()
            .output_triples()
            .unwrap();
        let algebra = evaluate(&expr, store).unwrap().result;
        assert_eq!(datalog, algebra, "program:\n{text}\nexpr: {expr}");
    }

    #[test]
    fn join_rule_translates_to_example2() {
        let store = figure1();
        assert_translation_agrees(
            "Ans(x, c, y) :- E(x, op, y), E(op, p, c), p = 'part_of'.",
            &store,
        );
    }

    #[test]
    fn single_atom_rules_and_unions() {
        let store = figure1();
        assert_translation_agrees(
            "Ans(x, y, z) :- E(x, y, z), y = 'part_of'.
             Ans(z, y, x) :- E(x, y, z), x != z.",
            &store,
        );
    }

    #[test]
    fn negation_translates_to_complement() {
        let store = figure1();
        assert_translation_agrees(
            "Part(x, y, z) :- E(x, y, z), y = 'part_of'.
             Ans(x, y, z) :- E(x, y, z), not Part(x, y, z).",
            &store,
        );
    }

    #[test]
    fn sim_literals_translate_to_data_conditions() {
        let mut b = TriplestoreBuilder::new();
        b.add_triple("E", "a", "p", "b");
        b.add_triple("E", "b", "p", "c");
        b.object_with_value("a", trial_core::Value::int(1));
        b.object_with_value("c", trial_core::Value::int(1));
        let store = b.finish();
        assert_translation_agrees("Ans(x, y, z) :- E(x, y, w), E(w, u, z), sim(x, z).", &store);
        assert_translation_agrees(
            "Ans(x, y, z) :- E(x, y, w), E(w, u, z), not sim(x, z).",
            &store,
        );
    }

    #[test]
    fn reach_predicate_translates_to_star() {
        let store = figure1();
        let program = parse_program(
            "Reach(x, y, z) :- E(x, y, z).
             Reach(x, y, z) :- Reach(x, y, w), E(w, u, z).
             Ans(x, y, z) :- Reach(x, y, z).",
        )
        .unwrap();
        let expr = program_to_expr(&program).unwrap();
        assert!(expr.is_recursive());
        let datalog = evaluate_program(&program, &store)
            .unwrap()
            .output_triples()
            .unwrap();
        let algebra = evaluate(&expr, &store).unwrap().result;
        let reach = evaluate(&queries::reach_forward("E"), &store)
            .unwrap()
            .result;
        assert_eq!(datalog, algebra);
        assert_eq!(algebra, reach);
    }

    #[test]
    fn labelled_reach_translates_to_same_label_star() {
        let store = figure1();
        assert_translation_agrees(
            "Reach(x, y, z) :- E(x, y, z).
             Reach(x, y, z) :- Reach(x, y, w), E(w, u, z), y = u.
             Ans(x, y, z) :- Reach(x, y, z).",
            &store,
        );
    }

    #[test]
    fn repeated_variables_become_equalities() {
        let store = figure1();
        assert_translation_agrees("Ans(x, x, z) :- E(x, y, z), E(z, y, x).", &store);
    }

    #[test]
    fn unsupported_shapes_are_reported() {
        // Facts.
        let p = parse_program("Ans('a', 'b', 'c').").unwrap();
        assert!(matches!(program_to_expr(&p), Err(Error::Unsupported(_))));
        // Lower arity.
        let p = parse_program("Ans(x, z) :- E(x, y, z).").unwrap();
        assert!(matches!(program_to_expr(&p), Err(Error::Unsupported(_))));
        // Constant in the head.
        let p = parse_program("Ans(x, 'k', z) :- E(x, y, z).").unwrap();
        assert!(matches!(program_to_expr(&p), Err(Error::Unsupported(_))));
        // Three atoms → outside TripleDatalog¬ (classified general).
        let p = parse_program("Ans(x, y, z) :- E(x, y, w), E(w, y, v), E(v, y, z).").unwrap();
        assert!(matches!(program_to_expr(&p), Err(Error::Unsupported(_))));
        // sim against a constant.
        let p = parse_program("Ans(x, y, z) :- E(x, y, z), sim(x, 'Edinburgh').").unwrap();
        assert!(matches!(program_to_expr(&p), Err(Error::Unsupported(_))));
    }

    #[test]
    fn nested_reach_predicates_translate() {
        // Two stacked reachability predicates — the shape Theorem 2's
        // translation produces for nested stars (query Q).
        let store = figure1();
        assert_translation_agrees(
            "Lift(x, c, y) :- E(x, c, y).
             Lift(x, c, y) :- Lift(x, w, y), E(w, u, c), u = 'part_of'.
             Same(x, c, y) :- Lift(x, c, y).
             Same(x, c, y) :- Same(x, c, w), Lift(w, c2, y), c = c2.
             Ans(x, c, y) :- Same(x, c, y).",
            &store,
        );
    }
}
