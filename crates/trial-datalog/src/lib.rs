//! # trial-datalog
//!
//! The declarative companion languages of Section 4 of *"TriAL for RDF"*:
//! **TripleDatalog¬** (capturing TriAL, Proposition 2) and
//! **ReachTripleDatalog¬** (capturing TriAL\*, Theorem 2).
//!
//! The crate provides:
//!
//! * a Datalog AST and parser for rules over ternary predicates, the data
//!   equivalence relation `sim(x, y)` (written `∼` in the paper), equality
//!   and inequality literals, constants, and negation ([`ast`], [`parser`]);
//! * program analysis: dependency graph, stratification, and syntactic
//!   classification into the paper's fragments ([`program`]);
//! * a stratified, semi-naive evaluator over triplestores ([`eval`]);
//! * the two capture translations: Datalog → algebra ([`to_algebra`],
//!   Proposition 2 / Theorem 2) and algebra → Datalog ([`from_algebra`]).
//!
//! ```
//! use trial_core::TriplestoreBuilder;
//! use trial_datalog::{parse_program, eval::evaluate_program};
//!
//! let mut b = TriplestoreBuilder::new();
//! b.add_triple("E", "Edinburgh", "TrainOp1", "London");
//! b.add_triple("E", "TrainOp1", "part_of", "EastCoast");
//! let store = b.finish();
//!
//! // Example 2 of the paper as a Datalog rule.
//! let program = parse_program(
//!     "Ans(x, c, y) :- E(x, op, y), E(op, p, c), p = 'part_of'.",
//! ).unwrap();
//! let result = evaluate_program(&program, &store).unwrap();
//! let triples = result.output_triples().unwrap();
//! assert_eq!(triples.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod eval;
pub mod from_algebra;
pub mod parser;
pub mod program;
pub mod to_algebra;

pub use ast::{Atom, DlTerm, Literal, Rule};
pub use eval::{evaluate_program, evaluate_program_planned, explain_program, ProgramResult};
pub use from_algebra::expr_to_program;
pub use parser::parse_program;
pub use program::{Program, ProgramClass};
pub use to_algebra::program_to_expr;
