//! Experiments e11–e13: the logic-side comparisons of Section 6.1
//! (Theorems 4–6 via explicit translations), register automata
//! (Proposition 6) and native nSPARQL axis navigation (Theorem 1).

use crate::Report;
use std::fmt::Write as _;
use trial_core::builder::queries;
use trial_core::fragment;
use trial_core::{Conditions, Expr, Pos, TriplestoreBuilder};
use trial_eval::{Engine, SmartEngine};
use trial_graph::nsparql::{display_pairs, evaluate_nsparql, sample_expressions};
use trial_graph::proposition1_documents;
use trial_graph::register::{distinct_values_expression, evaluate_rem, Cond, Rem};
use trial_graph::GraphDbBuilder;
use trial_logic::structures::{
    at_least_k_objects_sentence, full_store, structure_a, structure_b, theorem4_fo4_sentence,
};
use trial_logic::{answers3, evaluate_closed, fo3_to_trial, trial_to_fo, Formula};

/// Theorems 4–6, checked through the explicit translations: FO³ formulas
/// evaluate identically to their TriAL⁼ translations, TriAL expressions
/// evaluate identically to their FO⁶ translations (with the variable budget
/// the theorem promises), and the proof's separating structures behave as
/// predicted — including the FO⁴ sentence that distinguishes structures A
/// and B on which all TriAL queries agree.
pub fn e11_logic_translations() -> Report {
    let mut body = String::new();
    let engine = SmartEngine::new();

    // --- FO³ → TriAL (Theorem 4 part 2 / Theorem 5) --------------------
    let store = trial_workloads::transport::figure1_store();
    let vars = ["x", "y", "z"];
    let fo3_queries: Vec<(&str, Formula)> = vec![
        ("E(x,y,z)", Formula::rel_vars("E", "x", "y", "z")),
        (
            "∃y E(x,y,z)",
            Formula::exists("y", Formula::rel_vars("E", "x", "y", "z")),
        ),
        (
            "∃y (E(x,y,z) ∧ ∃x E(y,x,z))",
            Formula::exists(
                "y",
                Formula::rel_vars("E", "x", "y", "z")
                    .and(Formula::exists("x", Formula::rel_vars("E", "y", "x", "z"))),
            ),
        ),
        (
            "E(x,y,z) ∧ ¬ x=z",
            Formula::rel_vars("E", "x", "y", "z").and(Formula::eq_vars("x", "z").not()),
        ),
    ];
    let _ = writeln!(body, "### FO³ → TriAL (Theorem 4.2 / Theorem 5)\n");
    let _ = writeln!(
        body,
        "| formula | fragment of translation | answers agree |"
    );
    let _ = writeln!(body, "|---|---|---|");
    for (name, formula) in &fo3_queries {
        let expr = fo3_to_trial(formula, vars).expect("FO3 translation");
        let algebra = engine.run(&expr, &store).expect("algebra evaluation");
        let logic = answers3(&store, formula, vars).expect("logic evaluation");
        let agree = algebra.set_eq(&logic);
        let _ = writeln!(
            body,
            "| {name} | {} | agree={agree} |",
            fragment::classify(&expr)
        );
    }

    // --- TriAL → FO⁶ (Theorem 4 part 1) ---------------------------------
    let mini = {
        let mut b = TriplestoreBuilder::new();
        for (s, p, o) in [
            ("StAndrews", "BusOp1", "Edinburgh"),
            ("Edinburgh", "TrainOp1", "London"),
            ("BusOp1", "part_of", "NatExpress"),
            ("TrainOp1", "part_of", "EastCoast"),
        ] {
            b.add_triple("E", s, p, o);
        }
        b.finish()
    };
    let trial_queries: Vec<(&str, Expr)> = vec![
        ("Example 2", queries::example2("E")),
        (
            "σ_{2='part_of'}(E) − E ✶ E",
            Expr::rel("E")
                .select(Conditions::new().obj_eq_const(Pos::L2, "part_of"))
                .minus(queries::example2("E")),
        ),
        ("≥4 distinct objects", queries::at_least_four_objects()),
    ];
    let _ = writeln!(body, "\n### TriAL → FO (Theorem 4.1)\n");
    let _ = writeln!(
        body,
        "| expression | variables used | ≤ 6 | answers agree |"
    );
    let _ = writeln!(body, "|---|---|---|---|");
    for (name, expr) in &trial_queries {
        let report = trial_to_fo(expr).expect("translation");
        let [x, y, z] = &report.answer_vars;
        let logic = answers3(&mini, &report.formula, [x, y, z]).expect("logic evaluation");
        let algebra = engine.run(expr, &mini).expect("algebra evaluation");
        let agree = logic.set_eq(&algebra);
        let _ = writeln!(
            body,
            "| {name} | {} | {} | agree={agree} |",
            report.width,
            report.width <= 6
        );
    }

    // --- Separating sentences on the full stores T_k ---------------------
    let _ = writeln!(
        body,
        "\n### \"At least k objects\" on the full stores T_n\n"
    );
    let _ = writeln!(
        body,
        "| structure | FO⁴ sentence | FO⁶ sentence | TriAL ≥4 | TriAL ≥6 |"
    );
    let _ = writeln!(body, "|---|---|---|---|---|");
    let s4 = at_least_k_objects_sentence(4);
    let s6 = at_least_k_objects_sentence(6);
    let q4 = queries::at_least_four_objects();
    let q6 = queries::at_least_six_objects();
    for n in [3usize, 4, 5, 6] {
        let t = full_store(n);
        let fo4 = evaluate_closed(&t, &s4).expect("FO evaluation");
        let fo6 = evaluate_closed(&t, &s6).expect("FO evaluation");
        let a4 = !engine.run(&q4, &t).expect("algebra").is_empty();
        let a6 = !engine.run(&q6, &t).expect("algebra").is_empty();
        let _ = writeln!(body, "| T{n} | {fo4} | {fo6} | {a4} | {a6} |");
    }

    // --- Structures A and B (Theorem 4 part 3) ---------------------------
    let a = structure_a();
    let b = structure_b();
    let phi = theorem4_fo4_sentence();
    let phi_a = evaluate_closed(&a, &phi).expect("FO evaluation on A");
    let phi_b = evaluate_closed(&b, &phi).expect("FO evaluation on B");
    let _ = writeln!(body, "\n### Structures A and B (Theorem 4.3)\n");
    let _ = writeln!(body, "| check | value |");
    let _ = writeln!(body, "|---|---|");
    let _ = writeln!(
        body,
        "| objects in A / B | {} / {} |",
        a.object_count(),
        b.object_count()
    );
    let _ = writeln!(
        body,
        "| triples in A / B | {} / {} |",
        a.triple_count(),
        b.triple_count()
    );
    let _ = writeln!(body, "| FO⁴ sentence φ on A | {phi_a} |");
    let _ = writeln!(body, "| FO⁴ sentence φ on B | {phi_b} |");
    // A panel of TriAL queries that (per the theorem) cannot distinguish A
    // from B. The ≥4/≥6-object U-joins are deliberately omitted here: on a
    // 24-object store the universal relation has 24³ triples and the
    // inequality-only join degenerates to a ~2·10⁸-pair nested loop, which
    // the paper's own Theorem 3 bound predicts — the same queries are
    // exercised on the small full stores above instead.
    for (name, q) in [
        ("Example 2 join non-empty", &queries::example2("E")),
        ("Reach→ non-empty", &queries::reach_forward("E")),
        (
            "Same-label reach non-empty",
            &queries::reach_same_label("E"),
        ),
        (
            "Query Q non-empty",
            &queries::same_company_reachability("E"),
        ),
    ] {
        let on_a = !engine.run(q, &a).expect("algebra").is_empty();
        let on_b = !engine.run(q, &b).expect("algebra").is_empty();
        let _ = writeln!(body, "| {name} on A / B | {on_a} / {on_b} |");
    }
    let _ = writeln!(
        body,
        "\nExpected: the FO⁴ sentence distinguishes A from B while the sampled TriAL queries \
         (and, by the theorem, every TriAL query) agree on them — so FO⁴ ⊄ TriAL, completing \
         the incomparability of Theorem 4."
    );

    Report {
        id: "e11",
        title: "Finite-variable logic translations and separations (Theorems 4–6)",
        body,
    }
}

/// Proposition 6: register automata (via regular expressions with memory)
/// and TriAL\* are incomparable.
pub fn e12_register_automata() -> Report {
    let mut body = String::new();

    // e_n on chains with distinct vs. constant data values.
    let chain = |n: usize, distinct: bool| {
        let mut b = GraphDbBuilder::new();
        for i in 0..n {
            let value: i64 = if distinct { i as i64 } else { 7 };
            b.node_with_value(format!("n{i}"), value);
        }
        for i in 0..n.saturating_sub(1) {
            b.edge(format!("n{i}"), "a", format!("n{}", i + 1));
        }
        b.finish()
    };
    let _ = writeln!(
        body,
        "### The expressions e_n (≥ n distinct data values on a path)\n"
    );
    let _ = writeln!(body, "| n | non-empty on distinct-value chain (10 nodes) | non-empty on constant chain (10 nodes) |");
    let _ = writeln!(body, "|---|---|---|");
    for n in [3usize, 5, 7] {
        let e = distinct_values_expression("a", n);
        let on_distinct = !evaluate_rem(&chain(10, true), &e).is_empty();
        let on_constant = !evaluate_rem(&chain(10, false), &e).is_empty();
        let _ = writeln!(body, "| {n} | {on_distinct} | {on_constant} |");
    }
    let _ = writeln!(
        body,
        "\ne_7 asks for seven pairwise-distinct data values along a path — a property outside \
         L⁶∞ω and hence outside TriAL\\*, so register automata ⊄ TriAL\\*."
    );

    // Monotonicity: adding an edge can only grow REM answers, but the TriAL
    // complement query loses the "a-labelled non-edge" (v, a, v') — the
    // Proposition 6 / Theorem 8 argument.
    let build_graph = |with_extra_edge: bool| {
        let mut b = GraphDbBuilder::new();
        b.node_with_value("u", 3i64);
        b.node_with_value("u'", 4i64);
        b.node_with_value("v", 1i64);
        b.node_with_value("v'", 2i64);
        b.edge("u", "a", "u'");
        b.edge("v", "b", "v'");
        if with_extra_edge {
            b.edge("v", "a", "v'");
        }
        b.finish()
    };
    let g_small = build_graph(false);
    let g_large = build_graph(true);

    let rem_queries = [
        ("b", Rem::label("b")),
        ("(a+b)*", Rem::label("a").or(Rem::label("b")).star()),
        (
            "↓x1 b[x1≠]",
            Rem::Down(vec![0], Box::new(Rem::label_if("b", Cond::NeqReg(0)))),
        ),
    ];
    let _ = writeln!(
        body,
        "\n### Monotonicity (G ⊂ G′ = G + the a-edge (v, a, v′))\n"
    );
    let _ = writeln!(
        body,
        "| query | answers on G | answers on G′ | preserved (monotone) |"
    );
    let _ = writeln!(body, "|---|---|---|---|");
    let names =
        |g: &trial_graph::GraphDb,
         pairs: &std::collections::HashSet<(trial_graph::NodeId, trial_graph::NodeId)>| {
            pairs
                .iter()
                .map(|(a, b)| (g.node_name(*a).to_string(), g.node_name(*b).to_string()))
                .collect::<std::collections::BTreeSet<_>>()
        };
    for (name, q) in &rem_queries {
        let small = names(&g_small, &evaluate_rem(&g_small, q));
        let large = names(&g_large, &evaluate_rem(&g_large, q));
        let _ = writeln!(
            body,
            "| REM {name} | {} | {} | {} |",
            small.len(),
            large.len(),
            small.is_subset(&large)
        );
    }
    // The TriAL query (σ_{2=a} E)ᶜ loses the triple (v, a, v') when the edge
    // is added — it is not monotone, hence not a register-automaton query.
    let engine = SmartEngine::new();
    let not_a = Expr::rel("E")
        .select(Conditions::new().obj_eq_const(Pos::L2, "a"))
        .complement();
    let ts_small = trial_graph::graph_to_triplestore(&g_small);
    let ts_large = trial_graph::graph_to_triplestore(&g_large);
    let witness_small = ts_small
        .triple_by_names("v", "a", "v'")
        .map(|t| engine.run(&not_a, &ts_small).expect("algebra").contains(&t))
        .unwrap_or(false);
    let witness_large = ts_large
        .triple_by_names("v", "a", "v'")
        .map(|t| engine.run(&not_a, &ts_large).expect("algebra").contains(&t))
        .unwrap_or(false);
    let _ = writeln!(
        body,
        "| TriAL (σ_2='a' E)ᶜ contains (v,a,v') | {witness_small} | {witness_large} | {} |",
        !witness_small || witness_large
    );
    let _ = writeln!(
        body,
        "\nExpected: every register-automaton query is monotone, while the TriAL complement \
         query loses the answer (v, a, v') when the edge is added — so TriAL\\* ⊄ register \
         automata, completing the incomparability of Proposition 6."
    );

    Report {
        id: "e12",
        title: "Register automata / regular expressions with memory (Proposition 6)",
        body,
    }
}

/// Theorem 1, natively: nSPARQL axis navigation evaluated directly over the
/// triples cannot distinguish the Proposition 1 documents, while the TriAL\*
/// query `Q` does.
pub fn e13_nsparql_axes() -> Report {
    let mut body = String::new();
    let (d1, d2) = proposition1_documents();
    let _ = writeln!(
        body,
        "| nSPARQL expression | |answers on D1| | |answers on D2| | identical |"
    );
    let _ = writeln!(body, "|---|---|---|---|");
    for (name, expr) in sample_expressions() {
        let on_d1: std::collections::BTreeSet<String> =
            display_pairs(&d1, &evaluate_nsparql(&d1, "E", &expr))
                .into_iter()
                .collect();
        let on_d2: std::collections::BTreeSet<String> =
            display_pairs(&d2, &evaluate_nsparql(&d2, "E", &expr))
                .into_iter()
                .collect();
        let _ = writeln!(
            body,
            "| {name} | {} | {} | {} |",
            on_d1.len(),
            on_d2.len(),
            on_d1 == on_d2
        );
    }
    let engine = SmartEngine::new();
    let q = queries::same_company_reachability("E");
    let q1 = engine.run(&q, &d1).expect("algebra");
    let q2 = engine.run(&q, &d2).expect("algebra");
    let _ = writeln!(
        body,
        "\nTriAL\\* query Q: {} answers on D1, {} on D2, identical = {} — Q separates the \
         documents, so it is not expressible through the axis semantics (Theorem 1).",
        q1.len(),
        q2.len(),
        q1.set_eq(&q2)
    );
    Report {
        id: "e13",
        title: "Native nSPARQL axis navigation cannot express Q (Theorem 1)",
        body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e11_reports_agreement_everywhere() {
        let report = e11_logic_translations();
        assert_eq!(report.id, "e11");
        // Every translation-agreement cell must be true.
        assert!(
            !report.body.contains("agree=false"),
            "an agreement cell was false:\n{}",
            report.body
        );
        assert!(report.body.contains("agree=true"));
        assert!(report.body.contains("| FO⁴ sentence φ on A | true |"));
        assert!(report.body.contains("| FO⁴ sentence φ on B | false |"));
    }

    #[test]
    fn e12_shows_monotone_rems_and_non_monotone_trial() {
        let report = e12_register_automata();
        assert!(report.body.contains("| 7 | true | false |"));
        assert!(report
            .body
            .contains("contains (v,a,v') | true | false | false |"));
    }

    #[test]
    fn e13_axes_agree_but_q_differs() {
        let report = e13_nsparql_axes();
        assert!(!report.body.contains("| false |\n"));
        assert!(report.body.contains("identical = false"));
    }
}
