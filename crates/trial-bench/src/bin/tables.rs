//! Prints the experiment tables recorded in EXPERIMENTS.md.
//!
//! Usage:
//!
//! ```text
//! cargo run -p trial-bench --bin tables --release -- all
//! cargo run -p trial-bench --bin tables --release -- e3 e5
//! ```

use trial_bench::{run_experiment, ALL_EXPERIMENTS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let ids: Vec<String> = if args.is_empty() || args.iter().any(|a| a == "all") {
        ALL_EXPERIMENTS.iter().map(|s| s.to_string()).collect()
    } else {
        args
    };
    for id in ids {
        match run_experiment(&id) {
            Some(report) => println!("{report}"),
            None => {
                eprintln!(
                    "unknown experiment `{id}` (known: {})",
                    ALL_EXPERIMENTS.join(", ")
                );
                std::process::exit(1);
            }
        }
    }
}
