//! # trial-bench
//!
//! The experiment harness reproducing the checkable claims of
//! *"TriAL for RDF"* (PODS 2013). The paper is a theory paper — its
//! "evaluation" consists of worked examples, inexpressibility separations and
//! complexity theorems — so each experiment here regenerates one of those
//! claims as a table: either an exact answer-set check or a measured scaling
//! curve whose *shape* (growth exponent, which engine wins) is the paper's
//! prediction.
//!
//! Run `cargo run -p trial-bench --bin tables --release -- all` to print
//! every table (this is what EXPERIMENTS.md records), or pass an experiment
//! id (`e1` … `e13`). Criterion micro-benchmarks for the same workloads live
//! in `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod logic_experiments;

pub use logic_experiments::{e11_logic_translations, e12_register_automata, e13_nsparql_axes};

use std::fmt::Write as _;
use std::time::Instant;
use trial_core::builder::queries;
use trial_core::fragment;
use trial_core::{Conditions, Expr, Pos, Triplestore};
use trial_eval::{Engine, EvalOptions, NaiveEngine, SmartEngine};
use trial_graph::gxpath::{evaluate_path, NodeExpr, PathExpr};
use trial_graph::nre::{evaluate_nre, Nre};
use trial_graph::rpq::evaluate_rpq;
use trial_graph::sigma::{sigma_encode, SIGMA_EDGE, SIGMA_NEXT, SIGMA_NODE};
use trial_graph::{graph_to_triplestore, nre_to_trial, path_to_trial, regex_to_trial, Regex};
use trial_workloads::{
    chain_store, figure1_store, random_graph, random_store, transport_network, RandomStoreConfig,
    TransportConfig,
};

/// A rendered experiment: an id, a title and a preformatted table.
#[derive(Debug, Clone)]
pub struct Report {
    /// Experiment id, e.g. `e3`.
    pub id: &'static str,
    /// One-line title.
    pub title: &'static str,
    /// The preformatted table / findings.
    pub body: String,
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "## {} — {}\n", self.id.to_uppercase(), self.title)?;
        writeln!(f, "{}", self.body)
    }
}

fn ms(start: Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1e3
}

/// All experiment ids in order.
pub const ALL_EXPERIMENTS: [&str; 13] = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13",
];

/// Runs one experiment by id.
pub fn run_experiment(id: &str) -> Option<Report> {
    match id {
        "e1" => Some(e1_sigma_inexpressibility()),
        "e2" => Some(e2_worked_examples()),
        "e3" => Some(e3_theorem3_scaling()),
        "e4" => Some(e4_trial_eq_scaling()),
        "e5" => Some(e5_reachta_scaling()),
        "e6" => Some(e6_data_complexity()),
        "e7" => Some(e7_expressiveness_separations()),
        "e8" => Some(e8_graph_language_translations()),
        "e9" => Some(e9_use_cases()),
        "e10" => Some(e10_recursion_ablation()),
        "e11" => Some(e11_logic_translations()),
        "e12" => Some(e12_register_automata()),
        "e13" => Some(e13_nsparql_axes()),
        _ => None,
    }
}

/// Proposition 1 / Theorem 1: the query `Q` distinguishes two RDF documents
/// whose σ-encodings coincide, hence no NRE over σ(·) (and no nSPARQL
/// navigation) expresses `Q`.
pub fn e1_sigma_inexpressibility() -> Report {
    let shared = [
        ("StAndrews", "BusOp1", "Edinburgh"),
        ("Edinburgh", "TrainOp3", "London"),
        ("Edinburgh", "TrainOp1", "Manchester"),
        ("Newcastle", "TrainOp1", "London"),
        ("London", "TrainOp2", "Brussels"),
        ("BusOp1", "part_of", "NatExpress"),
        ("TrainOp1", "part_of", "EastCoast"),
        ("TrainOp2", "part_of", "Eurostar"),
        ("EastCoast", "part_of", "NatExpress"),
    ];
    let build = |extra: bool| {
        let mut b = trial_core::TriplestoreBuilder::new();
        for (s, p, o) in shared {
            b.add_triple("E", s, p, o);
        }
        if extra {
            b.add_triple("E", "Edinburgh", "TrainOp1", "London");
        }
        b.finish()
    };
    let d1 = build(true);
    let d2 = build(false);
    let g1 = sigma_encode(&d1, "E");
    let g2 = sigma_encode(&d2, "E");
    let edge_set = |g: &trial_graph::GraphDb| -> std::collections::BTreeSet<String> {
        g.edges()
            .map(|e| {
                format!(
                    "{} {} {}",
                    g.node_name(e.source),
                    e.label,
                    g.node_name(e.target)
                )
            })
            .collect()
    };
    let sigma_equal = edge_set(&g1) == edge_set(&g2);
    let q = queries::same_company_reachability("E");
    let engine = SmartEngine::new();
    let pairs = |store: &Triplestore| -> std::collections::BTreeSet<(String, String)> {
        engine
            .run(&q, store)
            .unwrap()
            .iter()
            .map(|t| {
                (
                    store.object_name(t.s()).to_owned(),
                    store.object_name(t.o()).to_owned(),
                )
            })
            .collect()
    };
    let q1 = pairs(&d1);
    let q2 = pairs(&d2);
    let witness = ("StAndrews".to_owned(), "London".to_owned());
    // A representative family of NREs over the σ alphabet all agree on the
    // two encodings (they must: the encodings are equal as graphs).
    let nres = [
        Nre::label(SIGMA_NEXT).plus(),
        Nre::label(SIGMA_EDGE).then(Nre::label(SIGMA_NODE)).plus(),
        Nre::label(SIGMA_EDGE)
            .then(Nre::label(SIGMA_NEXT).star().test())
            .then(Nre::label(SIGMA_NODE))
            .star(),
    ];
    let mut nre_agree = true;
    for nre in &nres {
        let r1 = evaluate_nre(&g1, nre).len();
        let r2 = evaluate_nre(&g2, nre).len();
        nre_agree &= r1 == r2;
    }
    let mut body = String::new();
    let _ = writeln!(body, "| check | value |");
    let _ = writeln!(body, "|---|---|");
    let _ = writeln!(
        body,
        "| D1 triples / D2 triples | {} / {} |",
        d1.triple_count(),
        d2.triple_count()
    );
    let _ = writeln!(body, "| σ(D1) = σ(D2) (same edge set) | {sigma_equal} |");
    let _ = writeln!(
        body,
        "| (StAndrews, London) ∈ Q(D1) | {} |",
        q1.contains(&witness)
    );
    let _ = writeln!(
        body,
        "| (StAndrews, London) ∈ Q(D2) | {} |",
        q2.contains(&witness)
    );
    let _ = writeln!(body, "| Q(D1) = Q(D2) | {} |", q1 == q2);
    let _ = writeln!(body, "| sample NREs agree on σ(D1), σ(D2) | {nre_agree} |");
    let _ = writeln!(
        body,
        "\nConclusion (matches Prop. 1 / Thm. 1): σ(D1) = σ(D2), so every NRE/nSPARQL \
         navigation answers identically on D1 and D2, yet TriAL*'s Q separates them."
    );
    Report {
        id: "e1",
        title: "Q is not expressible over the σ(·) graph encoding (Prop. 1 / Thm. 1)",
        body,
    }
}

/// Examples 2–4: the worked query results on the Figure 1 database.
pub fn e2_worked_examples() -> Report {
    let store = figure1_store();
    let engine = SmartEngine::new();
    let mut body = String::new();
    let show = |body: &mut String, label: &str, expr: &Expr| {
        let result = engine.run(expr, &store).unwrap();
        let _ = writeln!(body, "**{label}** `{expr}`");
        for line in store.display_triples(&result) {
            let _ = writeln!(body, "  - {line}");
        }
        let _ = writeln!(body);
    };
    show(&mut body, "Example 2", &queries::example2("E"));
    show(
        &mut body,
        "Example 2 (extended)",
        &queries::example2_extended("E"),
    );
    show(
        &mut body,
        "Reach→ (Example 4)",
        &queries::reach_forward("E"),
    );
    show(
        &mut body,
        "Query Q (Theorem 1 / Example 4)",
        &queries::same_company_reachability("E"),
    );
    Report {
        id: "e2",
        title: "Worked examples on the Figure 1 database (Examples 2–4)",
        body,
    }
}

fn scaling_row(
    body: &mut String,
    label: &str,
    store: &Triplestore,
    expr: &Expr,
    engine: &dyn Engine,
) {
    let start = Instant::now();
    let eval = engine.evaluate(expr, store).unwrap();
    let _ = writeln!(
        body,
        "| {label} | {} | {} | {} | {:.2} |",
        store.triple_count(),
        eval.stats.work(),
        eval.result.len(),
        ms(start)
    );
}

/// Theorem 3: the naive engine's work grows ≈|T|² for joins and ≈|T|³ in the
/// worst case for stars; the table reports the measured work counters.
pub fn e3_theorem3_scaling() -> Report {
    let mut body = String::new();
    let naive = NaiveEngine::new();
    let _ = writeln!(body, "| workload | \\|T\\| | work (pairs) | out | ms |");
    let _ = writeln!(body, "|---|---|---|---|---|");
    let join = queries::example2("E");
    for triples in [100usize, 200, 400, 800] {
        let store = random_store(&RandomStoreConfig {
            objects: triples / 2,
            triples,
            distinct_values: 5,
            seed: 9,
        });
        scaling_row(&mut body, "join (TriAL)", &store, &join, &naive);
    }
    let star = queries::reach_forward("E");
    for len in [25usize, 50, 100, 200] {
        let store = chain_store(len);
        scaling_row(&mut body, "star (TriAL*) on a chain", &store, &star, &naive);
    }
    let _ = writeln!(
        body,
        "\nExpected shape (Thm. 3): doubling |T| roughly quadruples the join work and \
         roughly ×8 the chain-star work of the naive engine."
    );
    Report {
        id: "e3",
        title: "Naive-engine scaling (Theorem 3: O(|e|·|T|²) joins, O(|e|·|T|³) stars)",
        body,
    }
}

/// Proposition 4: equality-only joins routed through hash joins scale
/// ≈|O|·|T| rather than |T|².
pub fn e4_trial_eq_scaling() -> Report {
    let mut body = String::new();
    let naive = NaiveEngine::new();
    let smart = SmartEngine::new();
    let join = queries::example2("E");
    let _ = writeln!(
        body,
        "| \\|T\\| | naive work | smart work | naive ms | smart ms |"
    );
    let _ = writeln!(body, "|---|---|---|---|---|");
    for triples in [200usize, 400, 800, 1600] {
        let store = random_store(&RandomStoreConfig {
            objects: triples / 2,
            triples,
            distinct_values: 5,
            seed: 4,
        });
        let t0 = Instant::now();
        let n = naive.evaluate(&join, &store).unwrap();
        let naive_ms = ms(t0);
        let t1 = Instant::now();
        let s = smart.evaluate(&join, &store).unwrap();
        let smart_ms = ms(t1);
        assert_eq!(n.result, s.result);
        let _ = writeln!(
            body,
            "| {} | {} | {} | {naive_ms:.2} | {smart_ms:.2} |",
            store.triple_count(),
            n.stats.work(),
            s.stats.work()
        );
    }
    let _ = writeln!(
        body,
        "\nExpected shape (Prop. 4 / fragment {}): the equality-only join is in TriAL⁼, so the \
         hash-join engine's work grows roughly linearly in |T| while the naive engine grows \
         quadratically.",
        fragment::classify(&queries::example2("E"))
    );
    Report {
        id: "e4",
        title: "TriAL⁼ joins: hash join vs. nested loop (Proposition 4)",
        body,
    }
}

/// Proposition 5: the specialised reachability procedures scale ≈|O|·|T| on
/// reachTA⁼ stars, far below the generic fixpoints.
pub fn e5_reachta_scaling() -> Report {
    let mut body = String::new();
    let reach = queries::reach_forward("E");
    let _ = writeln!(
        body,
        "| chain length | engine | work | fixpoint rounds | ms |"
    );
    let _ = writeln!(body, "|---|---|---|---|---|");
    for len in [50usize, 100, 200, 400] {
        let store = chain_store(len);
        let engines: Vec<(&str, Box<dyn Engine>)> = vec![
            ("naive (Thm 3)", Box::new(NaiveEngine::new())),
            (
                "semi-naive",
                Box::new(SmartEngine::with_options(EvalOptions {
                    use_reach_specialisation: false,
                    ..EvalOptions::default()
                })),
            ),
            ("Prop. 5 reachability", Box::new(SmartEngine::new())),
        ];
        for (name, engine) in engines {
            let t0 = Instant::now();
            let eval = engine.evaluate(&reach, &store).unwrap();
            let _ = writeln!(
                body,
                "| {len} | {name} | {} | {} | {:.2} |",
                eval.stats.work(),
                eval.stats.fixpoint_rounds,
                ms(t0)
            );
        }
    }
    let _ = writeln!(
        body,
        "\nExpected shape (Prop. 5): the reachability procedures' work grows ~linearly with the \
         chain length (per output triple), the generic fixpoints polynomially; the naive engine \
         is the slowest by a widening margin."
    );
    Report {
        id: "e5",
        title: "reachTA⁼ stars: Proposition 5 procedures vs. generic fixpoints",
        body,
    }
}

/// Proposition 3: data complexity — a fixed query over growing data.
pub fn e6_data_complexity() -> Report {
    let mut body = String::new();
    let smart = SmartEngine::new();
    let q = queries::same_company_reachability("E");
    let _ = writeln!(
        body,
        "| cities | services | \\|T\\| | answers | work | ms |"
    );
    let _ = writeln!(body, "|---|---|---|---|---|---|");
    for scale in [1usize, 2, 4, 8] {
        let store = transport_network(&TransportConfig {
            cities: 20 * scale,
            operators: 4 * scale,
            companies: 3,
            services: 60 * scale,
            ownership_depth: 2,
            seed: 13,
        });
        let t0 = Instant::now();
        let eval = smart.evaluate(&q, &store).unwrap();
        let _ = writeln!(
            body,
            "| {} | {} | {} | {} | {} | {:.2} |",
            20 * scale,
            60 * scale,
            store.triple_count(),
            eval.result.len(),
            eval.stats.work(),
            ms(t0)
        );
    }
    let _ = writeln!(
        body,
        "\nExpected shape (Prop. 3): for the fixed query Q the work grows polynomially \
         (low-degree) in |T|; no exponential blow-up appears as the data grows."
    );
    Report {
        id: "e6",
        title: "Data complexity of a fixed TriAL* query (Proposition 3)",
        body,
    }
}

/// Theorems 4/5: the separating queries of the expressiveness results,
/// evaluated on the structures from the proofs.
pub fn e7_expressiveness_separations() -> Report {
    let mut body = String::new();
    let engine = SmartEngine::new();
    // T_k = complete ternary relation over k objects (proof of Thm 4).
    let complete = |k: usize| -> Triplestore {
        let mut b = trial_core::TriplestoreBuilder::new();
        let names: Vec<String> = (0..k).map(|i| format!("a{i}")).collect();
        for s in &names {
            for p in &names {
                for o in &names {
                    b.add_triple("E", s, p, o);
                }
            }
        }
        b.finish()
    };
    let four = queries::at_least_four_objects();
    let six = queries::at_least_six_objects();
    let _ = writeln!(body, "| structure | ≥4-objects query | ≥6-objects query |");
    let _ = writeln!(body, "|---|---|---|");
    for k in [3usize, 4, 5, 6] {
        let store = complete(k);
        let r4 = !engine.run(&four, &store).unwrap().is_empty();
        let r6 = !engine.run(&six, &store).unwrap().is_empty();
        let _ = writeln!(body, "| T{k} (complete, {k} objects) | {r4} | {r6} |");
    }
    let _ = writeln!(
        body,
        "\nExpected (Thm. 4 proof): the ≥4 query separates T3 from T4 (structures \
         indistinguishable in L³∞ω), the ≥6 query separates T5 from T6 (indistinguishable in \
         L⁵∞ω) — witnessing that TriAL is not contained in FO⁴/FO⁵ and that the separating \
         power comes from inequality joins ({} vs {}).",
        fragment::classify(&four),
        fragment::classify(&queries::example2("E"))
    );
    // Fragment classification table.
    let _ = writeln!(body, "\n| query | fragment | paper bound |");
    let _ = writeln!(body, "|---|---|---|");
    for (name, expr) in [
        ("Example 2 join", queries::example2("E")),
        ("Reach→", queries::reach_forward("E")),
        ("Reach with same label", queries::reach_same_label("E")),
        ("Query Q", queries::same_company_reachability("E")),
        ("≥6 objects", queries::at_least_six_objects()),
    ] {
        let f = fragment::classify(&expr);
        let _ = writeln!(body, "| {name} | {f} | {} |", f.paper_bound());
    }
    Report {
        id: "e7",
        title: "Expressiveness separations and fragment classification (Theorems 4/5)",
        body,
    }
}

/// Theorem 7 / Corollaries 2 and 4: graph-language queries agree with their
/// TriAL* translations on random graphs.
pub fn e8_graph_language_translations() -> Report {
    let mut body = String::new();
    let _ = writeln!(body, "| language | queries checked | graphs | all agree |");
    let _ = writeln!(body, "|---|---|---|---|");
    let graphs: Vec<_> = (0..3).map(|seed| random_graph(12, 40, 3, seed)).collect();
    let engine = SmartEngine::new();
    // RPQs.
    let rpqs = vec![
        Regex::label("l0"),
        Regex::label("l0").then(Regex::label("l1")),
        Regex::label("l0").or(Regex::label("l2")).star(),
        Regex::label("l1").plus(),
    ];
    let mut rpq_ok = true;
    for g in &graphs {
        let store = graph_to_triplestore(g);
        for re in &rpqs {
            let native: std::collections::BTreeSet<_> = evaluate_rpq(g, re)
                .into_iter()
                .map(|(a, b)| (g.node_name(a).to_owned(), g.node_name(b).to_owned()))
                .collect();
            let translated: std::collections::BTreeSet<_> = engine
                .run(&regex_to_trial(re), &store)
                .unwrap()
                .iter()
                .map(|t| {
                    (
                        store.object_name(t.s()).to_owned(),
                        store.object_name(t.o()).to_owned(),
                    )
                })
                .collect();
            rpq_ok &= native == translated;
        }
    }
    let _ = writeln!(
        body,
        "| RPQ | {} | {} | {rpq_ok} |",
        rpqs.len(),
        graphs.len()
    );
    // NREs.
    let nres = vec![
        Nre::label("l0").then(Nre::label("l1").test()),
        Nre::label("l0").star().then(Nre::inverse("l1")),
        Nre::label("l2").plus(),
    ];
    let mut nre_ok = true;
    for g in &graphs {
        let store = graph_to_triplestore(g);
        for e in &nres {
            let native: std::collections::BTreeSet<_> = evaluate_nre(g, e)
                .into_iter()
                .map(|(a, b)| (g.node_name(a).to_owned(), g.node_name(b).to_owned()))
                .collect();
            let translated: std::collections::BTreeSet<_> = engine
                .run(&nre_to_trial(e), &store)
                .unwrap()
                .iter()
                .map(|t| {
                    (
                        store.object_name(t.s()).to_owned(),
                        store.object_name(t.o()).to_owned(),
                    )
                })
                .collect();
            nre_ok &= native == translated;
        }
    }
    let _ = writeln!(
        body,
        "| NRE | {} | {} | {nre_ok} |",
        nres.len(),
        graphs.len()
    );
    // GXPath (including data comparisons and complement).
    let paths = vec![
        PathExpr::label("l0").complement(),
        PathExpr::label("l0").then(PathExpr::test(
            NodeExpr::exists(PathExpr::label("l1")).not(),
        )),
        PathExpr::label("l0").or(PathExpr::label("l1")).star(),
        PathExpr::label("l0").then(PathExpr::label("l1")).data_eq(),
    ];
    let mut gx_ok = true;
    for g in &graphs {
        let store = graph_to_triplestore(g);
        for alpha in &paths {
            let native: std::collections::BTreeSet<_> = evaluate_path(g, alpha)
                .into_iter()
                .map(|(a, b)| (g.node_name(a).to_owned(), g.node_name(b).to_owned()))
                .collect();
            let translated: std::collections::BTreeSet<_> = engine
                .run(&path_to_trial(alpha), &store)
                .unwrap()
                .iter()
                .map(|t| {
                    (
                        store.object_name(t.s()).to_owned(),
                        store.object_name(t.o()).to_owned(),
                    )
                })
                .collect();
            gx_ok &= native == translated;
        }
    }
    let _ = writeln!(
        body,
        "| GXPath(∼) | {} | {} | {gx_ok} |",
        paths.len(),
        graphs.len()
    );
    let _ = writeln!(
        body,
        "\nExpected (Thm. 7, Cor. 2, Cor. 4): every graph-language query equals the π₁,₃ \
         projection of its TriAL* translation over the triplestore encoding T_G."
    );
    Report {
        id: "e8",
        title: "Graph query languages embed into TriAL* (Theorem 7, Corollaries 2/4)",
        body,
    }
}

/// The two application scenarios of the paper: the transport network (query
/// Q) and the social network of Section 2.3.
pub fn e9_use_cases() -> Report {
    let mut body = String::new();
    // Transport use case at a moderate size.
    let store = transport_network(&TransportConfig {
        cities: 40,
        operators: 8,
        companies: 3,
        services: 120,
        ownership_depth: 3,
        seed: 21,
    });
    let q = queries::same_company_reachability("E");
    let engine = SmartEngine::new();
    let t0 = Instant::now();
    let eval = engine.evaluate(&q, &store).unwrap();
    let city_pairs = eval
        .result
        .iter()
        .filter(|t| {
            store.object_name(t.s()).starts_with("city")
                && store.object_name(t.o()).starts_with("city")
        })
        .count();
    let _ = writeln!(body, "| use case | \\|T\\| | answers | city pairs | ms |");
    let _ = writeln!(body, "|---|---|---|---|---|");
    let _ = writeln!(
        body,
        "| transport / query Q | {} | {} | {} | {:.2} |",
        store.triple_count(),
        eval.result.len(),
        city_pairs,
        ms(t0)
    );
    // Social-network use case: friends-of-friends established in the same year
    // (a data-value join on the connection objects).
    let social = trial_workloads::social::social_network(&trial_workloads::SocialConfig {
        users: 60,
        connections: 200,
        seed: 5,
    });
    // (x, c, y) ✶ (y, c', z) with ρ(c) = ρ(c') on the 5th component is not
    // directly expressible (ρ compares whole tuples), so the example uses
    // full-tuple equality: connections created the same instant with the same
    // type.
    let fof = Expr::rel("E").join(
        Expr::rel("E"),
        trial_core::output(Pos::L1, Pos::L2, Pos::R3),
        Conditions::new()
            .obj_eq(Pos::L3, Pos::R1)
            .data_eq(Pos::L2, Pos::R2),
    );
    let t1 = Instant::now();
    let eval = engine.evaluate(&fof, &social).unwrap();
    let _ = writeln!(
        body,
        "| social / same-kind friend-of-friend | {} | {} | — | {:.2} |",
        social.triple_count(),
        eval.result.len(),
        ms(t1)
    );
    Report {
        id: "e9",
        title: "Application scenarios: transport (query Q) and the §2.3 social network",
        body,
    }
}

/// Section 7 future work: how should the recursion be implemented? Ablation
/// of the three strategies on the same workloads.
pub fn e10_recursion_ablation() -> Report {
    let mut body = String::new();
    let _ = writeln!(body, "| workload | query | engine | work | ms |");
    let _ = writeln!(body, "|---|---|---|---|---|");
    let workloads: Vec<(&str, Triplestore, Expr)> = vec![
        ("chain(300)", chain_store(300), queries::reach_forward("E")),
        (
            "transport(×4)",
            transport_network(&TransportConfig {
                cities: 80,
                operators: 16,
                companies: 4,
                services: 240,
                ownership_depth: 2,
                seed: 2,
            }),
            queries::same_company_reachability("E"),
        ),
        (
            "random(600)",
            random_store(&RandomStoreConfig {
                objects: 200,
                triples: 600,
                distinct_values: 6,
                seed: 6,
            }),
            queries::reach_same_label("E"),
        ),
    ];
    for (wname, store, query) in &workloads {
        let engines: Vec<(&str, Box<dyn Engine>)> = vec![
            ("naive (Thm 3)", Box::new(NaiveEngine::new())),
            (
                "semi-naive",
                Box::new(SmartEngine::with_options(EvalOptions {
                    use_reach_specialisation: false,
                    ..EvalOptions::default()
                })),
            ),
            ("smart (+Prop. 5)", Box::new(SmartEngine::new())),
        ];
        let mut reference: Option<trial_core::TripleSet> = None;
        for (ename, engine) in engines {
            let t0 = Instant::now();
            let eval = engine.evaluate(query, store).unwrap();
            match &reference {
                None => reference = Some(eval.result.clone()),
                Some(r) => assert_eq!(r, &eval.result, "engines disagree on {wname}"),
            }
            let _ = writeln!(
                body,
                "| {wname} | {} | {ename} | {} | {:.2} |",
                fragment::classify(query),
                eval.stats.work(),
                ms(t0)
            );
        }
    }
    let _ = writeln!(
        body,
        "\nExpected shape (§7): semi-naive evaluation dominates the naive fixpoint everywhere; \
         the Proposition 5 procedures win additionally whenever the star is a reachability star \
         (reachTA⁼), answering the paper's question of whether the required recursion is \
         efficiently implementable."
    );
    Report {
        id: "e10",
        title: "Recursion-strategy ablation (Section 7 future work)",
        body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The experiments cheap enough to run under the debug profile in unit
    /// tests. The scaling experiments (e3–e6, e10) deliberately run the slow
    /// Theorem-3 baseline on sizeable inputs and are exercised by the
    /// `tables` binary in release mode instead (plus the ignored test below).
    const CHEAP_EXPERIMENTS: [&str; 5] = ["e1", "e2", "e7", "e8", "e9"];

    #[test]
    fn cheap_experiments_run() {
        for id in CHEAP_EXPERIMENTS {
            let report = run_experiment(id).unwrap();
            assert_eq!(report.id, id);
            assert!(!report.body.is_empty());
            assert!(!report.to_string().is_empty());
        }
        assert!(run_experiment("nope").is_none());
        assert!(ALL_EXPERIMENTS.len() >= CHEAP_EXPERIMENTS.len());
    }

    /// Full sweep of every experiment; run with `cargo test -p trial-bench
    /// --release -- --ignored` (minutes of runtime on the naive baselines).
    #[test]
    #[ignore = "runs the slow Theorem-3 baselines; use the release-mode tables binary"]
    fn every_experiment_runs() {
        for id in ALL_EXPERIMENTS {
            let report = run_experiment(id).unwrap();
            assert_eq!(report.id, id);
            assert!(!report.body.is_empty());
        }
    }

    #[test]
    fn e1_confirms_the_separation() {
        let report = e1_sigma_inexpressibility();
        assert!(report
            .body
            .contains("| σ(D1) = σ(D2) (same edge set) | true |"));
        assert!(report
            .body
            .contains("| (StAndrews, London) ∈ Q(D1) | true |"));
        assert!(report
            .body
            .contains("| (StAndrews, London) ∈ Q(D2) | false |"));
    }

    #[test]
    fn e7_separates_the_proof_structures() {
        let report = e7_expressiveness_separations();
        assert!(report
            .body
            .contains("| T3 (complete, 3 objects) | false | false |"));
        assert!(report
            .body
            .contains("| T4 (complete, 4 objects) | true | false |"));
        assert!(report
            .body
            .contains("| T6 (complete, 6 objects) | true | true |"));
    }

    #[test]
    fn e8_translations_agree() {
        let report = e8_graph_language_translations();
        for line in report.body.lines().filter(|l| l.starts_with("| ")) {
            assert!(!line.contains("false"), "translation mismatch: {line}");
        }
    }
}
