//! Feedback-driven planning vs. static heuristics on a skewed multi-join.
//!
//! The store is a long `hop` chain (no self-loops) plus a handful of
//! self-loop triples — so the residual selection `σ[1=3](E)` actually
//! matches a few rows while the static heuristic pegs it at 25% of the
//! store. The workload joins that selection through the chain twice. A
//! cold (heuristic) planner sees a "large" filtered side and merges it
//! against full relation scans; after one analyzed run feeds the
//! `StatsStore`, the observed cardinality flips the plan to index
//! nested-loop probes off the tiny outer — the adaptive loop's payoff,
//! measured end to end.
//!
//! The harness asserts the cold and warmed plans render **byte-identical
//! results** before timing anything, prints medians, and records them in
//! `BENCH_planner.json` at the repository root. `TRIAL_BENCH_SMOKE=1`
//! shrinks the store and sample counts for CI; the committed JSON comes
//! from a full local run.

use criterion::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};
use trial_core::{Triplestore, TriplestoreBuilder};
use trial_eval::{Engine, EvalOptions, SmartEngine, StatsStore};
use trial_parser::parse;

struct Config {
    chain: usize,
    self_loops: usize,
    samples: usize,
}

fn config() -> Config {
    if std::env::var("TRIAL_BENCH_SMOKE").is_ok() {
        Config {
            chain: 6_000,
            self_loops: 8,
            samples: 3,
        }
    } else {
        Config {
            chain: 120_000,
            self_loops: 8,
            samples: 7,
        }
    }
}

/// A `hop` chain `n_i → n_{i+1}` (never a self-loop) plus `self_loops`
/// `pin` triples `m_j → m_j`: the only rows `σ[1=3]` can match.
fn skewed_store(config: &Config) -> Triplestore {
    let mut b = TriplestoreBuilder::new();
    for i in 0..config.chain {
        b.add_triple("E", format!("n{i}"), "hop", format!("n{}", i + 1));
    }
    for j in 0..config.self_loops {
        b.add_triple("E", format!("m{j}"), "pin", format!("m{j}"));
    }
    b.finish()
}

/// One warm-up call, then `samples` timed runs; returns sorted durations.
fn time_runs(samples: usize, mut f: impl FnMut() -> usize) -> (Vec<Duration>, usize) {
    let rows = f();
    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        black_box(f());
        times.push(start.elapsed());
    }
    times.sort_unstable();
    (times, rows)
}

fn median(times: &[Duration]) -> Duration {
    times[times.len() / 2]
}

/// Renders a result set to bytes (one `s p o` line per triple, canonical
/// order) — the strongest answer-identity check available.
fn render(store: &Triplestore, set: &trial_core::TripleSet) -> String {
    let mut out = String::new();
    for t in set.iter() {
        out.push_str(store.object_name(t.s()));
        out.push(' ');
        out.push_str(store.object_name(t.p()));
        out.push(' ');
        out.push_str(store.object_name(t.o()));
        out.push('\n');
    }
    out
}

fn main() {
    let config = config();
    let store = skewed_store(&config);
    println!(
        "store: {} objects, {} triples ({} self-loops)",
        store.object_count(),
        store.triple_count(),
        config.self_loops
    );

    let mut entries = Vec::new();
    let mut headline_speedup = 0.0f64;
    for (name, query) in [
        (
            "selfloop-2hop",
            "((SELECT[1=3](E) JOIN[1,2,3' | 3=1'] E) JOIN[1,2,3' | 3=1'] E)",
        ),
        ("selfloop-probe", "(SELECT[1=3](E) JOIN[1,2,3' | 3=1'] E)"),
    ] {
        let expr = parse(query).unwrap();

        // Cold: static heuristics only.
        let cold_engine = SmartEngine::with_options(EvalOptions::default());
        let cold_plan = cold_engine.plan(&expr, &store).unwrap();

        // Warmed: one analyzed run feeds the per-store statistics; every
        // plan after it draws on the observed cardinalities.
        let stats = Arc::new(StatsStore::new());
        let warmed_engine = SmartEngine::with_stats(EvalOptions::default(), Arc::clone(&stats));
        let analyzed = warmed_engine
            .evaluate_analyzed(&expr, &store, None)
            .unwrap();
        assert!(
            analyzed.feedback.as_ref().is_some_and(|f| f.ingested > 0),
            "{name}: the analyzed run must feed the stats"
        );
        let warmed_plan = warmed_engine.plan(&expr, &store).unwrap();
        assert!(
            warmed_engine
                .estimate_sources(&warmed_plan)
                .iter()
                .any(|s| *s),
            "{name}: the warmed plan must draw on observed estimates"
        );

        // Answer identity first, performance second.
        let reference = render(&store, &cold_engine.run(&expr, &store).unwrap());
        let warmed_result = render(&store, &warmed_engine.run(&expr, &store).unwrap());
        assert_eq!(reference, warmed_result, "{name}: answers diverged");

        let (cold_times, rows) = time_runs(config.samples, || {
            cold_engine.run(&expr, &store).unwrap().len()
        });
        let (warm_times, warm_rows) = time_runs(config.samples, || {
            warmed_engine.run(&expr, &store).unwrap().len()
        });
        assert_eq!(rows, warm_rows);
        let cold = median(&cold_times);
        let warmed = median(&warm_times);
        let speedup = cold.as_secs_f64() / warmed.as_secs_f64().max(1e-12);
        let replanned = cold_plan.explain() != warmed_plan.explain();
        println!(
            "{:<16} cold: {:>12.3?}  warmed: {:>12.3?}  speedup: {:>7.2}x  replanned: {}  ({} rows)",
            name, cold, warmed, speedup, replanned, rows
        );
        headline_speedup = headline_speedup.max(speedup);
        entries.push(format!(
            concat!(
                "    {{\"workload\":\"{}\",\"query\":{:?},\"rows\":{},",
                "\"cold_median_ns\":{},\"warmed_median_ns\":{},",
                "\"speedup\":{:.3},\"replanned\":{}}}"
            ),
            name,
            query,
            rows,
            cold.as_nanos(),
            warmed.as_nanos(),
            speedup,
            replanned,
        ));
    }

    // The adaptive loop must pay for itself on the skewed store. Timing in
    // smoke runs (tiny store, shared CI hardware) is too noisy to gate on.
    let smoke = std::env::var("TRIAL_BENCH_SMOKE").is_ok();
    if !smoke {
        assert!(
            headline_speedup >= 1.3,
            "warmed plans must be >=1.3x faster than cold on the skewed multi-join, got {headline_speedup:.2}x"
        );
    }

    let json = format!(
        "{{\n  \"store\": {{\"triples\": {}, \"self_loops\": {}}},\n  \
         \"smoke\": {},\n  \"workloads\": [\n{}\n  ]\n}}\n",
        store.triple_count(),
        config.self_loops,
        smoke,
        entries.join(",\n"),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_planner.json");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("could not write {path}: {e}");
    } else {
        println!("recorded results in BENCH_planner.json");
    }
}
