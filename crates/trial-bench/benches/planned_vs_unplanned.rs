//! Planned (index-backed, cost-based) vs. unplanned (syntactic, rebuild-per-
//! join) execution of the same queries on the chain and social workloads.
//!
//! The "unplanned" configuration disables the cost-based planner rewrites
//! and the reuse of star build tables, reproducing the pre-plan-IR behaviour
//! of the engine: every join rebuilds its hash table from scratch, stars
//! included (one rebuild per fixpoint round). The planned configuration is
//! the default `SmartEngine`. The star benchmarks disable the Proposition 5
//! reachability specialisation in *both* configurations so that they isolate
//! the build-once-vs-rebuild difference of the semi-naive fixpoint rather
//! than comparing two different algorithms.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use trial_core::builder::queries;
use trial_core::{output, Conditions, Expr, Pos};
use trial_eval::{Engine, EvalOptions, SmartEngine};
use trial_workloads::{chain_store, social_network, SocialConfig};

fn engines(reach_specialisation: bool) -> [(&'static str, SmartEngine); 2] {
    [
        (
            "planned",
            SmartEngine::with_options(EvalOptions {
                use_reach_specialisation: reach_specialisation,
                ..EvalOptions::default()
            }),
        ),
        (
            "unplanned",
            SmartEngine::with_options(EvalOptions {
                use_reach_specialisation: reach_specialisation,
                optimize_plans: false,
                ..EvalOptions::default()
            }),
        ),
    ]
}

fn bench_chain(c: &mut Criterion) {
    let mut group = c.benchmark_group("planned_vs_unplanned/chain");
    group.sample_size(10);
    for len in [100usize, 400] {
        let store = chain_store(len);
        let star = queries::reach_forward("E");
        for (name, engine) in engines(false) {
            group.bench_with_input(BenchmarkId::new(name, len), &store, |b, store| {
                b.iter(|| black_box(engine.run(&star, store).unwrap()))
            });
        }
    }
    group.finish();
}

fn bench_social(c: &mut Criterion) {
    let mut group = c.benchmark_group("planned_vs_unplanned/social");
    group.sample_size(10);
    let store = social_network(&SocialConfig {
        users: 150,
        connections: 600,
        seed: 11,
    });
    // Friend-of-friend join chains (one and two hops of composition) plus
    // the reachability star evaluated as a generic fixpoint.
    let fof = Expr::rel("E").join(
        Expr::rel("E"),
        output(Pos::L1, Pos::L2, Pos::R3),
        Conditions::new().obj_eq(Pos::L3, Pos::R1),
    );
    let fof3 = fof.clone().join(
        Expr::rel("E"),
        output(Pos::L1, Pos::L2, Pos::R3),
        Conditions::new().obj_eq(Pos::L3, Pos::R1),
    );
    for (qname, query) in [("fof", &fof), ("fof3", &fof3)] {
        for (ename, engine) in engines(true) {
            group.bench_with_input(BenchmarkId::new(qname, ename), &store, |b, store| {
                b.iter(|| black_box(engine.run(query, store).unwrap()))
            });
        }
    }
    let star = queries::reach_forward("E");
    for (ename, engine) in engines(false) {
        group.bench_with_input(BenchmarkId::new("reach", ename), &store, |b, store| {
            b.iter(|| black_box(engine.run(&star, store).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_chain, bench_social);
criterion_main!(benches);
