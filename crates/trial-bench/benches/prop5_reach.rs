//! Proposition 5: reachTA⁼ stars — the specialised reachability procedures
//! against the generic fixpoints.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use trial_core::builder::queries;
use trial_eval::{Engine, EvalOptions, NaiveEngine, SmartEngine};
use trial_workloads::chain_store;

fn bench_prop5(c: &mut Criterion) {
    let naive = NaiveEngine::new();
    let seminaive = SmartEngine::with_options(EvalOptions {
        use_reach_specialisation: false,
        ..EvalOptions::default()
    });
    let reach = SmartEngine::new();
    let query = queries::reach_forward("E");
    for (name, engine) in [
        ("naive", &naive as &dyn Engine),
        ("seminaive", &seminaive as &dyn Engine),
        ("prop5_reach", &reach as &dyn Engine),
    ] {
        let mut group = c.benchmark_group(format!("prop5_{name}"));
        group.sample_size(10);
        for len in [25usize, 50, 100] {
            let store = chain_store(len);
            group.bench_with_input(BenchmarkId::from_parameter(len), &store, |b, store| {
                b.iter(|| black_box(engine.run(&query, store).unwrap()))
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_prop5);
criterion_main!(benches);
