//! Proposition 2 / Theorem 2 in practice: evaluating a query as a
//! ReachTripleDatalog¬ program vs. as the equivalent TriAL\* expression.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use trial_core::builder::queries;
use trial_datalog::{evaluate_program, expr_to_program};
use trial_eval::{Engine, SmartEngine};
use trial_workloads::{transport_network, TransportConfig};

fn bench_datalog(c: &mut Criterion) {
    let store = transport_network(&TransportConfig {
        cities: 30,
        operators: 6,
        companies: 3,
        services: 90,
        ownership_depth: 2,
        seed: 8,
    });
    let expr = queries::same_company_reachability("E");
    let rels: Vec<&str> = store.relation_names().collect();
    let program = expr_to_program(&expr, &rels).unwrap();
    let engine = SmartEngine::new();
    let mut group = c.benchmark_group("datalog_vs_algebra_query_q");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::from_parameter("algebra"), &store, |b, s| {
        b.iter(|| black_box(engine.run(&expr, s).unwrap()))
    });
    group.bench_with_input(BenchmarkId::from_parameter("datalog"), &store, |b, s| {
        b.iter(|| black_box(evaluate_program(&program, s).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_datalog);
criterion_main!(benches);
