//! Section 7 future work: ablation of the recursion strategies on the
//! paper's flagship query Q.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use trial_core::builder::queries;
use trial_eval::{Engine, EvalOptions, NaiveEngine, SmartEngine};
use trial_workloads::{transport_network, TransportConfig};

fn bench_ablation(c: &mut Criterion) {
    let store = transport_network(&TransportConfig {
        cities: 60,
        operators: 12,
        companies: 4,
        services: 180,
        ownership_depth: 2,
        seed: 2,
    });
    let query = queries::same_company_reachability("E");
    let naive = NaiveEngine::new();
    let seminaive = SmartEngine::with_options(EvalOptions {
        use_reach_specialisation: false,
        ..EvalOptions::default()
    });
    let smart = SmartEngine::new();
    let mut group = c.benchmark_group("ablation_query_q");
    group.sample_size(10);
    for (name, engine) in [
        ("naive", &naive as &dyn Engine),
        ("seminaive", &seminaive as &dyn Engine),
        ("smart", &smart as &dyn Engine),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &store, |b, store| {
            b.iter(|| black_box(engine.run(&query, store).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
