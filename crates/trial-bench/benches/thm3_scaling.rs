//! Theorem 3: naive-engine QueryComputation scaling.
//!
//! Joins should scale ≈|T|², Kleene stars up to ≈|T|³ in the worst case.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use trial_core::builder::queries;
use trial_eval::{Engine, NaiveEngine};
use trial_workloads::{chain_store, random_store, RandomStoreConfig};

fn bench_thm3(c: &mut Criterion) {
    let naive = NaiveEngine::new();
    let mut group = c.benchmark_group("thm3_naive_join");
    group.sample_size(10);
    for triples in [100usize, 200, 400] {
        let store = random_store(&RandomStoreConfig {
            objects: triples / 2,
            triples,
            distinct_values: 5,
            seed: 9,
        });
        let query = queries::example2("E");
        group.bench_with_input(BenchmarkId::from_parameter(triples), &store, |b, store| {
            b.iter(|| black_box(naive.run(&query, store).unwrap()))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("thm3_naive_star_chain");
    group.sample_size(10);
    for len in [25usize, 50, 100] {
        let store = chain_store(len);
        let query = queries::reach_forward("E");
        group.bench_with_input(BenchmarkId::from_parameter(len), &store, |b, store| {
            b.iter(|| black_box(naive.run(&query, store).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_thm3);
criterion_main!(benches);
