//! Morsel-driven parallel execution vs. the single-threaded path.
//!
//! Three workload families over ≥100k-triple random stores, each evaluated
//! at 1 / 2 / 4 evaluation threads (`EvalOptions::threads`):
//!
//! * **join-heavy** — a hash join with filtered sides (sharded build +
//!   partitioned probe) and an index nested-loop join (partitioned outer
//!   side probing the shared permutation index);
//! * **star-reachability** — a Proposition 5 reachability closure (BFS
//!   roots partitioned across workers) and a general semi-naive fixpoint
//!   (per-round delta partitioning), over a sparse store so the closure
//!   stays bounded;
//! * **full-scan** — a filtered scan (partitioned residual checks).
//!
//! Results cross-check against the single-threaded run before timing, and
//! medians land in `BENCH_parallel.json` at the repository root together
//! with the host's core count — parallel speedup is physically bounded by
//! `host_cpus`, so on a single-core runner the interesting number is that
//! the 4-thread ratio stays near 1.0 (morsel overhead is not pathological)
//! while multi-core hardware shows the scaling.

use criterion::black_box;
use std::time::{Duration, Instant};
use trial_core::{Expr, Triplestore};
use trial_eval::{Engine, EvalOptions, SmartEngine};
use trial_parser::parse;
use trial_workloads::{random_store, RandomStoreConfig};

struct Workload {
    name: &'static str,
    query: &'static str,
    /// Which store the query runs against: `true` = the sparse store whose
    /// tiny components keep Kleene closures bounded.
    sparse: bool,
    samples: usize,
}

const WORKLOADS: &[Workload] = &[
    Workload {
        name: "join/hash-filtered",
        query: "(SELECT[1!=3](E) JOIN[1,2,3' | 3=1'] SELECT[1!=3](E))",
        sparse: false,
        samples: 7,
    },
    Workload {
        name: "join/index-composition",
        query: "(E JOIN[1,2,3' | 3=1'] E)",
        sparse: false,
        samples: 7,
    },
    Workload {
        name: "star/reachability",
        query: "STAR(E JOIN[1,2,3' | 3=1'])",
        sparse: true,
        samples: 7,
    },
    Workload {
        name: "star/semi-naive",
        query: "STAR(E JOIN[1,2,3' | 3=1', 2=2'])",
        sparse: true,
        samples: 7,
    },
    Workload {
        name: "scan/filtered",
        query: "SELECT[1!=3]((E UNION E))",
        sparse: false,
        samples: 9,
    },
];

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

fn engine(threads: usize) -> SmartEngine {
    SmartEngine::with_options(EvalOptions {
        threads,
        ..EvalOptions::default()
    })
}

/// One warm-up call, then `samples` timed runs; returns sorted durations.
fn time_runs(samples: usize, mut f: impl FnMut() -> usize) -> (Vec<Duration>, usize) {
    let rows = f();
    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        black_box(f());
        times.push(start.elapsed());
    }
    times.sort_unstable();
    (times, rows)
}

fn median(times: &[Duration]) -> Duration {
    times[times.len() / 2]
}

fn main() {
    // Dense store for joins/scans: avg out-degree 5, so compositions emit
    // ~500k candidate rows. Sparse store for closures: avg out-degree 0.5
    // keeps components (and therefore reachability sets) small.
    let dense = random_store(&RandomStoreConfig {
        objects: 20_000,
        triples: 100_000,
        distinct_values: 10,
        seed: 7,
    });
    let sparse = random_store(&RandomStoreConfig {
        objects: 200_000,
        triples: 100_000,
        distinct_values: 10,
        seed: 11,
    });
    for (name, store) in [("dense", &dense), ("sparse", &sparse)] {
        assert!(
            store.triple_count() >= 100_000,
            "{name} store too small: {}",
            store.triple_count()
        );
    }
    let host_cpus = trial_eval::available_threads();
    println!(
        "dense: {} objects / {} triples; sparse: {} objects / {} triples; host cores: {host_cpus}",
        dense.object_count(),
        dense.triple_count(),
        sparse.object_count(),
        sparse.triple_count(),
    );

    let mut entries = Vec::new();
    let mut min_speedup_at_4 = f64::INFINITY;

    for w in WORKLOADS {
        let store: &Triplestore = if w.sparse { &sparse } else { &dense };
        let expr: Expr = parse(w.query).unwrap();
        // Correctness cross-check before timing: all degrees agree.
        let reference = engine(1).run(&expr, store).unwrap();
        for &threads in &THREAD_COUNTS[1..] {
            assert_eq!(
                engine(threads).run(&expr, store).unwrap(),
                reference,
                "degree {threads} diverges on {}",
                w.name
            );
        }

        let mut medians = Vec::new();
        let mut rows = 0;
        for &threads in &THREAD_COUNTS {
            let e = engine(threads);
            let (times, n) = time_runs(w.samples, || {
                e.run(&expr, store).map(|set| set.len()).unwrap()
            });
            rows = n;
            medians.push(median(&times));
        }
        let t1 = medians[0].as_secs_f64();
        let speedups: Vec<f64> = medians
            .iter()
            .map(|m| t1 / m.as_secs_f64().max(1e-12))
            .collect();
        println!(
            "{:<24} 1t: {:>10.3?}  2t: {:>10.3?} ({:>5.2}x)  4t: {:>10.3?} ({:>5.2}x)  ({} rows)",
            w.name, medians[0], medians[1], speedups[1], medians[2], speedups[2], rows
        );
        min_speedup_at_4 = min_speedup_at_4.min(speedups[2]);
        entries.push(format!(
            concat!(
                "    {{\"workload\":\"{}\",\"query\":{:?},\"store\":\"{}\",\"rows\":{},",
                "\"median_ns_1t\":{},\"median_ns_2t\":{},\"median_ns_4t\":{},",
                "\"speedup_2t\":{:.3},\"speedup_4t\":{:.3}}}"
            ),
            w.name,
            w.query,
            if w.sparse { "sparse" } else { "dense" },
            rows,
            medians[0].as_nanos(),
            medians[1].as_nanos(),
            medians[2].as_nanos(),
            speedups[1],
            speedups[2],
        ));
    }

    println!(
        "min 4-thread speedup {min_speedup_at_4:.2}x on {host_cpus} core(s) \
         (acceptance: >=2x on the join-heavy and star workloads given >=4 cores; \
         on fewer cores the bound is the core count)"
    );

    let json = format!(
        "{{\n  \"host_cpus\": {host_cpus},\n  \
         \"stores\": {{\"dense\": {{\"objects\": {}, \"triples\": {}, \"seed\": 7}}, \
         \"sparse\": {{\"objects\": {}, \"triples\": {}, \"seed\": 11}}}},\n  \
         \"thread_counts\": [1, 2, 4],\n  \
         \"min_speedup_4t\": {:.3},\n  \"workloads\": [\n{}\n  ]\n}}\n",
        dense.object_count(),
        dense.triple_count(),
        sparse.object_count(),
        sparse.triple_count(),
        min_speedup_at_4,
        entries.join(",\n"),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_parallel.json");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("could not write {path}: {e}");
    } else {
        println!("recorded results in BENCH_parallel.json");
    }
}
