//! Proposition 3: data complexity — the fixed query Q over growing
//! transport networks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use trial_core::builder::queries;
use trial_eval::{Engine, SmartEngine};
use trial_workloads::{transport_network, TransportConfig};

fn bench_prop3(c: &mut Criterion) {
    let smart = SmartEngine::new();
    let query = queries::same_company_reachability("E");
    let mut group = c.benchmark_group("prop3_query_q_data_complexity");
    group.sample_size(10);
    for scale in [1usize, 2, 4] {
        let store = transport_network(&TransportConfig {
            cities: 20 * scale,
            operators: 4 * scale,
            companies: 3,
            services: 60 * scale,
            ownership_depth: 2,
            seed: 13,
        });
        group.bench_with_input(
            BenchmarkId::from_parameter(store.triple_count()),
            &store,
            |b, store| b.iter(|| black_box(smart.run(&query, store).unwrap())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_prop3);
criterion_main!(benches);
