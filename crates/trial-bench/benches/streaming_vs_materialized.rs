//! Streaming cursor pipeline vs. materialize-everything execution.
//!
//! Two workload families over a ≥100k-triple random store:
//!
//! * **limit-bounded** (`?limit=`-style, limit ≤ 16) — where the pull-based
//!   pipeline should win by orders of magnitude, because it stops the moment
//!   the limit is satisfied while the materialized interpreter evaluates the
//!   full result first;
//! * **full-result** — where streaming must not regress (acceptance: no
//!   slowdown beyond 10%), because both modes end up doing the same work.
//!
//! Besides the printed report, the bench records medians and speedups in
//! `BENCH_streaming.json` at the repository root so results ride along with
//! the code.

use criterion::black_box;
use std::time::{Duration, Instant};
use trial_core::{Expr, Triplestore};
use trial_eval::{Engine, EvalOptions, SmartEngine};
use trial_parser::parse;
use trial_workloads::{random_store, RandomStoreConfig};

struct Workload {
    name: &'static str,
    query: &'static str,
    /// `Some(k)` = limit-bounded (streamed with early termination vs.
    /// materialized-then-truncated), `None` = full result both ways.
    limit: Option<usize>,
}

const WORKLOADS: &[Workload] = &[
    Workload {
        name: "limit/scan",
        query: "E",
        limit: Some(10),
    },
    Workload {
        name: "limit/join-composition",
        query: "(E JOIN[1,2,3' | 3=1'] E)",
        limit: Some(10),
    },
    Workload {
        name: "limit/union-of-joins",
        query: "((E JOIN[1,2,3' | 3=1'] E) UNION (E JOIN[1,3',3 | 2=1'] E))",
        limit: Some(16),
    },
    Workload {
        name: "limit/filtered-join",
        query: "SELECT[1!=3]((E JOIN[1,2,3' | 3=1'] E))",
        limit: Some(8),
    },
    Workload {
        name: "full/scan",
        query: "E",
        limit: None,
    },
    Workload {
        name: "full/selection",
        query: "SELECT[1=3](E)",
        limit: None,
    },
    Workload {
        name: "full/join-composition",
        query: "(E JOIN[1,2,3' | 3=1'] E)",
        limit: None,
    },
    Workload {
        name: "full/union",
        query: "(E UNION (E JOIN[1,2,3' | 3=1'] E))",
        limit: None,
    },
];

fn streaming_engine() -> SmartEngine {
    SmartEngine::new()
}

fn materialized_engine() -> SmartEngine {
    SmartEngine::with_options(EvalOptions {
        streaming: false,
        ..EvalOptions::default()
    })
}

/// Runs one arm of a workload, returning the number of result rows.
fn run_arm(engine: &SmartEngine, expr: &Expr, store: &Triplestore, limit: Option<usize>) -> usize {
    match limit {
        // The streamed arm pulls through the cursor API (early termination);
        // the materialized arm must evaluate fully before truncating.
        Some(k) if engine.options.streaming => {
            let mut stream = engine.stream(expr, store, Some(k)).unwrap();
            let mut n = 0;
            while let Some(t) = stream.next_triple() {
                black_box(t);
                n += 1;
            }
            n
        }
        _ => engine
            .evaluate_limited(expr, store, limit)
            .unwrap()
            .result
            .len(),
    }
}

/// One warm-up call, then `samples` timed runs; returns sorted durations.
fn time_runs(samples: usize, mut f: impl FnMut() -> usize) -> (Vec<Duration>, usize) {
    let rows = f();
    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        black_box(f());
        times.push(start.elapsed());
    }
    times.sort_unstable();
    (times, rows)
}

fn median(times: &[Duration]) -> Duration {
    times[times.len() / 2]
}

fn main() {
    // ≥100k triples, sparse enough that the composition join stays a
    // realistic (sub-second) full-result workload.
    let config = RandomStoreConfig {
        objects: 20_000,
        triples: 100_000,
        distinct_values: 10,
        seed: 7,
    };
    let store = random_store(&config);
    let triples = store.triple_count();
    assert!(triples >= 100_000, "store too small: {triples}");
    println!(
        "store: {} objects, {} triples",
        store.object_count(),
        triples
    );

    let streaming = streaming_engine();
    let materialized = materialized_engine();

    let mut entries = Vec::new();
    let mut limit_speedups = Vec::new();
    let mut full_ratios = Vec::new();

    for w in WORKLOADS {
        let expr = parse(w.query).unwrap();
        // Correctness cross-check before timing: full results agree.
        assert_eq!(
            streaming.run(&expr, &store).unwrap(),
            materialized.run(&expr, &store).unwrap(),
            "modes disagree on {}",
            w.name
        );
        let samples = if w.limit.is_some() { 30 } else { 12 };
        let (s_times, s_rows) = time_runs(samples, || run_arm(&streaming, &expr, &store, w.limit));
        let (m_times, m_rows) =
            time_runs(samples, || run_arm(&materialized, &expr, &store, w.limit));
        assert_eq!(s_rows, m_rows, "row counts diverge on {}", w.name);
        let (s_med, m_med) = (median(&s_times), median(&m_times));
        let speedup = m_med.as_secs_f64() / s_med.as_secs_f64().max(1e-12);
        println!(
            "{:<28} streaming: {:>12.3?}  materialized: {:>12.3?}  speedup: {:>8.2}x  ({} rows)",
            w.name, s_med, m_med, speedup, s_rows
        );
        if w.limit.is_some() {
            limit_speedups.push(speedup);
        } else {
            full_ratios.push(speedup);
        }
        entries.push(format!(
            concat!(
                "    {{\"workload\":\"{}\",\"query\":{:?},\"limit\":{},\"rows\":{},",
                "\"streaming_median_ns\":{},\"materialized_median_ns\":{},",
                "\"speedup\":{:.3}}}"
            ),
            w.name,
            w.query,
            w.limit.map(|k| k.to_string()).unwrap_or("null".into()),
            s_rows,
            s_med.as_nanos(),
            m_med.as_nanos(),
            speedup,
        ));
    }

    let min_limit_speedup = limit_speedups.iter().cloned().fold(f64::INFINITY, f64::min);
    let min_full_ratio = full_ratios.iter().cloned().fold(f64::INFINITY, f64::min);
    println!(
        "limit-bounded: min speedup {min_limit_speedup:.2}x (acceptance: >=5x) | \
         full-result: worst streaming/materialized ratio {min_full_ratio:.3} \
         (acceptance: >=0.9, i.e. no >10% regression)"
    );

    let json = format!(
        "{{\n  \"store\": {{\"objects\": {}, \"triples\": {}, \"seed\": {}}},\n  \
         \"min_limit_bounded_speedup\": {:.3},\n  \
         \"worst_full_result_ratio\": {:.3},\n  \"workloads\": [\n{}\n  ]\n}}\n",
        store.object_count(),
        triples,
        config.seed,
        min_limit_speedup,
        min_full_ratio,
        entries.join(",\n"),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_streaming.json");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("could not write {path}: {e}");
    } else {
        println!("recorded results in BENCH_streaming.json");
    }
}
