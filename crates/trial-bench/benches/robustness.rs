//! Cost and promptness of cooperative cancellation.
//!
//! Two figures back the robustness acceptance bar:
//!
//! * **Check overhead** — the same full 100k-triple scan drained row by
//!   row through two engines: one carrying the inert token, one carrying
//!   an armed deadline far in the future. Both pay the identical per-row
//!   countdown; every `CANCEL_CHECK_STRIDE` rows the inert token answers
//!   with a pointer test where the armed one reads the monotonic clock —
//!   so the measured delta is one amortized clock read per 1024 rows. The
//!   acceptance bar is **≤ 2%** throughput.
//! * **Time to release** — a transitive closure far larger than its
//!   deadline, at morsel degrees 1/2/4: how long after the deadline the
//!   evaluation actually surfaces `Cancelled` and frees its threads. The
//!   acceptance bar is **≤ 50 ms** (the serving path promises permit and
//!   worker release within 50 ms of the deadline, and the eval layer owns
//!   nearly all of that budget).
//!
//! Results land in `BENCH_robustness.json` at the repository root.
//! `TRIAL_BENCH_SMOKE=1` shrinks rounds and samples for CI.

use std::time::{Duration, Instant};
use trial_core::{Error, Expr, Triplestore};
use trial_eval::{CancelToken, EvalOptions, SmartEngine};
use trial_workloads::{chain_store, random_store, RandomStoreConfig};

struct Knobs {
    scan_rounds: usize,
    release_samples: usize,
}

fn knobs() -> Knobs {
    if std::env::var("TRIAL_BENCH_SMOKE").is_ok() {
        Knobs {
            scan_rounds: 3,
            release_samples: 2,
        }
    } else {
        Knobs {
            scan_rounds: 9,
            release_samples: 5,
        }
    }
}

/// Drains a full scan through the streaming cursor (every row passes the
/// stride-checked cancellation checkpoint) and returns rows and wall time.
fn drain_scan(engine: &SmartEngine, expr: &Expr, store: &Triplestore) -> (u64, Duration) {
    let started = Instant::now();
    let mut stream = engine
        .stream_query(expr, store, None, None, None)
        .expect("plan scan");
    let mut rows = 0_u64;
    while stream.next_triple().is_some() {
        rows += 1;
    }
    (rows, started.elapsed())
}

fn median_f64(samples: &mut [f64]) -> f64 {
    samples.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite"));
    samples[samples.len() / 2]
}

fn median_duration(samples: &mut [Duration]) -> Duration {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn main() {
    let k = knobs();
    let host_cpus = trial_eval::available_threads();
    println!(
        "cancellation: {} scan rounds, {} release samples per degree on {host_cpus} core(s)",
        k.scan_rounds, k.release_samples
    );

    // ── Check overhead on a full 100k-triple scan ────────────────────────
    let scan_store = random_store(&RandomStoreConfig {
        objects: 20_000,
        triples: 100_000,
        distinct_values: 10,
        seed: 7,
    });
    let scan = trial_parser::parse("E").expect("parse scan");
    let inert = SmartEngine::with_options(EvalOptions::default());
    // A deadline hours away: never fires, but every stride checkpoint
    // reads the clock instead of short-circuiting on the inert token.
    let armed = SmartEngine::with_options(EvalOptions {
        cancel: CancelToken::with_timeout(Duration::from_secs(3600)),
        ..EvalOptions::default()
    });

    // Warm both (plans, page-in).
    drain_scan(&inert, &scan, &scan_store);
    drain_scan(&armed, &scan, &scan_store);

    let mut inert_rps = Vec::new();
    let mut armed_rps = Vec::new();
    for round in 0..k.scan_rounds {
        // Paired within the round, alternating which engine goes first:
        // position bias (cache warmth, frequency ramps) would otherwise
        // masquerade as checker overhead on a sub-millisecond drain.
        let mut pair = Vec::new();
        let order: [&SmartEngine; 2] = if round % 2 == 0 {
            [&inert, &armed]
        } else {
            [&armed, &inert]
        };
        for engine in order {
            let (rows, spent) = drain_scan(engine, &scan, &scan_store);
            assert_eq!(rows, 100_000, "scan must cover the full store");
            pair.push(rows as f64 / spent.as_secs_f64());
        }
        if round % 2 != 0 {
            pair.reverse();
        }
        inert_rps.push(pair[0]);
        armed_rps.push(pair[1]);
    }
    let inert_m = median_f64(&mut inert_rps);
    let armed_m = median_f64(&mut armed_rps);
    let overhead_pct = 100.0 * (inert_m - armed_m) / inert_m;
    println!(
        "100k scan: inert {inert_m:.0} rows/s  armed {armed_m:.0} rows/s  \
         overhead {overhead_pct:+.1}%"
    );

    // ── Time to release after the deadline ───────────────────────────────
    // A closure whose full evaluation takes far longer than the deadline;
    // what we time is how long past the deadline `Cancelled` surfaces.
    let chain = chain_store(4000);
    let star = trial_parser::parse("STAR(E JOIN[1,2,3' | 3=1'])").expect("parse star");
    let deadline = Duration::from_millis(200);
    let mut release_ms = Vec::new();
    for threads in [1_usize, 2, 4] {
        let mut samples = Vec::new();
        for _ in 0..k.release_samples {
            let engine = SmartEngine::with_options(EvalOptions {
                threads,
                cancel: CancelToken::with_timeout(deadline),
                ..EvalOptions::default()
            });
            let started = Instant::now();
            let result = engine.evaluate_query(&star, &chain, None, None, None);
            let elapsed = started.elapsed();
            match result {
                Err(Error::Cancelled(reason)) => assert_eq!(reason, "deadline_exceeded"),
                other => panic!(
                    "closure finished under its deadline — enlarge the chain: {:?}",
                    other.map(|e| e.result.len())
                ),
            }
            samples.push(elapsed.saturating_sub(deadline));
        }
        let median = median_duration(&mut samples);
        println!("release after deadline, threads={threads}: {median:?}");
        assert!(
            median <= Duration::from_millis(50),
            "threads={threads}: released {median:?} after the deadline (budget 50ms)"
        );
        release_ms.push((threads, median.as_secs_f64() * 1e3));
    }

    // Guard against a genuine regression while leaving headroom for noise
    // on small hosts (a sub-millisecond drain on a shared core swings by
    // several percent between rounds); the committed figure comes from a
    // full run and must sit within the 2% acceptance bar.
    let guard_pct = if std::env::var("TRIAL_BENCH_SMOKE").is_ok() {
        25.0
    } else {
        10.0
    };
    assert!(
        overhead_pct <= guard_pct,
        "cancellation-check overhead {overhead_pct:.1}% is far beyond the 2% target"
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"host_cpus\": {host_cpus},\n",
            "  \"smoke\": {smoke},\n",
            "  \"config\": {{\"scan_rounds\": {rounds}, \"release_samples\": {samples}, ",
            "\"deadline_ms\": 200}},\n",
            "  \"scan_100k_rows_per_s\": {{\"inert\": {inert:.0}, \"armed\": {armed:.0}}},\n",
            "  \"check_overhead_pct\": {overhead:.2},\n",
            "  \"check_overhead_target_pct\": 2.0,\n",
            "  \"release_after_deadline_ms\": {{\"threads_1\": {r1:.2}, ",
            "\"threads_2\": {r2:.2}, \"threads_4\": {r4:.2}}},\n",
            "  \"release_target_ms\": 50.0\n",
            "}}\n"
        ),
        host_cpus = host_cpus,
        smoke = std::env::var("TRIAL_BENCH_SMOKE").is_ok(),
        rounds = k.scan_rounds,
        samples = k.release_samples,
        inert = inert_m,
        armed = armed_m,
        overhead = overhead_pct,
        r1 = release_ms[0].1,
        r2 = release_ms[1].1,
        r4 = release_ms[2].1,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_robustness.json");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("could not write {path}: {e}");
    } else {
        println!("recorded results in BENCH_robustness.json");
    }
}
