//! Theorem 4 in practice: evaluating an FO³ query directly (exhaustive
//! active-domain model checking) versus evaluating its TriAL translation with
//! the algebra engines.
//!
//! The paper's point is that the algebra has *low-degree polynomial*
//! evaluation while naive logic evaluation is exponential in the quantifier
//! rank — the measured gap here is the practical counterpart of choosing the
//! closed algebra over a general relational language. A second group measures
//! the cost of the translations themselves (they are linear-time syntax
//! transformations, so they should be negligible next to evaluation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use trial_core::builder::queries;
use trial_eval::{Engine, SmartEngine};
use trial_logic::{answers3, fo3_to_trial, trial_to_fo, Formula};
use trial_workloads::{random_store, RandomStoreConfig};

fn connected_by_some_service() -> Formula {
    Formula::exists("y", Formula::rel_vars("E", "x", "y", "z"))
}

fn bench_fo3_vs_algebra(c: &mut Criterion) {
    let formula = connected_by_some_service();
    let expr = fo3_to_trial(&formula, ["x", "y", "z"]).expect("translation");
    let engine = SmartEngine::new();

    let mut group = c.benchmark_group("thm4_fo3_vs_algebra");
    group.sample_size(10);
    for objects in [6usize, 10, 14] {
        let store = random_store(&RandomStoreConfig {
            objects,
            triples: objects * 3,
            distinct_values: 3,
            seed: 11,
        });
        group.bench_with_input(
            BenchmarkId::new("fo3_exhaustive", objects),
            &store,
            |b, store| b.iter(|| black_box(answers3(store, &formula, ["x", "y", "z"]).unwrap())),
        );
        group.bench_with_input(
            BenchmarkId::new("trial_translation", objects),
            &store,
            |b, store| b.iter(|| black_box(engine.run(&expr, store).unwrap())),
        );
    }
    group.finish();
}

fn bench_translation_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("thm4_translation_cost");
    group.sample_size(20);
    let formula = connected_by_some_service();
    group.bench_function("fo3_to_trial", |b| {
        b.iter(|| black_box(fo3_to_trial(&formula, ["x", "y", "z"]).unwrap()))
    });
    let q = queries::same_company_reachability("E");
    group.bench_function("trial_to_fo_query_q", |b| {
        b.iter(|| black_box(trial_to_fo(&q).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_fo3_vs_algebra, bench_translation_cost);
criterion_main!(benches);
