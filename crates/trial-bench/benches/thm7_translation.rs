//! Theorem 7 / Corollary 2: evaluating graph queries natively vs. through
//! their TriAL\* translations over the triplestore encoding.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use trial_eval::{Engine, SmartEngine};
use trial_graph::gxpath::{evaluate_path, NodeExpr, PathExpr};
use trial_graph::nre::{evaluate_nre, Nre};
use trial_graph::{graph_to_triplestore, nre_to_trial, path_to_trial};
use trial_workloads::random_graph;

fn bench_thm7(c: &mut Criterion) {
    let engine = SmartEngine::new();
    let nre = Nre::label("l0").then(Nre::label("l1").test()).star();
    let gxpath = PathExpr::label("l0")
        .then(PathExpr::test(
            NodeExpr::exists(PathExpr::label("l1")).not(),
        ))
        .or(PathExpr::label("l2"))
        .star();
    for nodes in [10usize, 20, 40] {
        let graph = random_graph(nodes, nodes * 3, 3, 17);
        let store = graph_to_triplestore(&graph);
        let mut group = c.benchmark_group(format!("thm7_nodes_{nodes}"));
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("nre_native", nodes), &graph, |b, g| {
            b.iter(|| black_box(evaluate_nre(g, &nre)))
        });
        let nre_expr = nre_to_trial(&nre);
        group.bench_with_input(BenchmarkId::new("nre_translated", nodes), &store, |b, s| {
            b.iter(|| black_box(engine.run(&nre_expr, s).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("gxpath_native", nodes), &graph, |b, g| {
            b.iter(|| black_box(evaluate_path(g, &gxpath)))
        });
        let gx_expr = path_to_trial(&gxpath);
        group.bench_with_input(
            BenchmarkId::new("gxpath_translated", nodes),
            &store,
            |b, s| b.iter(|| black_box(engine.run(&gx_expr, s).unwrap())),
        );
        group.finish();
    }
}

criterion_group!(benches, bench_thm7);
criterion_main!(benches);
