//! Overhead of the always-on observability layer.
//!
//! Two identical in-process servers over the same 100k-triple store — one
//! fully instrumented (request tracing, phase spans, latency histograms,
//! flight recorder: the default), one started the way `trial-serve
//! --no-obs` starts (service counters only) — drive the same workload:
//!
//! * **Throughput** — two keep-alive clients cycling a mix of cache-cold
//!   bounded scans, cached point joins and streamed scans; every request
//!   is issued to both servers back-to-back (request-level A/B alternation
//!   cancels scheduler and cache drift that round-level alternation lets
//!   through on small hosts); the reported figure is the per-server median
//!   across rounds.
//! * **TTFB** — first response byte of a streamed 100k scan, median over
//!   several raw-socket samples.
//!
//! The acceptance bar is that instrumentation costs **≤ 5%** throughput:
//! a traced request adds a handful of `Instant::now` reads, one span
//! allocation and a few relaxed atomic adds on top of parse + admission +
//! evaluation + render, which is noise next to evaluating even a bounded
//! scan. Results land in `BENCH_observability.json` at the repository root.
//! `TRIAL_BENCH_SMOKE=1` shrinks rounds and request counts for CI.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};
use trial_server::client::HttpClient;
use trial_server::{Server, ServerConfig};
use trial_workloads::{random_store, transport_network, RandomStoreConfig, TransportConfig};

const EXAMPLE2: &str = "(E JOIN[1,3',3 | 2=1'] E)";

struct Knobs {
    rounds: usize,
    requests_per_round: usize,
    ttfb_samples: usize,
}

fn knobs() -> Knobs {
    if std::env::var("TRIAL_BENCH_SMOKE").is_ok() {
        Knobs {
            rounds: 3,
            requests_per_round: 30,
            ttfb_samples: 3,
        }
    } else {
        Knobs {
            rounds: 7,
            requests_per_round: 150,
            ttfb_samples: 21,
        }
    }
}

fn spawn(observe: bool) -> Server {
    let server = Server::spawn(ServerConfig {
        observe,
        ..ServerConfig::default()
    })
    .expect("bind ephemeral server");
    server
        .registry()
        .set("transport", transport_network(&TransportConfig::default()));
    server.registry().set(
        "scan",
        random_store(&RandomStoreConfig {
            objects: 20_000,
            triples: 100_000,
            distinct_values: 10,
            seed: 7,
        }),
    );
    server
}

/// One paired throughput round: `n` requests of the mixed workload, each
/// issued to **both** servers back-to-back over their own keep-alive
/// connections, timed separately. Returns the requests-per-second each
/// server sustained. `ticket` keeps cache-cold limits distinct across
/// rounds while both servers see the identical hit/miss sequence.
fn paired_round(a: SocketAddr, b: SocketAddr, n: usize, ticket: &mut u64) -> (f64, f64) {
    let mut http_a = HttpClient::new(a);
    let mut http_b = HttpClient::new(b);
    let mut spent_a = Duration::ZERO;
    let mut spent_b = Duration::ZERO;
    for i in 0..n {
        *ticket += 1;
        let fresh_limit = 1_000 + (*ticket * 37) % 4_000;
        let path = match i % 3 {
            // Cache-friendly point join: the fastest request the server
            // serves, where fixed per-request overhead weighs the most.
            0 => "/query?store=transport".to_string(),
            // Cache-cold bounded scan, buffered.
            1 => format!("/query?store=scan&limit={fresh_limit}"),
            // Cache-cold bounded scan, streamed (chunked head + trailers).
            _ => format!("/query?store=scan&limit={fresh_limit}&stream=1"),
        };
        let body = if i % 3 == 0 { EXAMPLE2 } else { "E" };
        for (http, spent) in [(&mut http_a, &mut spent_a), (&mut http_b, &mut spent_b)] {
            let started = Instant::now();
            let response = http.post(&path, body).expect("request failed");
            *spent += started.elapsed();
            assert_eq!(response.status, 200, "{}", response.body);
        }
    }
    (
        n as f64 / spent_a.as_secs_f64(),
        n as f64 / spent_b.as_secs_f64(),
    )
}

/// Issues one raw-socket POST and returns the time to the first response
/// byte.
fn ttfb(addr: SocketAddr, path: &str, body: &str) -> Duration {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).ok();
    let head = format!(
        "POST {path} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let start = Instant::now();
    stream.write_all(head.as_bytes()).expect("write");
    stream.write_all(body.as_bytes()).expect("write body");
    stream.flush().expect("flush");
    let mut first = [0_u8; 1];
    stream.read_exact(&mut first).expect("first byte");
    let elapsed = start.elapsed();
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).expect("drain");
    elapsed
}

fn median_f64(samples: &mut [f64]) -> f64 {
    samples.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite"));
    samples[samples.len() / 2]
}

fn median_duration(samples: &mut [Duration]) -> Duration {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn main() {
    let k = knobs();
    let host_cpus = trial_eval::available_threads();
    let instrumented = spawn(true);
    let bare = spawn(false);
    println!(
        "observability overhead: {} rounds x {} requests, {} ttfb samples on {host_cpus} core(s)",
        k.rounds, k.requests_per_round, k.ttfb_samples
    );

    // Warm both servers identically (plans, caches, page-in).
    let mut ticket = 0;
    paired_round(instrumented.addr(), bare.addr(), 12, &mut ticket);

    // Request-level paired rounds: both servers serve the identical request
    // sequence, each request timed on its own keep-alive connection.
    let mut obs_rps = Vec::new();
    let mut bare_rps = Vec::new();
    for _ in 0..k.rounds {
        let (obs, bare) = paired_round(
            instrumented.addr(),
            bare.addr(),
            k.requests_per_round,
            &mut ticket,
        );
        obs_rps.push(obs);
        bare_rps.push(bare);
    }
    let obs = median_f64(&mut obs_rps);
    let no_obs = median_f64(&mut bare_rps);
    let overhead_pct = 100.0 * (no_obs - obs) / no_obs;
    println!(
        "throughput: instrumented {obs:.0} rps  --no-obs {no_obs:.0} rps  \
         overhead {overhead_pct:+.1}%"
    );

    // TTFB of a streamed full scan: planning time to first byte, where a
    // per-request tracing cost would be most visible. Single-threaded
    // evaluation keeps the first batch's production time deterministic —
    // with worker threads the figure measures scheduler luck on small
    // hosts, not instrumentation.
    let stream_path = "/query?store=scan&limit=100000&stream=1&threads=1";
    ttfb(instrumented.addr(), stream_path, "E");
    ttfb(bare.addr(), stream_path, "E");
    let mut obs_ttfb = Vec::new();
    let mut bare_ttfb = Vec::new();
    for _ in 0..k.ttfb_samples {
        obs_ttfb.push(ttfb(instrumented.addr(), stream_path, "E"));
        bare_ttfb.push(ttfb(bare.addr(), stream_path, "E"));
    }
    let obs_t = median_duration(&mut obs_ttfb);
    let bare_t = median_duration(&mut bare_ttfb);
    println!("ttfb 100k streamed scan: instrumented {obs_t:?}  --no-obs {bare_t:?}");

    // The instrumented server really was observing: spans and histograms
    // exist there and not on the bare server.
    let metrics = HttpClient::new(instrumented.addr())
        .get("/metrics")
        .expect("metrics");
    assert!(
        metrics.body.contains("trial_request_duration_us_bucket"),
        "instrumented server recorded no latency histograms"
    );
    let bare_metrics = HttpClient::new(bare.addr())
        .get("/metrics")
        .expect("metrics");
    assert!(
        !bare_metrics
            .body
            .contains("trial_request_duration_us_bucket"),
        "--no-obs server recorded latency histograms"
    );

    // Guard against a genuine regression while leaving headroom for
    // scheduler noise on small hosts; the committed figure comes from a
    // full run and must sit within the 5% acceptance bar.
    assert!(
        overhead_pct <= 15.0,
        "observability overhead {overhead_pct:.1}% is far beyond the 5% target"
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"host_cpus\": {host_cpus},\n",
            "  \"smoke\": {smoke},\n",
            "  \"config\": {{\"rounds\": {rounds}, \"requests_per_round\": {rpr}, ",
            "\"ttfb_samples\": {samples}}},\n",
            "  \"throughput_rps\": {{\"instrumented\": {obs:.1}, \"no_obs\": {no_obs:.1}}},\n",
            "  \"overhead_pct\": {overhead:.2},\n",
            "  \"overhead_target_pct\": 5.0,\n",
            "  \"ttfb_100k_stream_ns\": {{\"instrumented\": {obs_t}, \"no_obs\": {bare_t}}}\n",
            "}}\n"
        ),
        host_cpus = host_cpus,
        smoke = std::env::var("TRIAL_BENCH_SMOKE").is_ok(),
        rounds = k.rounds,
        rpr = k.requests_per_round,
        samples = k.ttfb_samples,
        obs = obs,
        no_obs = no_obs,
        overhead = overhead_pct,
        obs_t = obs_t.as_nanos(),
        bare_t = bare_t.as_nanos(),
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_observability.json"
    );
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("could not write {path}: {e}");
    } else {
        println!("recorded results in BENCH_observability.json");
    }
    instrumented.shutdown();
    bare.shutdown();
}
