//! Ordered execution vs. the hash-based baselines over a ≥100k-triple store.
//!
//! Two workload families:
//!
//! * **merge vs hash join** — the same two-sided relation join evaluated
//!   with merge joins enabled (`use_merge_join: true`, the default: a
//!   synchronized pass over two permutation runs, zero hash tables) and
//!   disabled (the pre-ordered planner: hash or index nested-loop);
//! * **topk vs limit+sort** — `?topk=k`-style queries (bounded heap, or a
//!   plain early-terminating limit when the plan streams ordered) against
//!   the client-side alternative: evaluate the full result, sort it by the
//!   permutation key, truncate to k.
//!
//! Besides the printed report, medians land in `BENCH_ordered.json` at the
//! repository root so results ride along with the code.

use criterion::black_box;
use std::time::{Duration, Instant};
use trial_core::{Permutation, Triplestore};
use trial_eval::{Engine, EvalOptions, SmartEngine};
use trial_parser::parse;
use trial_workloads::{random_store, RandomStoreConfig};

fn merging() -> SmartEngine {
    SmartEngine::new()
}

fn hashing() -> SmartEngine {
    SmartEngine::with_options(EvalOptions {
        use_merge_join: false,
        ..EvalOptions::default()
    })
}

/// One warm-up call, then `samples` timed runs; returns sorted durations.
fn time_runs(samples: usize, mut f: impl FnMut() -> usize) -> (Vec<Duration>, usize) {
    let rows = f();
    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        black_box(f());
        times.push(start.elapsed());
    }
    times.sort_unstable();
    (times, rows)
}

fn median(times: &[Duration]) -> Duration {
    times[times.len() / 2]
}

fn report(
    entries: &mut Vec<String>,
    family: &str,
    name: &str,
    query: &str,
    rows: usize,
    ordered: Duration,
    baseline: Duration,
) -> f64 {
    let speedup = baseline.as_secs_f64() / ordered.as_secs_f64().max(1e-12);
    println!(
        "{:<26} ordered: {:>12.3?}  baseline: {:>12.3?}  speedup: {:>7.2}x  ({} rows)",
        name, ordered, baseline, speedup, rows
    );
    entries.push(format!(
        concat!(
            "    {{\"family\":\"{}\",\"workload\":\"{}\",\"query\":{:?},\"rows\":{},",
            "\"ordered_median_ns\":{},\"baseline_median_ns\":{},\"speedup\":{:.3}}}"
        ),
        family,
        name,
        query,
        rows,
        ordered.as_nanos(),
        baseline.as_nanos(),
        speedup,
    ));
    speedup
}

fn main() {
    let config = RandomStoreConfig {
        objects: 20_000,
        triples: 100_000,
        distinct_values: 10,
        seed: 11,
    };
    let store: Triplestore = random_store(&config);
    let triples = store.triple_count();
    assert!(triples >= 100_000, "store too small: {triples}");
    println!(
        "store: {} objects, {} triples",
        store.object_count(),
        triples
    );

    let mut entries = Vec::new();

    // Family 1: merge join vs hash/index join, full results.
    for (name, query) in [
        ("join/composition-3=1'", "(E JOIN[1,2,3' | 3=1'] E)"),
        ("join/label-2=1'", "(E JOIN[1,3',3 | 2=1'] E)"),
        (
            "join/filtered-3=1'",
            "SELECT[1!=3]((E JOIN[1,2,3' | 3=1'] E))",
        ),
    ] {
        let expr = parse(query).unwrap();
        let merged = merging().evaluate(&expr, &store).unwrap();
        let hashed = hashing().evaluate(&expr, &store).unwrap();
        assert_eq!(
            merged.result, hashed.result,
            "strategies disagree on {name}"
        );
        assert_eq!(
            merged.stats.hash_tables_built, 0,
            "merge plan built a hash table on {name}"
        );
        assert!(hashed.stats.hash_tables_built <= 1);
        let (m_times, rows) = time_runs(10, || merging().run(&expr, &store).unwrap().len());
        let (h_times, h_rows) = time_runs(10, || hashing().run(&expr, &store).unwrap().len());
        assert_eq!(rows, h_rows);
        report(
            &mut entries,
            "merge_vs_hash",
            name,
            query,
            rows,
            median(&m_times),
            median(&h_times),
        );
    }

    // Family 2: top-k pushdown vs evaluate-fully-then-sort-then-truncate.
    let k = 32;
    for (name, query, perm) in [
        ("topk/scan-pos", "E", Permutation::Pos),
        (
            "topk/filtered-scan-osp",
            "SELECT[1!=3](E)",
            Permutation::Osp,
        ),
        (
            "topk/join-pos",
            "(E JOIN[1,2,3' | 3=1'] E)",
            Permutation::Pos,
        ),
    ] {
        let expr = parse(query).unwrap();
        let engine = merging();
        // Cross-check: pushed-down top-k equals the client-side sort.
        let pushed = engine
            .evaluate_query(&expr, &store, None, Some(perm), Some(k))
            .unwrap();
        let mut sorted = engine.run(&expr, &store).unwrap().into_vec();
        sorted.sort_unstable_by_key(|t| perm.key(t));
        sorted.truncate(k);
        let want: trial_core::TripleSet = sorted.iter().copied().collect();
        assert_eq!(pushed.result, want, "top-k diverges on {name}");
        let (p_times, rows) = time_runs(12, || {
            engine
                .evaluate_query(&expr, &store, None, Some(perm), Some(k))
                .unwrap()
                .result
                .len()
        });
        let (s_times, _) = time_runs(12, || {
            let mut rows = engine.run(&expr, &store).unwrap().into_vec();
            rows.sort_unstable_by_key(|t| perm.key(t));
            rows.truncate(k);
            rows.len()
        });
        report(
            &mut entries,
            "topk_vs_limit_sort",
            name,
            query,
            rows,
            median(&p_times),
            median(&s_times),
        );
    }

    let json = format!(
        "{{\n  \"store\": {{\"objects\": {}, \"triples\": {}, \"seed\": {}}},\n  \
         \"k\": {},\n  \"workloads\": [\n{}\n  ]\n}}\n",
        store.object_count(),
        triples,
        config.seed,
        k,
        entries.join(",\n"),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ordered.json");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("could not write {path}: {e}");
    } else {
        println!("recorded results in BENCH_ordered.json");
    }
}
