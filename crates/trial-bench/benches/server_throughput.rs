//! End-to-end serving throughput: full HTTP round trips against an
//! in-process `trial-server`, separating the LRU cache-hit path (no parse,
//! no plan, no eval) from the cache-miss path (the whole pipeline per
//! request). The gap between the two is the headroom the cache buys a
//! read-heavy workload; the miss number is the end-to-end cost a cold query
//! pays on top of the engine microbenchmarks.

use criterion::{criterion_group, criterion_main, Criterion};
use trial_server::{client, Server, ServerConfig};
use trial_workloads::{transport_network, TransportConfig};

const EXAMPLE2: &str = "(E JOIN[1,3',3 | 2=1'] E)";
const REACH: &str = "STAR(E JOIN[1,2,3' | 3=1'])";

fn spawn(cache_capacity: usize) -> Server {
    let server = Server::spawn(ServerConfig {
        cache_capacity,
        workers: 4,
        ..ServerConfig::default()
    })
    .expect("bind ephemeral server");
    server
        .registry()
        .set("transport", transport_network(&TransportConfig::default()));
    server
}

fn server_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("server_throughput");
    group.sample_size(40);

    // Cache-hit path: warm the entry once, then every request is a lookup.
    let warm = spawn(128);
    let warm_addr = warm.addr();
    let response = client::post(warm_addr, "/query", EXAMPLE2).expect("warm-up query");
    assert!(response.is_ok(), "{}", response.body);
    group.bench_function("query_example2_cache_hit", |b| {
        b.iter(|| {
            let r = client::post(warm_addr, "/query", EXAMPLE2).expect("query");
            assert!(r.body.contains("\"cached\":true"));
            r
        })
    });

    // Cache-miss path: capacity 0 disables the cache, so every request runs
    // parse + plan + evaluate + render.
    let cold = spawn(0);
    let cold_addr = cold.addr();
    group.bench_function("query_example2_cache_miss", |b| {
        b.iter(|| {
            let r = client::post(cold_addr, "/query", EXAMPLE2).expect("query");
            assert!(r.body.contains("\"cached\":false"));
            r
        })
    });
    group.bench_function("query_reach_star_cache_miss", |b| {
        b.iter(|| client::post(cold_addr, "/query?limit=0", REACH).expect("query"))
    });
    group.bench_function("explain_example2_cache_miss", |b| {
        b.iter(|| client::post(cold_addr, "/explain", EXAMPLE2).expect("explain"))
    });

    group.finish();
    warm.shutdown();
    cold.shutdown();
}

criterion_group!(benches, server_throughput);
criterion_main!(benches);
