//! Saturation load harness for the streaming serving path.
//!
//! Two experiments against one in-process `trial-server`:
//!
//! * **Time-to-first-byte** — a full scan of a 100k-triple store, buffered
//!   vs. `?stream=1`. The buffered path renders the entire body before the
//!   first byte leaves; the chunked path flushes its head right after
//!   planning, so TTFB collapses from "evaluation + render time" to
//!   "planning time" while total transfer time stays comparable. Measured
//!   on a raw socket (first readable byte), medians over several runs.
//!
//! * **Saturation** — hundreds of concurrent keep-alive clients driving a
//!   mixed workload (cache-friendly point joins, fresh bounded scans,
//!   ordered responses, cursor-paginated walks) against a server whose
//!   admission control is deliberately tight. The server is
//!   thread-per-connection, so sockets are provisioned per client and the
//!   scarce resource is the per-store evaluation permit pool. The harness
//!   asserts the saturation contract: **every** request ends in a complete
//!   `200` or a structured `429` with `Retry-After` — no hangs, no resets,
//!   no truncated bodies — and reports throughput, latency quantiles and
//!   the shed rate.
//!
//! Results land in `BENCH_serving.json` at the repository root (host core
//! count, TTFB medians + ratio, throughput, p50/p99, peak RSS via
//! `/proc/self/status` `VmHWM`). `TRIAL_BENCH_SMOKE=1` shrinks the client
//! fleet and duration for CI smoke runs; the committed JSON comes from a
//! full run.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use trial_server::client::HttpClient;
use trial_server::{Server, ServerConfig};
use trial_workloads::{random_store, transport_network, RandomStoreConfig, TransportConfig};

const EXAMPLE2: &str = "(E JOIN[1,3',3 | 2=1'] E)";

struct Knobs {
    clients: usize,
    duration: Duration,
    ttfb_samples: usize,
    permits: usize,
    max_waiters: usize,
}

fn knobs() -> Knobs {
    if std::env::var("TRIAL_BENCH_SMOKE").is_ok() {
        Knobs {
            clients: 16,
            duration: Duration::from_millis(750),
            ttfb_samples: 3,
            permits: 2,
            max_waiters: 4,
        }
    } else {
        Knobs {
            clients: 200,
            duration: Duration::from_secs(4),
            ttfb_samples: 7,
            permits: 8,
            max_waiters: 32,
        }
    }
}

/// Issues one `Connection: close` POST on a raw socket and returns
/// `(time to first response byte, time to full body, bytes received)`.
fn timed_request(addr: SocketAddr, path: &str, body: &str) -> (Duration, Duration, usize) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).ok();
    let head = format!(
        "POST {path} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let start = Instant::now();
    stream.write_all(head.as_bytes()).expect("write head");
    stream.write_all(body.as_bytes()).expect("write body");
    stream.flush().expect("flush");
    let mut first = [0_u8; 1];
    stream.read_exact(&mut first).expect("first byte");
    let ttfb = start.elapsed();
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).expect("drain");
    (ttfb, start.elapsed(), 1 + rest.len())
}

fn median(samples: &mut [Duration]) -> Duration {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// `VmHWM` (peak resident set) of this process in KiB, Linux only.
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Per-client tally; merged after the fleet joins.
#[derive(Default)]
struct Tally {
    ok: u64,
    rejected: u64,
    streamed: u64,
    pages: u64,
    latencies_ns: Vec<u64>,
}

/// One client's request loop: a keep-alive connection cycling through the
/// mixed workload until the stop flag flips. Every response must be a
/// complete 200 or a structured 429 — anything else panics the harness.
fn client_loop(addr: SocketAddr, id: usize, stop: &AtomicBool, seq: &AtomicU64) -> Tally {
    let mut http = HttpClient::new(addr);
    let mut tally = Tally::default();
    while !stop.load(Ordering::Relaxed) {
        let ticket = seq.fetch_add(1, Ordering::Relaxed);
        // Vary ?limit= so scan traffic stays cache-cold: each distinct limit
        // is a distinct cache key, so these requests pay parse + admission +
        // evaluation — the path saturation is about.
        let fresh_limit = 1_000 + (ticket * 37) % 4_000;
        let started = Instant::now();
        let (response, streamed) = match id % 4 {
            // Cache-friendly point join on the small store: the read-heavy
            // baseline traffic that must keep flowing while scans saturate.
            0 => (http.post("/query?store=transport", EXAMPLE2), false),
            // Fresh bounded scan, buffered.
            1 => (
                http.post(&format!("/query?store=scan&limit={fresh_limit}"), "E"),
                false,
            ),
            // Fresh bounded scan, streamed through the exchange.
            2 => (
                http.post(
                    &format!("/query?store=scan&limit={fresh_limit}&stream=1"),
                    "E",
                ),
                true,
            ),
            // Ordered + paginated: first page here, cursor pages below.
            _ => (
                http.post("/query?store=scan&order=spo&limit=500&stream=1", "E"),
                true,
            ),
        };
        let response = response.expect("request failed (hang/reset/truncation)");
        match response.status {
            200 => {
                tally.ok += 1;
                if streamed {
                    tally.streamed += 1;
                    assert!(response.chunked, "streamed 200 without chunking");
                    assert!(
                        response.trailer("X-Trial-Count").is_some(),
                        "chunked response missing its trailers: truncated body?"
                    );
                }
            }
            429 => {
                assert!(
                    response.header("Retry-After").is_some(),
                    "429 without Retry-After"
                );
                assert!(response.body.contains("saturated"), "{}", response.body);
                tally.rejected += 1;
            }
            other => panic!("unexpected status {other}: {}", response.body),
        }
        tally.latencies_ns.push(started.elapsed().as_nanos() as u64);

        // Walk the pagination chain while the page stream stays truncated.
        if id % 4 == 3 && response.status == 200 {
            let mut cursor = response.trailer("X-Trial-Cursor").map(str::to_owned);
            let mut hops = 0;
            while let Some(token) = cursor.take() {
                if stop.load(Ordering::Relaxed) || hops >= 3 {
                    break;
                }
                let page_started = Instant::now();
                let page = http
                    .post(&format!("/query?store=scan&limit=500&cursor={token}"), "E")
                    .expect("cursor page failed");
                match page.status {
                    200 => {
                        tally.ok += 1;
                        tally.streamed += 1;
                        tally.pages += 1;
                        cursor = page.trailer("X-Trial-Cursor").map(str::to_owned);
                    }
                    429 => tally.rejected += 1,
                    other => panic!("unexpected page status {other}: {}", page.body),
                }
                tally
                    .latencies_ns
                    .push(page_started.elapsed().as_nanos() as u64);
                hops += 1;
            }
        }
    }
    tally
}

fn main() {
    let k = knobs();
    let host_cpus = trial_eval::available_threads();

    // Thread-per-connection: each keep-alive client pins one worker, so the
    // socket pool is provisioned per client and the *evaluation permit pool*
    // is what saturates — admission control, not accept backlog, decides who
    // gets served.
    let server = Server::spawn(ServerConfig {
        workers: k.clients + 8,
        admission_permits: k.permits,
        admission_max_waiters: k.max_waiters,
        admission_wait: Duration::from_millis(250),
        ..ServerConfig::default()
    })
    .expect("bind ephemeral server");
    let addr = server.addr();
    server
        .registry()
        .set("transport", transport_network(&TransportConfig::default()));
    let scan = random_store(&RandomStoreConfig {
        objects: 20_000,
        triples: 100_000,
        distinct_values: 10,
        seed: 7,
    });
    assert!(scan.triple_count() >= 100_000);
    let scan_triples = scan.triple_count();
    server.registry().set("scan", scan);
    println!(
        "serving saturation: {} clients for {:?} against {} permits / {} waiters on {host_cpus} core(s)",
        k.clients, k.duration, k.permits, k.max_waiters
    );

    // ---- TTFB: buffered vs. streamed full scan of the 100k store --------
    let scan_path = "/query?store=scan&limit=100000";
    let stream_path = "/query?store=scan&limit=100000&stream=1";
    timed_request(addr, scan_path, "E"); // warm both paths (plan + page in)
    timed_request(addr, stream_path, "E");
    let mut buffered_ttfb = Vec::new();
    let mut buffered_total = Vec::new();
    let mut streamed_ttfb = Vec::new();
    let mut streamed_total = Vec::new();
    let mut bytes = 0;
    for _ in 0..k.ttfb_samples {
        // The buffered fragment is cached after the warm-up; ?threads= is
        // part of the cache key, so alternate it to keep the render fresh.
        let (t, total, _) = timed_request(addr, &format!("{scan_path}&threads=2"), "E");
        buffered_ttfb.push(t);
        buffered_total.push(total);
        let (t, total, b) = timed_request(addr, &format!("{stream_path}&threads=2"), "E");
        streamed_ttfb.push(t);
        streamed_total.push(total);
        bytes = b;
    }
    let b_ttfb = median(&mut buffered_ttfb);
    let s_ttfb = median(&mut streamed_ttfb);
    let b_total = median(&mut buffered_total);
    let s_total = median(&mut streamed_total);
    let ttfb_ratio = b_ttfb.as_secs_f64() / s_ttfb.as_secs_f64().max(1e-12);
    println!(
        "ttfb 100k-scan: buffered {b_ttfb:?} (total {b_total:?})  streamed {s_ttfb:?} \
         (total {s_total:?})  ratio {ttfb_ratio:.1}x  ({bytes} bytes on the wire)"
    );
    assert!(
        ttfb_ratio >= 10.0,
        "streaming must improve first-byte latency >=10x on the 100k scan, got {ttfb_ratio:.1}x"
    );

    // ---- Saturation: the mixed-traffic client fleet ----------------------
    let stop = Arc::new(AtomicBool::new(false));
    let seq = Arc::new(AtomicU64::new(0));
    let started = Instant::now();
    let tallies: Vec<Tally> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..k.clients)
            .map(|id| {
                let stop = Arc::clone(&stop);
                let seq = Arc::clone(&seq);
                scope.spawn(move || client_loop(addr, id, &stop, &seq))
            })
            .collect();
        std::thread::sleep(k.duration);
        stop.store(true, Ordering::Relaxed);
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let elapsed = started.elapsed();

    let mut ok = 0;
    let mut rejected = 0;
    let mut streamed = 0;
    let mut pages = 0;
    let mut latencies: Vec<u64> = Vec::new();
    for t in tallies {
        ok += t.ok;
        rejected += t.rejected;
        streamed += t.streamed;
        pages += t.pages;
        latencies.extend(t.latencies_ns);
    }
    latencies.sort_unstable();
    let quantile = |q: f64| -> u64 {
        if latencies.is_empty() {
            return 0;
        }
        let at = ((latencies.len() - 1) as f64 * q).round() as usize;
        latencies[at]
    };
    let total = ok + rejected;
    let throughput = ok as f64 / elapsed.as_secs_f64();
    let p50 = quantile(0.50);
    let p99 = quantile(0.99);
    assert!(ok > 0, "no request succeeded under saturation");
    assert!(
        streamed > 0 && pages > 0,
        "the mixed workload must exercise streaming and pagination"
    );
    println!(
        "saturation: {total} requests in {elapsed:?} — {ok} ok ({throughput:.0} rps), \
         {rejected} shed as 429 ({:.1}%), {streamed} streamed, {pages} cursor pages",
        100.0 * rejected as f64 / total.max(1) as f64
    );
    println!(
        "latency: p50 {:?}  p99 {:?}",
        Duration::from_nanos(p50),
        Duration::from_nanos(p99)
    );

    // Health must agree: nothing left in flight or queued once the fleet is
    // gone. A client observes its complete response a hair before the
    // server-side job drops the permit, so poll briefly instead of trusting
    // the first snapshot.
    let mut health_client = HttpClient::new(addr);
    let deadline = Instant::now() + Duration::from_secs(2);
    loop {
        let health = health_client.get("/healthz").expect("healthz");
        assert_eq!(health.status, 200);
        let in_flight = health
            .body
            .split("\"in_flight\":")
            .nth(1)
            .and_then(|s| s.split(',').next())
            .and_then(|s| s.parse::<u64>().ok())
            .expect("in_flight counter");
        if in_flight == 0 {
            break;
        }
        assert!(Instant::now() < deadline, "permits leaked: {}", health.body);
        std::thread::sleep(Duration::from_millis(20));
    }
    let peak_rss = peak_rss_kb();
    if let Some(kb) = peak_rss {
        println!("peak rss: {:.1} MiB", kb as f64 / 1024.0);
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"host_cpus\": {host_cpus},\n",
            "  \"smoke\": {smoke},\n",
            "  \"config\": {{\"clients\": {clients}, \"duration_ms\": {duration_ms}, ",
            "\"admission_permits\": {permits}, \"admission_max_waiters\": {waiters}}},\n",
            "  \"scan_store_triples\": {scan_triples},\n",
            "  \"ttfb_100k_scan\": {{\"buffered_ns\": {b_ttfb}, \"streamed_ns\": {s_ttfb}, ",
            "\"buffered_total_ns\": {b_total}, \"streamed_total_ns\": {s_total}, ",
            "\"ratio\": {ratio:.1}, \"body_bytes\": {bytes}}},\n",
            "  \"saturation\": {{\"requests\": {total}, \"ok\": {ok}, \"rejected_429\": {rejected}, ",
            "\"failures\": 0, \"streamed\": {streamed}, \"cursor_pages\": {pages}, ",
            "\"throughput_rps\": {rps:.1}, \"p50_ns\": {p50}, \"p99_ns\": {p99}}},\n",
            "  \"peak_rss_kb\": {rss}\n",
            "}}\n"
        ),
        host_cpus = host_cpus,
        smoke = std::env::var("TRIAL_BENCH_SMOKE").is_ok(),
        clients = k.clients,
        duration_ms = k.duration.as_millis(),
        permits = k.permits,
        waiters = k.max_waiters,
        scan_triples = scan_triples,
        b_ttfb = b_ttfb.as_nanos(),
        s_ttfb = s_ttfb.as_nanos(),
        b_total = b_total.as_nanos(),
        s_total = s_total.as_nanos(),
        ratio = ttfb_ratio,
        bytes = bytes,
        total = total,
        ok = ok,
        rejected = rejected,
        streamed = streamed,
        pages = pages,
        rps = throughput,
        p50 = p50,
        p99 = p99,
        rss = peak_rss.map_or("null".to_owned(), |kb| kb.to_string()),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serving.json");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("could not write {path}: {e}");
    } else {
        println!("recorded results in BENCH_serving.json");
    }
    server.shutdown();
}
