//! Micro-benchmarks of the physical join operators (nested loop vs. hash)
//! across join shapes with and without hashable equality keys.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use trial_core::{output, Conditions, Expr, Pos};
use trial_eval::{Engine, NaiveEngine, SmartEngine};
use trial_workloads::{random_store, RandomStoreConfig};

fn bench_joins(c: &mut Criterion) {
    let store = random_store(&RandomStoreConfig {
        objects: 150,
        triples: 500,
        distinct_values: 8,
        seed: 3,
    });
    // Equality join (hashable), inequality join (not hashable), data join.
    let eq_join = Expr::rel("E").join(
        Expr::rel("E"),
        output(Pos::L1, Pos::L2, Pos::R3),
        Conditions::new().obj_eq(Pos::L3, Pos::R1),
    );
    let neq_join = Expr::rel("E").join(
        Expr::rel("E"),
        output(Pos::L1, Pos::L2, Pos::R3),
        Conditions::new()
            .obj_neq(Pos::L1, Pos::R1)
            .obj_eq(Pos::L2, Pos::R2),
    );
    let data_join = Expr::rel("E").join(
        Expr::rel("E"),
        output(Pos::L1, Pos::L2, Pos::R3),
        Conditions::new()
            .obj_eq(Pos::L3, Pos::R1)
            .data_eq(Pos::L1, Pos::R3),
    );
    let naive = NaiveEngine::new();
    let smart = SmartEngine::new();
    let mut group = c.benchmark_group("join_operators");
    group.sample_size(10);
    for (qname, query) in [("eq", &eq_join), ("neq", &neq_join), ("data", &data_join)] {
        for (ename, engine) in [
            ("naive", &naive as &dyn Engine),
            ("smart", &smart as &dyn Engine),
        ] {
            group.bench_with_input(BenchmarkId::new(qname, ename), &store, |b, store| {
                b.iter(|| black_box(engine.run(query, store).unwrap()))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_joins);
criterion_main!(benches);
