//! Proposition 4: TriAL⁼ (equality-only) joins — hash join vs. nested loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use trial_core::builder::queries;
use trial_eval::{Engine, NaiveEngine, SmartEngine};
use trial_workloads::{random_store, RandomStoreConfig};

fn bench_prop4(c: &mut Criterion) {
    let naive = NaiveEngine::new();
    let smart = SmartEngine::new();
    let query = queries::example2("E");
    for (name, engine) in [
        ("naive_nested_loop", &naive as &dyn Engine),
        ("smart_hash_join", &smart as &dyn Engine),
    ] {
        let mut group = c.benchmark_group(format!("prop4_{name}"));
        group.sample_size(10);
        for triples in [200usize, 400, 800] {
            let store = random_store(&RandomStoreConfig {
                objects: triples / 2,
                triples,
                distinct_values: 5,
                seed: 4,
            });
            group.bench_with_input(BenchmarkId::from_parameter(triples), &store, |b, store| {
                b.iter(|| black_box(engine.run(&query, store).unwrap()))
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_prop4);
criterion_main!(benches);
