//! Regular path queries: the Thompson-NFA product walk against the TriAL
//! star lowering, over chain / cycle / grid workloads.
//!
//! Every closure-free case is evaluated **both** ways and the result sets
//! are asserted equal before anything is timed — the benchmark doubles as a
//! coarse differential check on real workload shapes. Bounded cases
//! (`max_hops`) run NFA-only: the TriAL lowering evaluates full fixpoints
//! and cannot express a hop budget, which is exactly why the NFA strategy
//! exists.
//!
//! Besides the printed report, medians land in `BENCH_rpq.json` at the
//! repository root so results ride along with the code.
//! `TRIAL_BENCH_SMOKE=1` shrinks the stores for CI.

use criterion::black_box;
use std::time::{Duration, Instant};
use trial_core::Triplestore;
use trial_eval::rpq::{self, PathStrategy};
use trial_eval::{CancelToken, Engine, EvalStats, SmartEngine};
use trial_parser::parse_path;
use trial_workloads::{
    chain_path_suite, cycle_path_suite, grid_path_suite, grid_store, labeled_chain_store,
    labeled_cycle_store, PathCase,
};

/// One warm-up call, then `samples` timed runs; returns sorted durations.
fn time_runs(samples: usize, mut f: impl FnMut() -> usize) -> (Vec<Duration>, usize) {
    let rows = f();
    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        black_box(f());
        times.push(start.elapsed());
    }
    times.sort_unstable();
    (times, rows)
}

fn median(times: &[Duration]) -> Duration {
    times[times.len() / 2]
}

fn nfa_eval(store: &Triplestore, case: &PathCase) -> trial_core::TripleSet {
    let path = parse_path(case.path).unwrap();
    let mut stats = EvalStats::new();
    rpq::eval_on_store(
        store,
        "E",
        &path,
        case.max_hops,
        1,
        &CancelToken::none(),
        &mut stats,
    )
    .unwrap()
}

fn lowered_eval(store: &Triplestore, case: &PathCase) -> trial_core::TripleSet {
    let path = parse_path(case.path).unwrap();
    let lowered = rpq::lower(&path, "E");
    SmartEngine::new().run(&lowered, store).unwrap()
}

fn main() {
    let smoke = std::env::var("TRIAL_BENCH_SMOKE").is_ok();
    let (chain_len, cycle_len, grid_n, samples) = if smoke {
        (24, 12, 5, 3)
    } else {
        (200, 64, 12, 10)
    };

    let workloads: Vec<(&str, Triplestore, Vec<PathCase>)> = vec![
        (
            "chain",
            labeled_chain_store(chain_len, &["a", "b"]),
            chain_path_suite(),
        ),
        (
            "cycle",
            labeled_cycle_store(cycle_len, &["next"]),
            cycle_path_suite(),
        ),
        ("grid", grid_store(grid_n), grid_path_suite()),
    ];

    let mut entries = Vec::new();
    for (shape, store, suite) in &workloads {
        println!(
            "{shape}: {} objects, {} triples",
            store.object_count(),
            store.triple_count()
        );
        for case in suite {
            let path = parse_path(case.path).unwrap();
            let resolved = PathStrategy::Auto.resolves_to_nfa(&path, case.max_hops);
            let (nfa_times, rows) = time_runs(samples, || nfa_eval(store, case).len());
            let lower_median_ns = if case.max_hops.is_none() {
                // Cross-check before timing: the two strategies must agree
                // byte-for-byte on the pair set.
                let nfa_set = nfa_eval(store, case);
                let lowered_set = lowered_eval(store, case);
                assert_eq!(
                    nfa_set, lowered_set,
                    "NFA and lowering disagree on {}",
                    case.name
                );
                let (lower_times, lower_rows) =
                    time_runs(samples, || lowered_eval(store, case).len());
                assert_eq!(rows, lower_rows);
                Some(median(&lower_times).as_nanos())
            } else {
                None
            };
            let nfa_median = median(&nfa_times);
            match lower_median_ns {
                Some(lower_ns) => println!(
                    "{:<26} {:<16} nfa: {:>12.3?}  lower: {:>9}ns  ({} rows, auto→{})",
                    case.name,
                    case.path,
                    nfa_median,
                    lower_ns,
                    rows,
                    if resolved { "nfa" } else { "lower" },
                ),
                None => println!(
                    "{:<26} {:<16} nfa: {:>12.3?}  (bounded to {} hops, {} rows)",
                    case.name,
                    case.path,
                    nfa_median,
                    case.max_hops.unwrap(),
                    rows,
                ),
            }
            entries.push(format!(
                concat!(
                    "    {{\"shape\":\"{}\",\"name\":\"{}\",\"path\":{:?},",
                    "\"max_hops\":{},\"auto_strategy\":\"{}\",\"rows\":{},",
                    "\"nfa_median_ns\":{},\"lower_median_ns\":{}}}"
                ),
                shape,
                case.name,
                case.path,
                case.max_hops
                    .map_or_else(|| "null".to_owned(), |h| h.to_string()),
                if resolved { "nfa" } else { "lower" },
                rows,
                nfa_median.as_nanos(),
                lower_median_ns.map_or_else(|| "null".to_owned(), |ns| ns.to_string()),
            ));
        }
    }

    let json = format!(
        "{{\n  \"sizes\": {{\"chain\": {chain_len}, \"cycle\": {cycle_len}, \"grid\": {grid_n}}},\n  \
         \"smoke\": {smoke},\n  \"cases\": [\n{}\n  ]\n}}\n",
        entries.join(",\n"),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_rpq.json");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("could not write {path}: {e}");
    } else {
        println!("recorded results in BENCH_rpq.json");
    }
}
