//! A small parser/validator for the Prometheus text exposition format.
//!
//! This is the consumer half of the crate: tests and the CI scrape smoke
//! feed `/metrics` output through [`parse`] and assert on the returned
//! samples. Validation is deliberately strict about the invariants a real
//! scraper relies on:
//!
//! - every line is `# HELP`, `# TYPE`, a sample, or blank;
//! - a family's `# TYPE` appears before any of its samples;
//! - sample names match their family (`_bucket`/`_sum`/`_count` suffixes
//!   only under a `histogram` type);
//! - histogram buckets carry `le`, are cumulative (non-decreasing), and the
//!   `+Inf` bucket equals `_count`.

use std::collections::HashMap;

/// One parsed sample line.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Full sample name as written (including `_bucket`/`_sum`/`_count`).
    pub name: String,
    /// Label pairs in source order (histogram `le` included).
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

/// A parsed exposition: samples plus the declared family types.
#[derive(Debug, Default)]
pub struct Exposition {
    /// Every sample line, in source order.
    pub samples: Vec<Sample>,
    /// Family name → declared type (`counter`/`gauge`/`histogram`/…).
    pub types: HashMap<String, String>,
}

impl Exposition {
    /// The value of the series with exactly the given labels.
    pub fn value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.samples
            .iter()
            .find(|s| {
                s.name == name
                    && s.labels.len() == labels.len()
                    && labels
                        .iter()
                        .all(|(k, v)| s.labels.iter().any(|(sk, sv)| sk == k && sv == v))
            })
            .map(|s| s.value)
    }

    /// Sum of every series sharing `name` (any labels).
    pub fn sum(&self, name: &str) -> f64 {
        self.samples
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.value)
            .sum()
    }
}

/// The family a sample name belongs to, honouring histogram suffixes.
fn family_of<'a>(name: &'a str, types: &HashMap<String, String>) -> &'a str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(stem) = name.strip_suffix(suffix) {
            if types.get(stem).map(String::as_str) == Some("histogram") {
                return stem;
            }
        }
    }
    name
}

/// Parses and validates an exposition; returns the first violation as `Err`.
pub fn parse(text: &str) -> Result<Exposition, String> {
    let mut expo = Exposition::default();
    let mut helped: HashMap<String, ()> = HashMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, _) = rest
                .split_once(' ')
                .ok_or_else(|| format!("line {n}: HELP without text"))?;
            helped.insert(name.to_owned(), ());
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, kind) = rest
                .split_once(' ')
                .ok_or_else(|| format!("line {n}: TYPE without kind"))?;
            if !matches!(
                kind,
                "counter" | "gauge" | "histogram" | "summary" | "untyped"
            ) {
                return Err(format!("line {n}: unknown TYPE {kind:?}"));
            }
            if expo
                .types
                .insert(name.to_owned(), kind.to_owned())
                .is_some()
            {
                return Err(format!("line {n}: duplicate TYPE for {name}"));
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // plain comment
        }
        let sample = parse_sample(line).map_err(|e| format!("line {n}: {e}"))?;
        let family = family_of(&sample.name, &expo.types);
        if !expo.types.contains_key(family) {
            return Err(format!(
                "line {n}: sample {} before its # TYPE",
                sample.name
            ));
        }
        // A histogram suffix on a non-histogram family is fine (the stem is
        // its own family); but a histogram family must only emit suffixed
        // samples.
        if expo.types.get(family).map(String::as_str) == Some("histogram") && sample.name == *family
        {
            return Err(format!(
                "line {n}: bare sample {family} under histogram type"
            ));
        }
        expo.samples.push(sample);
    }
    validate_histograms(&expo)?;
    Ok(expo)
}

fn parse_sample(line: &str) -> Result<Sample, String> {
    let (name_labels, value) = match line.rfind(' ') {
        Some(idx) => (&line[..idx], &line[idx + 1..]),
        None => return Err("sample without value".into()),
    };
    let value: f64 = value
        .parse()
        .map_err(|_| format!("bad sample value {value:?}"))?;
    let (name, labels) = match name_labels.split_once('{') {
        Some((name, rest)) => {
            let rest = rest
                .strip_suffix('}')
                .ok_or_else(|| "unterminated label set".to_owned())?;
            (name, parse_labels(rest)?)
        }
        None => (name_labels, Vec::new()),
    };
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    {
        return Err(format!("bad metric name {name:?}"));
    }
    Ok(Sample {
        name: name.to_owned(),
        labels,
        value,
    })
}

fn parse_labels(text: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut chars = text.chars().peekable();
    loop {
        let mut key = String::new();
        for c in chars.by_ref() {
            if c == '=' {
                break;
            }
            key.push(c);
        }
        if key.is_empty() {
            return Err("empty label name".into());
        }
        if chars.next() != Some('"') {
            return Err(format!("label {key} value not quoted"));
        }
        let mut value = String::new();
        let mut closed = false;
        while let Some(c) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some('\\') => value.push('\\'),
                    Some('"') => value.push('"'),
                    Some('n') => value.push('\n'),
                    other => return Err(format!("bad escape {other:?}")),
                },
                '"' => {
                    closed = true;
                    break;
                }
                c => value.push(c),
            }
        }
        if !closed {
            return Err("unterminated label value".into());
        }
        labels.push((key, value));
        match chars.next() {
            None => return Ok(labels),
            Some(',') => continue,
            Some(c) => return Err(format!("unexpected {c:?} after label value")),
        }
    }
}

/// Checks bucket monotonicity and `+Inf == _count` for every histogram
/// series, grouping by label set (minus `le`).
fn validate_histograms(expo: &Exposition) -> Result<(), String> {
    let histograms: Vec<&String> = expo
        .types
        .iter()
        .filter(|(_, kind)| kind.as_str() == "histogram")
        .map(|(name, _)| name)
        .collect();
    for name in histograms {
        let bucket_name = format!("{name}_bucket");
        let count_name = format!("{name}_count");
        // Group buckets by their non-`le` label signature.
        type BucketGroup = (Vec<(String, String)>, Vec<(String, f64)>);
        let mut groups: Vec<BucketGroup> = Vec::new();
        for sample in expo.samples.iter().filter(|s| s.name == bucket_name) {
            let mut sig = sample.labels.clone();
            let le = match sig.iter().position(|(k, _)| k == "le") {
                Some(idx) => sig.remove(idx).1,
                None => return Err(format!("{bucket_name} sample without le label")),
            };
            match groups.iter_mut().find(|(s, _)| *s == sig) {
                Some((_, buckets)) => buckets.push((le, sample.value)),
                None => groups.push((sig, vec![(le, sample.value)])),
            }
        }
        for (sig, buckets) in groups {
            let mut prev = 0.0;
            let mut inf = None;
            for (le, value) in &buckets {
                if *value < prev {
                    return Err(format!("{bucket_name}{sig:?}: buckets not cumulative"));
                }
                prev = *value;
                if le == "+Inf" {
                    inf = Some(*value);
                }
            }
            let inf = inf.ok_or_else(|| format!("{bucket_name}{sig:?}: missing +Inf bucket"))?;
            let sig_refs: Vec<(&str, &str)> =
                sig.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
            let count = expo
                .value(&count_name, &sig_refs)
                .ok_or_else(|| format!("{count_name}{sig:?}: missing"))?;
            if (inf - count).abs() > f64::EPSILON {
                return Err(format!(
                    "{bucket_name}{sig:?}: +Inf ({inf}) != count ({count})"
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_exposition() {
        let text = "\
# HELP trial_x_total Things.
# TYPE trial_x_total counter
trial_x_total{op=\"scan\"} 3
trial_x_total{op=\"join\"} 1
";
        let expo = parse(text).unwrap();
        assert_eq!(expo.value("trial_x_total", &[("op", "scan")]), Some(3.0));
        assert_eq!(expo.sum("trial_x_total"), 4.0);
        assert_eq!(expo.types["trial_x_total"], "counter");
    }

    #[test]
    fn rejects_sample_before_type() {
        let err = parse("trial_x 1\n").unwrap_err();
        assert!(err.contains("before its # TYPE"), "{err}");
    }

    #[test]
    fn rejects_non_cumulative_histogram() {
        let text = "\
# TYPE trial_h histogram
trial_h_bucket{le=\"10\"} 5
trial_h_bucket{le=\"100\"} 3
trial_h_bucket{le=\"+Inf\"} 5
trial_h_sum 1
trial_h_count 5
";
        let err = parse(text).unwrap_err();
        assert!(err.contains("not cumulative"), "{err}");
    }

    #[test]
    fn rejects_inf_count_mismatch() {
        let text = "\
# TYPE trial_h histogram
trial_h_bucket{le=\"+Inf\"} 5
trial_h_sum 1
trial_h_count 4
";
        let err = parse(text).unwrap_err();
        assert!(err.contains("!= count"), "{err}");
    }

    #[test]
    fn parses_escaped_label_values() {
        let text = "\
# TYPE trial_q_total counter
trial_q_total{query=\"a\\\"b\\\\c\\nd\"} 1
";
        let expo = parse(text).unwrap();
        assert_eq!(expo.samples[0].labels[0].1, "a\"b\\c\nd".to_owned());
    }
}
