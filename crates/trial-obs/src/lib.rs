//! Lock-cheap observability primitives for the TriAL engine.
//!
//! The crate provides exactly three instrument kinds — [`Counter`],
//! [`Gauge`] and fixed-bucket [`Histogram`] — plus a [`Registry`] that owns
//! them by `(name, labels)` and renders the whole collection in the
//! Prometheus text exposition format. There are no dependencies: everything
//! is `std` atomics, and the only lock in the crate (the registry's family
//! list) is taken at registration and render time, never on the hot path.
//! Handles returned by the registry are plain `Arc`s; recording a sample is
//! one or two relaxed atomic adds.
//!
//! Two extra registration forms, [`Registry::counter_fn`] and
//! [`Registry::gauge_fn`], expose *existing* counters (a cache's hit count,
//! an admission semaphore's live depth) through a closure read at scrape
//! time. This is how the server keeps `/healthz` and `/metrics` from ever
//! disagreeing: both surfaces read the same underlying atomic.
//!
//! [`expo`] contains a small parser/validator for the exposition format,
//! used by tests and the CI scrape smoke to assert `/metrics` output is
//! well-formed (TYPE before samples, cumulative histogram buckets, `+Inf`
//! bucket equals `_count`, …).
//!
//! Metric naming follows the Prometheus conventions: `trial_` prefix,
//! `snake_case`, unit suffix (`_us`, `_total`) — e.g.
//! `trial_request_duration_us` or `trial_eval_hash_tables_built_total`.

pub mod expo;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Log-scaled latency buckets in microseconds: 50µs … 10s.
///
/// The 1–2.5–5 ladder keeps relative error under ~2.5× per bucket across
/// five decades, which is enough to tell a cache hit (double-digit µs) from
/// a morsel-parallel scan (ms) from a saturated fixpoint (hundreds of ms).
pub const LATENCY_BUCKETS_US: &[u64] = &[
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
    1_000_000, 2_500_000, 5_000_000, 10_000_000,
];

/// Decade buckets for row counts: 1 … 1M rows.
pub const ROW_BUCKETS: &[u64] = &[1, 10, 100, 1_000, 10_000, 100_000, 1_000_000];

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move both ways (or track a high watermark).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the gauge to `v`.
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if `v` is larger (high-watermark semantics).
    pub fn set_max(&self, v: u64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`, saturating at zero.
    pub fn sub(&self, n: u64) {
        let mut current = self.value.load(Ordering::Relaxed);
        loop {
            let next = current.saturating_sub(n);
            match self.value.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(observed) => current = observed,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram over `u64` observations.
///
/// Bucket bounds are inclusive upper bounds in ascending order; an implicit
/// `+Inf` bucket catches everything above the last bound. Observation is
/// two relaxed atomic adds plus a branchless scan over the (small, fixed)
/// bound slice — no locks, no allocation.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// Creates a histogram with the given ascending upper bounds.
    pub fn new(bounds: &[u64]) -> Self {
        debug_assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        Histogram {
            bounds: bounds.to_vec(),
            // One extra bucket for +Inf.
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn observe(&self, value: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// `(upper_bound, cumulative_count)` per finite bucket, ascending.
    pub fn cumulative(&self) -> Vec<(u64, u64)> {
        let mut acc = 0;
        self.bounds
            .iter()
            .enumerate()
            .map(|(i, &b)| {
                acc += self.buckets[i].load(Ordering::Relaxed);
                (b, acc)
            })
            .collect()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

enum Instrument {
    Counter(Arc<Counter>),
    CounterFn(Box<dyn Fn() -> u64 + Send + Sync>),
    Gauge(Arc<Gauge>),
    GaugeFn(Box<dyn Fn() -> u64 + Send + Sync>),
    Histogram(Arc<Histogram>),
}

impl std::fmt::Debug for Instrument {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Instrument::Counter(_) => "Counter",
            Instrument::CounterFn(_) => "CounterFn",
            Instrument::Gauge(_) => "Gauge",
            Instrument::GaugeFn(_) => "GaugeFn",
            Instrument::Histogram(_) => "Histogram",
        };
        f.write_str(name)
    }
}

#[derive(Debug)]
struct Series {
    labels: Vec<(String, String)>,
    instrument: Instrument,
}

#[derive(Debug)]
struct Family {
    name: String,
    help: String,
    kind: Kind,
    series: Vec<Series>,
}

/// Owns every registered metric family and renders them for scraping.
///
/// Registration is get-or-create on `(name, labels)`: asking twice for the
/// same series returns the same handle, so call sites don't need to thread
/// `Arc`s around. Registering a name under two different kinds panics —
/// that is a programming error, not an operational condition.
#[derive(Debug, Default)]
pub struct Registry {
    families: Mutex<Vec<Family>>,
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        && !name.starts_with(|c: char| c.is_ascii_digit())
}

fn labels_owned(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    labels
        .iter()
        .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
        .collect()
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn register<T, F, G>(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        kind: Kind,
        reuse: F,
        create: G,
    ) -> T
    where
        F: Fn(&Instrument) -> Option<T>,
        G: FnOnce() -> (Instrument, T),
    {
        assert!(valid_name(name), "invalid metric name {name:?}");
        assert!(
            labels.iter().all(|(k, _)| valid_name(k)),
            "invalid label name in {labels:?}"
        );
        let mut families = self
            .families
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let family = match families.iter_mut().find(|f| f.name == name) {
            Some(family) => {
                assert!(
                    family.kind == kind,
                    "metric {name} already registered as {}",
                    family.kind.as_str()
                );
                family
            }
            None => {
                families.push(Family {
                    name: name.to_owned(),
                    help: help.to_owned(),
                    kind,
                    series: Vec::new(),
                });
                families.last_mut().expect("just pushed")
            }
        };
        let owned = labels_owned(labels);
        if let Some(series) = family.series.iter().find(|s| s.labels == owned) {
            if let Some(handle) = reuse(&series.instrument) {
                return handle;
            }
            panic!("metric {name}{labels:?} already registered with a different backing");
        }
        let (instrument, handle) = create();
        family.series.push(Series {
            labels: owned,
            instrument,
        });
        handle
    }

    /// Gets or creates a counter series.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        self.register(
            name,
            help,
            labels,
            Kind::Counter,
            |i| match i {
                Instrument::Counter(c) => Some(Arc::clone(c)),
                _ => None,
            },
            || {
                let c = Arc::new(Counter::new());
                (Instrument::Counter(Arc::clone(&c)), c)
            },
        )
    }

    /// Gets or creates a gauge series.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        self.register(
            name,
            help,
            labels,
            Kind::Gauge,
            |i| match i {
                Instrument::Gauge(g) => Some(Arc::clone(g)),
                _ => None,
            },
            || {
                let g = Arc::new(Gauge::new());
                (Instrument::Gauge(Arc::clone(&g)), g)
            },
        )
    }

    /// Gets or creates a histogram series with the given bucket bounds.
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds: &[u64],
    ) -> Arc<Histogram> {
        self.register(
            name,
            help,
            labels,
            Kind::Histogram,
            |i| match i {
                Instrument::Histogram(h) => Some(Arc::clone(h)),
                _ => None,
            },
            || {
                let h = Arc::new(Histogram::new(bounds));
                (Instrument::Histogram(Arc::clone(&h)), h)
            },
        )
    }

    /// Registers a counter whose value is read from `f` at scrape time.
    ///
    /// For exposing counters that already live elsewhere (cache hits,
    /// admission totals) without double-counting: `/metrics` and any other
    /// surface read the same source. `f` must be monotonic.
    pub fn counter_fn<F>(&self, name: &str, help: &str, labels: &[(&str, &str)], f: F)
    where
        F: Fn() -> u64 + Send + Sync + 'static,
    {
        self.register(
            name,
            help,
            labels,
            Kind::Counter,
            |i| match i {
                Instrument::CounterFn(_) => Some(()),
                _ => None,
            },
            move || (Instrument::CounterFn(Box::new(f)), ()),
        )
    }

    /// Registers a gauge whose value is read from `f` at scrape time.
    pub fn gauge_fn<F>(&self, name: &str, help: &str, labels: &[(&str, &str)], f: F)
    where
        F: Fn() -> u64 + Send + Sync + 'static,
    {
        self.register(
            name,
            help,
            labels,
            Kind::Gauge,
            |i| match i {
                Instrument::GaugeFn(_) => Some(()),
                _ => None,
            },
            move || (Instrument::GaugeFn(Box::new(f)), ()),
        )
    }

    /// Renders every family in the Prometheus text exposition format.
    ///
    /// Families appear in registration order; series within a family in
    /// their own registration order — the output is deterministic.
    pub fn render(&self) -> String {
        let families = self
            .families
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut out = String::with_capacity(4096);
        for family in families.iter() {
            out.push_str("# HELP ");
            out.push_str(&family.name);
            out.push(' ');
            out.push_str(&escape_help(&family.help));
            out.push('\n');
            out.push_str("# TYPE ");
            out.push_str(&family.name);
            out.push(' ');
            out.push_str(family.kind.as_str());
            out.push('\n');
            for series in &family.series {
                render_series(&mut out, &family.name, series);
            }
        }
        out
    }
}

fn render_series(out: &mut String, name: &str, series: &Series) {
    match &series.instrument {
        Instrument::Counter(c) => render_sample(out, name, &series.labels, &[], c.get()),
        Instrument::CounterFn(f) => render_sample(out, name, &series.labels, &[], f()),
        Instrument::Gauge(g) => render_sample(out, name, &series.labels, &[], g.get()),
        Instrument::GaugeFn(f) => render_sample(out, name, &series.labels, &[], f()),
        Instrument::Histogram(h) => {
            let mut cumulative = 0;
            for (bound, count) in h.cumulative() {
                cumulative = count;
                render_sample(
                    out,
                    &format!("{name}_bucket"),
                    &series.labels,
                    &[("le", &bound.to_string())],
                    cumulative,
                );
            }
            let total = h.count();
            debug_assert!(total >= cumulative);
            render_sample(
                out,
                &format!("{name}_bucket"),
                &series.labels,
                &[("le", "+Inf")],
                total,
            );
            render_sample(out, &format!("{name}_sum"), &series.labels, &[], h.sum());
            render_sample(out, &format!("{name}_count"), &series.labels, &[], total);
        }
    }
}

fn render_sample(
    out: &mut String,
    name: &str,
    labels: &[(String, String)],
    extra: &[(&str, &str)],
    value: u64,
) {
    out.push_str(name);
    if !labels.is_empty() || !extra.is_empty() {
        out.push('{');
        let mut first = true;
        for (k, v) in labels
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .chain(extra.iter().copied())
        {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(&escape_label(v));
            out.push('"');
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(&value.to_string());
    out.push('\n');
}

fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_record() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);

        let g = Gauge::new();
        g.set(10);
        g.add(5);
        g.sub(3);
        assert_eq!(g.get(), 12);
        g.sub(100);
        assert_eq!(g.get(), 0);
        g.set_max(7);
        g.set_max(3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let h = Histogram::new(&[10, 100, 1000]);
        for v in [5, 10, 11, 100, 5000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 5126);
        assert_eq!(h.cumulative(), vec![(10, 2), (100, 4), (1000, 4)]);
    }

    #[test]
    fn registry_get_or_create_returns_same_handle() {
        let r = Registry::new();
        let a = r.counter("trial_x_total", "x", &[("op", "scan")]);
        let b = r.counter("trial_x_total", "x", &[("op", "scan")]);
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        let other = r.counter("trial_x_total", "x", &[("op", "join")]);
        assert_eq!(other.get(), 0);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("trial_x", "x", &[]);
        r.gauge("trial_x", "x", &[]);
    }

    #[test]
    fn render_is_valid_exposition() {
        let r = Registry::new();
        let c = r.counter(
            "trial_requests_total",
            "Requests served.",
            &[("endpoint", "query")],
        );
        c.add(3);
        let g = r.gauge("trial_in_flight", "Live requests.", &[]);
        g.set(2);
        r.gauge_fn("trial_uptime_seconds", "Uptime.", &[], || 42);
        let h = r.histogram(
            "trial_latency_us",
            "Latency.",
            &[("endpoint", "query")],
            &[100, 1000],
        );
        h.observe(50);
        h.observe(5000);

        let text = r.render();
        let expo = expo::parse(&text).expect("valid exposition");
        assert_eq!(
            expo.value("trial_requests_total", &[("endpoint", "query")]),
            Some(3.0)
        );
        assert_eq!(expo.value("trial_in_flight", &[]), Some(2.0));
        assert_eq!(expo.value("trial_uptime_seconds", &[]), Some(42.0));
        assert_eq!(
            expo.value(
                "trial_latency_us_bucket",
                &[("endpoint", "query"), ("le", "+Inf")]
            ),
            Some(2.0)
        );
        assert_eq!(
            expo.value("trial_latency_us_count", &[("endpoint", "query")]),
            Some(2.0)
        );
        assert_eq!(
            expo.value("trial_latency_us_sum", &[("endpoint", "query")]),
            Some(5050.0)
        );
    }

    #[test]
    fn label_values_are_escaped() {
        let r = Registry::new();
        let c = r.counter("trial_q_total", "q", &[("query", "a\"b\\c")]);
        c.inc();
        let text = r.render();
        assert!(text.contains("query=\"a\\\"b\\\\c\""), "{text}");
        expo::parse(&text).expect("escaped labels still parse");
    }
}
