//! RDF terms.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An RDF term as used by ground RDF documents: an IRI or a plain literal.
///
/// Blank nodes are intentionally unsupported — the paper restricts itself to
/// ground documents (Section 2.1), and every navigational result in the
/// paper is stated for that setting.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Term {
    /// An IRI / URI reference, stored without the surrounding angle brackets.
    Iri(String),
    /// A plain literal, stored without the surrounding quotes.
    Literal(String),
}

impl Term {
    /// Builds an IRI term.
    pub fn iri(s: impl Into<String>) -> Self {
        Term::Iri(s.into())
    }

    /// Builds a plain-literal term.
    pub fn literal(s: impl Into<String>) -> Self {
        Term::Literal(s.into())
    }

    /// Returns `true` for IRI terms.
    pub fn is_iri(&self) -> bool {
        matches!(self, Term::Iri(_))
    }

    /// Returns `true` for literal terms.
    pub fn is_literal(&self) -> bool {
        matches!(self, Term::Literal(_))
    }

    /// The lexical form: the IRI text or the literal text.
    pub fn lexical(&self) -> &str {
        match self {
            Term::Iri(s) | Term::Literal(s) => s,
        }
    }

    /// A short human-readable name: the IRI fragment/last path segment for
    /// IRIs, or the literal text. Used when converting to triplestores so
    /// that examples print readable object names; full IRIs are preserved
    /// when the short forms would collide.
    pub fn short_name(&self) -> &str {
        match self {
            Term::Literal(s) => s,
            Term::Iri(s) => {
                let after_hash = s.rsplit('#').next().unwrap_or(s);
                if after_hash != s {
                    after_hash
                } else {
                    s.rsplit('/').next().unwrap_or(s)
                }
            }
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Iri(s) => write!(f, "<{s}>"),
            Term::Literal(s) => write!(f, "\"{}\"", s.replace('"', "\\\"")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_predicates() {
        let i = Term::iri("http://ex.org/a");
        let l = Term::literal("hello");
        assert!(i.is_iri() && !i.is_literal());
        assert!(l.is_literal() && !l.is_iri());
        assert_eq!(i.lexical(), "http://ex.org/a");
        assert_eq!(l.lexical(), "hello");
    }

    #[test]
    fn display_ntriples_style() {
        assert_eq!(
            Term::iri("http://ex.org/a").to_string(),
            "<http://ex.org/a>"
        );
        assert_eq!(Term::literal("hi").to_string(), "\"hi\"");
        assert_eq!(
            Term::literal("say \"hi\"").to_string(),
            "\"say \\\"hi\\\"\""
        );
    }

    #[test]
    fn short_names() {
        assert_eq!(
            Term::iri("http://ex.org/city#Edinburgh").short_name(),
            "Edinburgh"
        );
        assert_eq!(
            Term::iri("http://ex.org/city/London").short_name(),
            "London"
        );
        assert_eq!(Term::iri("Edinburgh").short_name(), "Edinburgh");
        assert_eq!(Term::literal("42").short_name(), "42");
    }

    #[test]
    fn ordering_is_stable() {
        let mut v = vec![Term::literal("b"), Term::iri("a"), Term::literal("a")];
        v.sort();
        assert_eq!(
            v,
            vec![Term::iri("a"), Term::literal("a"), Term::literal("b")]
        );
    }
}
