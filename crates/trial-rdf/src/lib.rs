//! # trial-rdf
//!
//! A small RDF substrate for the TriAL crates: term and graph model,
//! an N-Triples-subset parser/serialiser, a term dictionary, and conversion
//! of RDF graphs into the triplestore model of `trial-core`.
//!
//! The paper works with *ground* RDF documents — triples of URIs, without
//! blank nodes — and that is what this crate models. Plain literals are
//! additionally supported as a convenience: a literal becomes an object
//! whose data value `ρ(o)` is its lexical form, which is exactly how the
//! triplestore model of Section 2.3 attaches data to objects.
//!
//! ```
//! use trial_rdf::{parse_ntriples, to_triplestore};
//!
//! let doc = r#"
//! <http://ex.org/Edinburgh> <http://ex.org/TrainOp1> <http://ex.org/London> .
//! <http://ex.org/TrainOp1> <http://ex.org/part_of> <http://ex.org/EastCoast> .
//! "#;
//! let graph = parse_ntriples(doc).unwrap();
//! assert_eq!(graph.len(), 2);
//! let store = to_triplestore(&graph, "E");
//! assert_eq!(store.triple_count(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod convert;
pub mod dictionary;
pub mod graph;
pub mod ntriples;
pub mod term;

pub use convert::to_triplestore;
pub use dictionary::Dictionary;
pub use graph::{RdfGraph, RdfTriple};
pub use ntriples::{parse_ntriples, parse_ntriples_iter, serialize_ntriples, NTriplesIter};
pub use term::Term;
