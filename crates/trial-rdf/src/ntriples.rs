//! A parser and serialiser for the N-Triples subset used by the examples.
//!
//! Supported syntax per line: `subject predicate object .` where subject and
//! predicate are IRIs in angle brackets and the object is an IRI or a quoted
//! plain literal. `#`-comments and blank lines are ignored. Blank nodes,
//! datatyped/tagged literals and escapes other than `\"` are not supported —
//! the paper only considers ground RDF documents.

use crate::graph::{RdfGraph, RdfTriple};
use crate::term::Term;
use trial_core::{Error, Result};

/// Parses an N-Triples document into an [`RdfGraph`].
pub fn parse_ntriples(input: &str) -> Result<RdfGraph> {
    let mut graph = RdfGraph::new();
    for triple in parse_ntriples_iter(input) {
        graph.insert(triple?);
    }
    Ok(graph)
}

/// A streaming N-Triples reader: yields one [`RdfTriple`] (or error) per
/// non-blank, non-comment line, without materialising a whole [`RdfGraph`].
///
/// Bulk ingestion paths (e.g. the `trial-server` `/load` endpoint) feed the
/// triples straight into a `TriplestoreBuilder`, so peak memory is one parsed
/// triple plus the builder — not document + graph + builder. Errors carry the
/// byte offset of the offending line; iteration can meaningfully continue
/// past an error (subsequent lines are still parsed), though most callers
/// stop at the first `Err`.
pub fn parse_ntriples_iter(input: &str) -> NTriplesIter<'_> {
    NTriplesIter { input, offset: 0 }
}

/// Iterator returned by [`parse_ntriples_iter`].
#[derive(Debug, Clone)]
pub struct NTriplesIter<'a> {
    input: &'a str,
    offset: usize,
}

impl Iterator for NTriplesIter<'_> {
    type Item = Result<RdfTriple>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if self.offset >= self.input.len() {
                return None;
            }
            let rest = &self.input[self.offset..];
            let line_offset = self.offset;
            let (line, consumed) = match rest.find('\n') {
                Some(nl) => (&rest[..nl], nl + 1),
                None => (rest, rest.len()),
            };
            self.offset += consumed;
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            return Some(parse_line(trimmed, line_offset));
        }
    }
}

fn parse_line(line: &str, offset: usize) -> Result<RdfTriple> {
    let mut rest = line;
    let mut terms = Vec::with_capacity(3);
    for _ in 0..3 {
        rest = rest.trim_start();
        let (term, remaining) = parse_term(rest, offset, line)?;
        terms.push(term);
        rest = remaining;
    }
    let rest = rest.trim();
    if rest != "." {
        return Err(Error::Parse {
            message: format!("expected terminating `.` in N-Triples line `{line}`"),
            offset,
        });
    }
    let object = terms.pop().expect("three terms parsed");
    let predicate = terms.pop().expect("three terms parsed");
    let subject = terms.pop().expect("three terms parsed");
    if !subject.is_iri() || !predicate.is_iri() {
        return Err(Error::Parse {
            message: format!("subject and predicate must be IRIs in `{line}`"),
            offset,
        });
    }
    Ok(RdfTriple::new(subject, predicate, object))
}

fn parse_term<'a>(input: &'a str, offset: usize, line: &str) -> Result<(Term, &'a str)> {
    if let Some(rest) = input.strip_prefix('<') {
        match rest.find('>') {
            Some(end) => Ok((Term::iri(&rest[..end]), &rest[end + 1..])),
            None => Err(Error::Parse {
                message: format!("unterminated IRI in `{line}`"),
                offset,
            }),
        }
    } else if let Some(rest) = input.strip_prefix('"') {
        // Find the closing quote, honouring the \" escape.
        let bytes = rest.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            if bytes[i] == b'\\' && i + 1 < bytes.len() {
                i += 2;
                continue;
            }
            if bytes[i] == b'"' {
                let lexical = rest[..i].replace("\\\"", "\"");
                return Ok((Term::literal(lexical), &rest[i + 1..]));
            }
            i += 1;
        }
        Err(Error::Parse {
            message: format!("unterminated literal in `{line}`"),
            offset,
        })
    } else {
        Err(Error::Parse {
            message: format!("expected `<iri>` or `\"literal\"` in `{line}`"),
            offset,
        })
    }
}

/// Serialises a graph back to N-Triples, one triple per line in canonical
/// order. `parse_ntriples(serialize_ntriples(g)) == g` for every graph this
/// crate can produce.
pub fn serialize_ntriples(graph: &RdfGraph) -> String {
    let mut out = String::new();
    for t in graph.iter() {
        out.push_str(&t.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = r#"
# The Figure 1 transport network (excerpt).
<http://ex.org/StAndrews> <http://ex.org/BusOp1> <http://ex.org/Edinburgh> .
<http://ex.org/Edinburgh> <http://ex.org/TrainOp1> <http://ex.org/London> .
<http://ex.org/TrainOp1> <http://ex.org/part_of> <http://ex.org/EastCoast> .
<http://ex.org/Edinburgh> <http://ex.org/population> "524930" .
"#;

    #[test]
    fn parse_document_with_comments_and_literals() {
        let g = parse_ntriples(DOC).unwrap();
        assert_eq!(g.len(), 4);
        assert!(g.contains(&RdfTriple::iris(
            "http://ex.org/Edinburgh",
            "http://ex.org/TrainOp1",
            "http://ex.org/London"
        )));
        assert!(g.contains(&RdfTriple::new(
            Term::iri("http://ex.org/Edinburgh"),
            Term::iri("http://ex.org/population"),
            Term::literal("524930")
        )));
    }

    #[test]
    fn roundtrip_serialisation() {
        let g = parse_ntriples(DOC).unwrap();
        let text = serialize_ntriples(&g);
        let g2 = parse_ntriples(&text).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn literal_escapes() {
        let doc = r#"<a> <says> "hello \"world\"" ."#;
        let g = parse_ntriples(doc).unwrap();
        let t = g.iter().next().unwrap();
        assert_eq!(t.object, Term::literal("hello \"world\""));
        // And the escape survives a round trip.
        let again = parse_ntriples(&serialize_ntriples(&g)).unwrap();
        assert_eq!(g, again);
    }

    #[test]
    fn error_cases() {
        assert!(parse_ntriples("<a> <b> <c>").is_err()); // missing dot
        assert!(parse_ntriples("<a> <b .").is_err()); // unterminated IRI
        assert!(parse_ntriples("<a> <b> \"x .").is_err()); // unterminated literal
        assert!(parse_ntriples("\"lit\" <b> <c> .").is_err()); // literal subject
        assert!(parse_ntriples("<a> \"lit\" <c> .").is_err()); // literal predicate
        assert!(parse_ntriples("a b c .").is_err()); // bare words
                                                     // Errors carry an offset to the offending line.
        match parse_ntriples("<ok> <ok> <ok> .\nbroken line .") {
            Err(Error::Parse { offset, .. }) => assert!(offset > 0),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn empty_and_comment_only_documents() {
        assert!(parse_ntriples("").unwrap().is_empty());
        assert!(parse_ntriples("# nothing here\n\n").unwrap().is_empty());
    }

    #[test]
    fn streaming_iterator_matches_batch_parser() {
        let streamed: Vec<RdfTriple> = parse_ntriples_iter(DOC).map(|t| t.unwrap()).collect();
        assert_eq!(streamed.len(), 4);
        let graph = parse_ntriples(DOC).unwrap();
        for t in &streamed {
            assert!(graph.contains(t));
        }
        assert!(parse_ntriples_iter("# only comments\n").next().is_none());
    }

    #[test]
    fn streaming_iterator_reports_offsets_and_continues() {
        let doc = "<a> <b> <c> .\nbroken\n<d> <e> <f> .";
        let items: Vec<_> = parse_ntriples_iter(doc).collect();
        assert_eq!(items.len(), 3);
        assert!(items[0].is_ok());
        match &items[1] {
            Err(Error::Parse { offset, .. }) => assert_eq!(*offset, 14),
            other => panic!("expected parse error, got {other:?}"),
        }
        // The reader resynchronises on the next line.
        assert_eq!(items[2].as_ref().unwrap(), &RdfTriple::iris("d", "e", "f"));
    }
}
