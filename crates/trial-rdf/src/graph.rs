//! RDF graphs: sets of ground RDF triples.

use crate::term::Term;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// One RDF triple `(subject, predicate, object)`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RdfTriple {
    /// The subject term.
    pub subject: Term,
    /// The predicate term.
    pub predicate: Term,
    /// The object term.
    pub object: Term,
}

impl RdfTriple {
    /// Builds a triple from three terms.
    pub fn new(subject: Term, predicate: Term, object: Term) -> Self {
        RdfTriple {
            subject,
            predicate,
            object,
        }
    }

    /// Builds an all-IRI triple from three IRI strings.
    pub fn iris(s: impl Into<String>, p: impl Into<String>, o: impl Into<String>) -> Self {
        RdfTriple::new(Term::iri(s), Term::iri(p), Term::iri(o))
    }

    /// Iterates over the three terms in subject, predicate, object order.
    pub fn terms(&self) -> impl Iterator<Item = &Term> {
        [&self.subject, &self.predicate, &self.object].into_iter()
    }
}

impl fmt::Display for RdfTriple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {} .", self.subject, self.predicate, self.object)
    }
}

/// A ground RDF graph: a set of [`RdfTriple`]s (duplicates are ignored).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RdfGraph {
    triples: BTreeSet<RdfTriple>,
}

impl RdfGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        RdfGraph::default()
    }

    /// Inserts a triple; returns `true` if it was not already present.
    pub fn insert(&mut self, triple: RdfTriple) -> bool {
        self.triples.insert(triple)
    }

    /// Adds an all-IRI triple by its three IRI strings.
    pub fn add_iris(
        &mut self,
        s: impl Into<String>,
        p: impl Into<String>,
        o: impl Into<String>,
    ) -> bool {
        self.insert(RdfTriple::iris(s, p, o))
    }

    /// Number of triples.
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// `true` if the graph has no triples.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, triple: &RdfTriple) -> bool {
        self.triples.contains(triple)
    }

    /// Iterates over the triples in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = &RdfTriple> + '_ {
        self.triples.iter()
    }

    /// The set of distinct terms occurring anywhere in the graph, in
    /// canonical order.
    pub fn terms(&self) -> Vec<&Term> {
        let mut set: BTreeSet<&Term> = BTreeSet::new();
        for t in &self.triples {
            set.extend(t.terms());
        }
        set.into_iter().collect()
    }

    /// The set of distinct predicates, in canonical order.
    pub fn predicates(&self) -> Vec<&Term> {
        let mut set: BTreeSet<&Term> = BTreeSet::new();
        for t in &self.triples {
            set.insert(&t.predicate);
        }
        set.into_iter().collect()
    }
}

impl FromIterator<RdfTriple> for RdfGraph {
    fn from_iter<I: IntoIterator<Item = RdfTriple>>(iter: I) -> Self {
        RdfGraph {
            triples: iter.into_iter().collect(),
        }
    }
}

impl<'a> IntoIterator for &'a RdfGraph {
    type Item = &'a RdfTriple;
    type IntoIter = std::collections::btree_set::Iter<'a, RdfTriple>;
    fn into_iter(self) -> Self::IntoIter {
        self.triples.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_deduplicate() {
        let mut g = RdfGraph::new();
        assert!(g.add_iris("a", "p", "b"));
        assert!(!g.add_iris("a", "p", "b"));
        assert!(g.add_iris("b", "p", "c"));
        assert_eq!(g.len(), 2);
        assert!(!g.is_empty());
        assert!(g.contains(&RdfTriple::iris("a", "p", "b")));
    }

    #[test]
    fn terms_and_predicates() {
        let mut g = RdfGraph::new();
        g.add_iris("a", "p", "b");
        g.add_iris("b", "q", "a");
        g.insert(RdfTriple::new(
            Term::iri("a"),
            Term::iri("p"),
            Term::literal("42"),
        ));
        assert_eq!(g.terms().len(), 5); // a, b, p, q, "42"
        assert_eq!(g.predicates().len(), 2);
    }

    #[test]
    fn triple_display() {
        let t = RdfTriple::new(Term::iri("a"), Term::iri("p"), Term::literal("x"));
        assert_eq!(t.to_string(), "<a> <p> \"x\" .");
        assert_eq!(t.terms().count(), 3);
    }

    #[test]
    fn from_iterator_and_iteration() {
        let g: RdfGraph = [
            RdfTriple::iris("a", "p", "b"),
            RdfTriple::iris("a", "p", "b"),
        ]
        .into_iter()
        .collect();
        assert_eq!(g.len(), 1);
        assert_eq!(g.iter().count(), 1);
        assert_eq!((&g).into_iter().count(), 1);
    }
}
