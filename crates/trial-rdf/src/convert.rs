//! Conversion from RDF graphs to the triplestore model of `trial-core`.
//!
//! Following Section 2.2 of the paper, an RDF document *is* a ternary
//! relation over its terms, so the conversion is direct: every term becomes
//! an object (named readably via the [`Dictionary`]), every RDF triple
//! becomes a triple of the designated relation, and literals additionally
//! carry their lexical form as the object's data value `ρ(o)`.

use crate::dictionary::Dictionary;
use crate::graph::RdfGraph;
use crate::term::Term;
use trial_core::{Triplestore, TriplestoreBuilder, Value};

/// Converts an RDF graph into a triplestore with a single relation `rel`.
pub fn to_triplestore(graph: &RdfGraph, rel: &str) -> Triplestore {
    let mut dict = Dictionary::new();
    for t in graph.iter() {
        for term in t.terms() {
            dict.intern(term);
        }
    }
    let names = dict.readable_names();
    let mut builder = TriplestoreBuilder::new();
    // Intern objects in dictionary order so ids line up with readable names.
    for (id, term) in dict.iter() {
        let name = &names[id.index()];
        match term {
            Term::Literal(lex) => {
                builder.object_with_value(name, Value::str(lex.clone()));
            }
            Term::Iri(_) => {
                builder.object(name);
            }
        }
    }
    for t in graph.iter() {
        let s = &names[dict.id(&t.subject).expect("interned").index()];
        let p = &names[dict.id(&t.predicate).expect("interned").index()];
        let o = &names[dict.id(&t.object).expect("interned").index()];
        builder.add_triple(rel, s, p, o);
    }
    builder.finish()
}

/// Converts an RDF graph into a triplestore *and* returns the dictionary and
/// the readable names used, so callers can map answers back to IRIs.
pub fn to_triplestore_with_dictionary(
    graph: &RdfGraph,
    rel: &str,
) -> (Triplestore, Dictionary, Vec<String>) {
    let mut dict = Dictionary::new();
    for t in graph.iter() {
        for term in t.terms() {
            dict.intern(term);
        }
    }
    let names = dict.readable_names();
    let store = to_triplestore(graph, rel);
    (store, dict, names)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::RdfTriple;
    use crate::ntriples::parse_ntriples;

    #[test]
    fn convert_preserves_structure() {
        let doc = r#"
<http://ex.org/StAndrews> <http://ex.org/BusOp1> <http://ex.org/Edinburgh> .
<http://ex.org/Edinburgh> <http://ex.org/TrainOp1> <http://ex.org/London> .
<http://ex.org/TrainOp1> <http://ex.org/part_of> <http://ex.org/EastCoast> .
"#;
        let graph = parse_ntriples(doc).unwrap();
        let store = to_triplestore(&graph, "E");
        assert_eq!(store.triple_count(), 3);
        assert_eq!(store.object_count(), 7); // distinct terms
        let t = store
            .triple_by_names("Edinburgh", "TrainOp1", "London")
            .unwrap();
        assert!(store.require_relation("E").unwrap().contains(&t));
    }

    #[test]
    fn literals_become_data_values() {
        let mut g = RdfGraph::new();
        g.insert(RdfTriple::new(
            Term::iri("http://ex.org/Edinburgh"),
            Term::iri("http://ex.org/population"),
            Term::literal("524930"),
        ));
        let store = to_triplestore(&g, "E");
        let pop = store.object_id("524930").unwrap();
        assert_eq!(store.value(pop), &Value::str("524930"));
        let edi = store.object_id("Edinburgh").unwrap();
        assert_eq!(store.value(edi), &Value::Null);
    }

    #[test]
    fn dictionary_maps_back_to_terms() {
        let mut g = RdfGraph::new();
        g.add_iris("http://a.org/x#N", "http://a.org/p", "http://b.org/y#N");
        let (store, dict, names) = to_triplestore_with_dictionary(&g, "E");
        assert_eq!(store.object_count(), 3);
        // Colliding short names were disambiguated but still map back.
        for (id, term) in dict.iter() {
            let name = &names[id.index()];
            assert!(store.object_id(name).is_some());
            assert_eq!(dict.term(id), term);
        }
    }

    #[test]
    fn predicate_terms_are_first_class_objects() {
        // The defining feature of RDF vs. graph databases (Section 2.2):
        // a predicate can be the subject of another triple.
        let mut g = RdfGraph::new();
        g.add_iris("s", "p", "o");
        g.add_iris("p", "s", "o2");
        let store = to_triplestore(&g, "E");
        assert_eq!(store.object_count(), 4); // s, p, o, o2
        assert_eq!(store.triple_count(), 2);
        // `p` occurs both in predicate position and in subject position.
        assert!(store.triple_by_names("s", "p", "o").is_ok());
        assert!(store.triple_by_names("p", "s", "o2").is_ok());
    }
}
