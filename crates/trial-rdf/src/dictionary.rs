//! A bidirectional dictionary interning RDF terms.
//!
//! Real triplestores (Jena TDB, oxigraph, Virtuoso, …) never store IRIs
//! inline: they intern every term into a dense integer id and keep a
//! dictionary for decoding. The same trick backs our conversion from RDF to
//! the `trial-core` triplestore model, and is exposed here as a standalone
//! component because the graph encodings of `trial-graph` need it too.

use crate::term::Term;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A dense identifier assigned to an interned term.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TermId(pub u32);

impl From<TermId> for usize {
    fn from(id: TermId) -> usize {
        id.index()
    }
}

impl TermId {
    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A bidirectional `Term ↔ TermId` mapping.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Dictionary {
    terms: Vec<Term>,
    index: HashMap<Term, TermId>,
}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Dictionary::default()
    }

    /// Interns a term, returning its id. Idempotent.
    pub fn intern(&mut self, term: &Term) -> TermId {
        if let Some(&id) = self.index.get(term) {
            return id;
        }
        let id = TermId(u32::try_from(self.terms.len()).expect("dictionary overflow"));
        self.terms.push(term.clone());
        self.index.insert(term.clone(), id);
        id
    }

    /// Looks up the id of an already-interned term.
    pub fn id(&self, term: &Term) -> Option<TermId> {
        self.index.get(term).copied()
    }

    /// Decodes an id back into its term.
    ///
    /// # Panics
    /// Panics if the id was not produced by this dictionary.
    pub fn term(&self, id: TermId) -> &Term {
        &self.terms[id.index()]
    }

    /// Number of interned terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// `true` if nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Iterates over `(id, term)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &Term)> + '_ {
        self.terms
            .iter()
            .enumerate()
            .map(|(i, t)| (TermId(i as u32), t))
    }

    /// Assigns each term a unique, human-readable name.
    ///
    /// Uses [`Term::short_name`] when the short names are pairwise distinct,
    /// and falls back to the full lexical form (suffixed with the id when
    /// even those collide, e.g. an IRI and a literal with the same text).
    pub fn readable_names(&self) -> Vec<String> {
        let mut short_counts: HashMap<&str, usize> = HashMap::new();
        for t in &self.terms {
            *short_counts.entry(t.short_name()).or_default() += 1;
        }
        let mut lexical_counts: HashMap<&str, usize> = HashMap::new();
        for t in &self.terms {
            *lexical_counts.entry(t.lexical()).or_default() += 1;
        }
        self.terms
            .iter()
            .enumerate()
            .map(|(i, t)| {
                if short_counts[t.short_name()] == 1 {
                    t.short_name().to_owned()
                } else if lexical_counts[t.lexical()] == 1 {
                    t.lexical().to_owned()
                } else {
                    format!("{}#{}", t.lexical(), i)
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut d = Dictionary::new();
        let a1 = d.intern(&Term::iri("http://ex.org/a"));
        let a2 = d.intern(&Term::iri("http://ex.org/a"));
        let b = d.intern(&Term::iri("http://ex.org/b"));
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
        assert_eq!(d.len(), 2);
        assert!(!d.is_empty());
        assert_eq!(d.term(a1), &Term::iri("http://ex.org/a"));
        assert_eq!(d.id(&Term::iri("http://ex.org/b")), Some(b));
        assert_eq!(d.id(&Term::iri("http://ex.org/c")), None);
        assert_eq!(d.iter().count(), 2);
    }

    #[test]
    fn readable_names_prefer_short_forms() {
        let mut d = Dictionary::new();
        d.intern(&Term::iri("http://ex.org/city#Edinburgh"));
        d.intern(&Term::iri("http://ex.org/city#London"));
        assert_eq!(d.readable_names(), vec!["Edinburgh", "London"]);
    }

    #[test]
    fn readable_names_disambiguate_collisions() {
        let mut d = Dictionary::new();
        d.intern(&Term::iri("http://a.org/x#Edinburgh"));
        d.intern(&Term::iri("http://b.org/y#Edinburgh"));
        let names = d.readable_names();
        assert_ne!(names[0], names[1]);
        assert!(names[0].contains("a.org"));
        // IRI vs literal with identical text also stay distinct.
        let mut d = Dictionary::new();
        d.intern(&Term::iri("42"));
        d.intern(&Term::literal("42"));
        let names = d.readable_names();
        assert_ne!(names[0], names[1]);
    }

    #[test]
    fn empty_dictionary() {
        let d = Dictionary::new();
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
        assert!(d.readable_names().is_empty());
    }
}
