//! Scoped worker pool for morsel-driven intra-query parallelism.
//!
//! Morsel-driven execution (Leis et al., "Morsel-Driven Parallelism") carves
//! an operator's input into small contiguous ranges — *morsels* — and lets a
//! pool of worker threads pull morsels until none remain, so the degree of
//! parallelism is a runtime parameter rather than a plan property. This
//! module provides the pool in the only form a zero-dependency crate can:
//! **scoped** `std::thread` workers, spawned per parallel section and joined
//! before it returns. Scoped threads let morsel tasks borrow the store's
//! permutation indexes and intermediate [`TripleSet`](trial_core::TripleSet)s
//! directly (no `Arc`-wrapping of per-query state), and a panicking worker
//! propagates to the coordinating thread on join — nothing is swallowed.
//!
//! Three primitives cover every parallel operator in [`crate::exec`]:
//!
//! * [`chunk`] — split a slice into near-equal contiguous morsels (the
//!   in-memory mirror of `RelationIndex::partition_cursors` at the storage
//!   layer);
//! * [`run_tasks`] — execute a batch of morsel tasks on up to `threads`
//!   workers pulling from a shared queue, returning results **in task
//!   order** (concatenating them reproduces the sequential output exactly —
//!   the determinism the differential suite relies on);
//! * [`join_pair`] — overlap one blocking side computation (a
//!   difference/intersection right side, a complement input) with the
//!   current thread's own work.
//!
//! Every worker accumulates into its own [`EvalStats`] and the coordinator
//! merges them after the join, so counters are exact sums regardless of the
//! interleaving: a parallel evaluation reports the same `pairs_considered`/
//! `triples_scanned`/… as the single-threaded reference, plus a non-zero
//! [`EvalStats::parallel_morsels`].

use crate::cancel::CancelToken;
use crate::engine::EvalStats;
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::Mutex;
use trial_core::Triple;

/// The host's available parallelism (1 if it cannot be determined) — the
/// sensible upper bound when auto-configuring
/// [`EvalOptions::threads`](crate::EvalOptions::threads), e.g. for
/// `trial-serve --eval-threads 0`.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Splits `slice` into at most `parts` near-equal contiguous morsels (the
/// first `len % parts` morsels carry one extra element). Never returns an
/// empty morsel: fewer than `parts` slices come back when `slice` is shorter
/// than `parts`, and an empty slice yields no morsels at all.
pub(crate) fn chunk<T>(slice: &[T], parts: usize) -> Vec<&[T]> {
    let parts = parts.max(1).min(slice.len());
    if parts == 0 {
        return Vec::new();
    }
    let base = slice.len() / parts;
    let extra = slice.len() % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let len = base + usize::from(i < extra);
        out.push(&slice[start..start + len]);
        start += len;
    }
    debug_assert_eq!(start, slice.len());
    out
}

/// Runs `tasks` on up to `threads` scoped worker threads and returns the
/// results **in task order**.
///
/// Workers pull tasks from a shared queue (classic morsel dispatch: a fast
/// worker takes more morsels, so skewed morsels don't idle the pool), each
/// accumulating into a thread-local [`EvalStats`] that is merged into
/// `stats` after all workers have joined — counter totals are therefore
/// identical to a sequential run of the same tasks. With one thread or at
/// most one task everything runs inline on the current thread and
/// [`EvalStats::parallel_morsels`] stays untouched; otherwise it grows by
/// the number of tasks. A panicking task propagates to the caller.
///
/// The morsel loop is a cancellation checkpoint: workers stop popping tasks
/// once `cancel` latches, so a cancelled evaluation abandons its remaining
/// morsels instead of finishing them. The result vector is then **partial**
/// (the completed prefix of each worker, still in task order) — every caller
/// re-checks the token at its own `Result` boundary before the truncated
/// output can be observed as a real answer.
pub(crate) fn run_tasks<T, F>(
    threads: usize,
    tasks: Vec<F>,
    cancel: &CancelToken,
    stats: &mut EvalStats,
) -> Vec<T>
where
    F: FnOnce(&mut EvalStats) -> T + Send,
    T: Send,
{
    if threads <= 1 || tasks.len() <= 1 {
        let mut out = Vec::with_capacity(tasks.len());
        for task in tasks {
            if cancel.is_cancelled() {
                break;
            }
            out.push(task(stats));
        }
        return out;
    }
    let count = tasks.len();
    let workers = threads.min(count);
    let queue = Mutex::new(tasks.into_iter().enumerate());
    let mut results: Vec<Option<T>> = std::iter::repeat_with(|| None).take(count).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = EvalStats::new();
                    let mut out: Vec<(usize, T)> = Vec::new();
                    loop {
                        // Morsel-loop checkpoint: give up before popping
                        // another task once the token has latched.
                        if cancel.is_cancelled() {
                            break;
                        }
                        // Hold the queue lock only to pop; the task body runs
                        // unlocked. A poisoned queue means a sibling worker
                        // panicked mid-pop, which the join below propagates.
                        let next = queue
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                            .next();
                        match next {
                            Some((index, task)) => out.push((index, task(&mut local))),
                            None => break,
                        }
                    }
                    (local, out)
                })
            })
            .collect();
        for handle in handles {
            let (local, out) = handle
                .join()
                .unwrap_or_else(|payload| std::panic::resume_unwind(payload));
            stats.merge(&local);
            for (index, value) in out {
                results[index] = Some(value);
            }
        }
    });
    stats.parallel_morsels += count as u64;
    if cancel.is_cancelled() {
        // Partial delivery: keep completed results in task order; the caller
        // converts the latched token into `Error::Cancelled` before anything
        // downstream can read the truncation as a genuine answer.
        return results.into_iter().flatten().collect();
    }
    results
        .into_iter()
        .map(|slot| slot.expect("every morsel task produces a result"))
        .collect()
}

/// Runs `near` on the current thread while `far` runs on one scoped worker,
/// returning both results. This is how a pipeline's blocking side (a
/// difference/intersection right side, a complement input) materialises
/// concurrently with the left side instead of serialising behind it. The
/// worker's counters merge into `stats` after the join; a panic in `far`
/// propagates.
pub(crate) fn join_pair<A, B, FA, FB>(near: FA, far: FB, stats: &mut EvalStats) -> (A, B)
where
    FA: FnOnce(&mut EvalStats) -> A,
    FB: FnOnce(&mut EvalStats) -> B + Send,
    B: Send,
{
    let (a, b, far_stats) = std::thread::scope(|scope| {
        let handle = scope.spawn(move || {
            let mut local = EvalStats::new();
            let b = far(&mut local);
            (b, local)
        });
        let a = near(stats);
        let (b, far_stats) = handle
            .join()
            .unwrap_or_else(|payload| std::panic::resume_unwind(payload));
        (a, b, far_stats)
    });
    stats.merge(&far_stats);
    stats.parallel_morsels += 1;
    (a, b)
}

/// Rows per batch sent through an exchange lane. Batching amortises the
/// channel's lock/wake cost over many rows while keeping the consumer's
/// first-row latency and the per-lane buffer (`depth × batch`) small.
pub(crate) const EXCHANGE_BATCH_ROWS: usize = 256;

/// The consumer endpoint of a row **exchange**: one or more producer threads
/// pump triples into bounded lanes ([`std::sync::mpsc::sync_channel`]) and a
/// single consumer pulls them back out one at a time.
///
/// The exchange is the pipeline's concurrency seam for *serving*: producers
/// run the evaluation (one lane per morsel for ordered, morselizable roots;
/// a single lane otherwise) while the consumer overlaps socket writes with
/// that evaluation. Two properties the server relies on:
///
/// * **Determinism** — lanes are drained strictly in morsel order, so the
///   concatenated rows are exactly the sequential pipeline's rows (the
///   morsels are contiguous ranges of one permutation run).
/// * **Early termination with backpressure** — lanes are bounded, so
///   producers block (rather than buffer) when the consumer is slow, and
///   **dropping the exchange** disconnects every lane: a blocked or future
///   `send` fails and each producer winds down without draining its input.
///   A satisfied limit therefore stops the whole pipeline, just as
///   abandoning a [`crate::QueryStream`] would.
#[derive(Debug)]
pub struct Exchange {
    lanes: std::vec::IntoIter<Receiver<Vec<Triple>>>,
    current: Option<Receiver<Vec<Triple>>>,
    batch: std::vec::IntoIter<Triple>,
    /// Rows still allowed out when a limit was peeled off the plan root for
    /// the morsel path (each producer morsel is limit-less); `None` when the
    /// producers enforce any limit themselves.
    remaining: Option<usize>,
}

impl Exchange {
    pub(crate) fn new(lanes: Vec<Receiver<Vec<Triple>>>, limit: Option<usize>) -> Exchange {
        let mut lanes = lanes.into_iter();
        let current = lanes.next();
        Exchange {
            lanes,
            current,
            batch: Vec::new().into_iter(),
            remaining: limit,
        }
    }

    /// The next result triple, in deterministic pipeline order, or `None`
    /// once every producer has finished (or the peeled limit is reached).
    pub fn next_triple(&mut self) -> Option<Triple> {
        if self.remaining == Some(0) {
            return None;
        }
        loop {
            if let Some(t) = self.batch.next() {
                if let Some(left) = &mut self.remaining {
                    *left -= 1;
                }
                return Some(t);
            }
            match self.current.as_ref()?.recv() {
                Ok(batch) => self.batch = batch.into_iter(),
                // Lane disconnected: its producer is done; move to the next
                // morsel's lane (or report exhaustion after the last).
                Err(_) => self.current = self.lanes.next(),
            }
        }
    }
}

/// The producer side of an exchange lane: pulls rows from `pull` and sends
/// them downstream in batches of [`EXCHANGE_BATCH_ROWS`]. Returns as soon as
/// the input is exhausted **or the consumer hangs up** (a `send` on a
/// disconnected lane fails) — the latter is how dropping an [`Exchange`]
/// terminates producers early.
pub(crate) fn pump(
    mut pull: impl FnMut(&mut EvalStats) -> Option<Triple>,
    lane: &SyncSender<Vec<Triple>>,
    stats: &mut EvalStats,
) {
    let mut batch = Vec::with_capacity(EXCHANGE_BATCH_ROWS);
    while let Some(t) = pull(stats) {
        batch.push(t);
        if batch.len() == EXCHANGE_BATCH_ROWS {
            let full = std::mem::replace(&mut batch, Vec::with_capacity(EXCHANGE_BATCH_ROWS));
            if lane.send(full).is_err() {
                return;
            }
        }
    }
    if !batch.is_empty() {
        let _ = lane.send(batch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_covers_disjointly_without_empty_morsels() {
        let data: Vec<u32> = (0..10).collect();
        for parts in 1..=12 {
            let chunks = chunk(&data, parts);
            assert!(chunks.len() <= parts);
            assert!(chunks.iter().all(|c| !c.is_empty()));
            let sizes: Vec<usize> = chunks.iter().map(|c| c.len()).collect();
            let (lo, hi) = (sizes.iter().min(), sizes.iter().max());
            assert!(hi.unwrap() - lo.unwrap() <= 1, "skewed: {sizes:?}");
            let flat: Vec<u32> = chunks.concat();
            assert_eq!(flat, data, "parts={parts}");
        }
        assert!(chunk::<u32>(&[], 4).is_empty());
        assert_eq!(chunk(&data, 0).len(), 1);
    }

    #[test]
    fn run_tasks_preserves_task_order_and_merges_stats() {
        for threads in [1usize, 2, 4, 9] {
            let tasks: Vec<_> = (0u64..8)
                .map(|i| {
                    move |stats: &mut EvalStats| {
                        stats.triples_scanned += i;
                        i * 10
                    }
                })
                .collect();
            let mut stats = EvalStats::new();
            let results = run_tasks(threads, tasks, &CancelToken::none(), &mut stats);
            assert_eq!(results, (0u64..8).map(|i| i * 10).collect::<Vec<_>>());
            assert_eq!(stats.triples_scanned, (0..8).sum::<u64>());
            if threads > 1 {
                assert_eq!(stats.parallel_morsels, 8);
            } else {
                assert_eq!(stats.parallel_morsels, 0);
            }
        }
    }

    #[test]
    fn run_tasks_inline_paths_touch_no_threads() {
        // A single task runs inline even with many threads.
        let mut stats = EvalStats::new();
        let results = run_tasks(
            8,
            vec![|s: &mut EvalStats| {
                s.triples_emitted += 1;
                42
            }],
            &CancelToken::none(),
            &mut stats,
        );
        assert_eq!(results, vec![42]);
        assert_eq!(stats.parallel_morsels, 0);
        assert_eq!(stats.triples_emitted, 1);
        // No tasks at all is fine.
        let none: Vec<fn(&mut EvalStats) -> u32> = Vec::new();
        assert!(run_tasks(4, none, &CancelToken::none(), &mut stats).is_empty());
    }

    #[test]
    fn join_pair_returns_both_sides_and_merges_stats() {
        let mut stats = EvalStats::new();
        let (a, b) = join_pair(
            |s: &mut EvalStats| {
                s.triples_scanned += 3;
                "near"
            },
            |s: &mut EvalStats| {
                s.triples_scanned += 4;
                "far"
            },
            &mut stats,
        );
        assert_eq!((a, b), ("near", "far"));
        assert_eq!(stats.triples_scanned, 7);
        assert_eq!(stats.parallel_morsels, 1);
    }

    #[test]
    fn exchange_preserves_lane_order_across_batch_boundaries() {
        use std::sync::mpsc::sync_channel;
        use trial_core::ObjectId;
        let t = |i: u32| Triple::new(ObjectId(i), ObjectId(0), ObjectId(0));
        // Two lanes with more rows than one batch each: the consumer must see
        // lane 0 fully, then lane 1 — the concatenation-in-morsel-order
        // contract streaming responses rely on.
        let per_lane = EXCHANGE_BATCH_ROWS + 7;
        let mut lanes = Vec::new();
        std::thread::scope(|scope| {
            for lane_no in 0..2u32 {
                let (tx, rx) = sync_channel(2);
                lanes.push(rx);
                scope.spawn(move || {
                    let mut next = lane_no * per_lane as u32;
                    let end = next + per_lane as u32;
                    let mut stats = EvalStats::new();
                    pump(
                        |_s| {
                            (next < end).then(|| {
                                let row = t(next);
                                next += 1;
                                row
                            })
                        },
                        &tx,
                        &mut stats,
                    );
                });
            }
            let mut exchange = Exchange::new(std::mem::take(&mut lanes), None);
            let mut got = Vec::new();
            while let Some(row) = exchange.next_triple() {
                got.push(row);
            }
            let expected: Vec<Triple> = (0..2 * per_lane as u32).map(t).collect();
            assert_eq!(got, expected);
        });
    }

    #[test]
    fn exchange_enforces_a_peeled_limit() {
        use std::sync::mpsc::sync_channel;
        use trial_core::ObjectId;
        let (tx, rx) = sync_channel(4);
        tx.send(vec![
            Triple::new(ObjectId(1), ObjectId(1), ObjectId(1)),
            Triple::new(ObjectId(2), ObjectId(2), ObjectId(2)),
            Triple::new(ObjectId(3), ObjectId(3), ObjectId(3)),
        ])
        .unwrap();
        drop(tx);
        let mut exchange = Exchange::new(vec![rx], Some(2));
        assert!(exchange.next_triple().is_some());
        assert!(exchange.next_triple().is_some());
        assert_eq!(exchange.next_triple(), None);
    }

    #[test]
    fn dropping_the_exchange_stops_a_blocked_producer() {
        use std::sync::mpsc::sync_channel;
        use trial_core::ObjectId;
        // Depth-1 lane and an endless input: the producer must block on
        // `send` after a couple of batches, then exit once the consumer side
        // is dropped — early termination through disconnect, not draining.
        let (tx, rx) = sync_channel(1);
        std::thread::scope(|scope| {
            let handle = scope.spawn(move || {
                let mut stats = EvalStats::new();
                let mut pumped = 0u64;
                pump(
                    |_s| {
                        pumped += 1;
                        Some(Triple::new(ObjectId(1), ObjectId(1), ObjectId(1)))
                    },
                    &tx,
                    &mut stats,
                );
                pumped
            });
            let mut exchange = Exchange::new(vec![rx], None);
            assert!(exchange.next_triple().is_some());
            drop(exchange);
            let pumped = handle.join().expect("producer thread panicked");
            // The producer stopped long before anything unbounded happened:
            // at most the in-flight batches plus one being built.
            assert!(pumped <= 4 * EXCHANGE_BATCH_ROWS as u64, "pumped={pumped}");
        });
    }

    #[test]
    fn worker_panics_propagate() {
        type BoxedTask = Box<dyn FnOnce(&mut EvalStats) -> u32 + Send>;
        let tasks: Vec<BoxedTask> = vec![
            Box::new(|_s: &mut EvalStats| 1),
            Box::new(|_s: &mut EvalStats| panic!("morsel exploded")),
        ];
        let mut stats = EvalStats::new();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_tasks(2, tasks, &CancelToken::none(), &mut stats)
        }));
        assert!(result.is_err());
    }

    #[test]
    fn cancelled_run_tasks_abandons_remaining_morsels() {
        use crate::cancel::CancelReason;
        // The first task cancels the shared token; whichever tasks have not
        // been popped yet must never run. With 1 worker the schedule is
        // deterministic: task 0 runs, the rest are abandoned.
        for threads in [1usize, 2, 4] {
            let token = CancelToken::manual();
            let ran = std::sync::atomic::AtomicU64::new(0);
            let tasks: Vec<_> = (0..64)
                .map(|_| {
                    let token = token.clone();
                    let ran = &ran;
                    move |_s: &mut EvalStats| {
                        ran.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        token.cancel(CancelReason::Deadline);
                    }
                })
                .collect();
            let mut stats = EvalStats::new();
            let results = run_tasks(threads, tasks, &token, &mut stats);
            let ran = ran.load(std::sync::atomic::Ordering::Relaxed);
            // At most one pop per worker can slip in before the latch is
            // observed, so almost all of the 64 tasks are abandoned.
            assert!(ran <= threads as u64, "ran={ran} at threads={threads}");
            assert_eq!(results.len() as u64, ran);
        }
        // Inline path with an already-cancelled token runs nothing at all.
        let dead = CancelToken::manual();
        dead.cancel(CancelReason::Shutdown);
        let mut stats = EvalStats::new();
        let tasks: Vec<fn(&mut EvalStats) -> u32> = vec![|_| 1, |_| 2];
        assert!(run_tasks(1, tasks, &dead, &mut stats).is_empty());
    }
}
