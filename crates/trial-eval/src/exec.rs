//! The plan executor: interprets a [`PlanNode`] tree against a store.
//!
//! This is the only evaluation path of the [`crate::SmartEngine`] — the
//! logical `Expr` tree is consumed by the planner and never inspected here.
//! The executor owns the per-query memo slots and threads the shared
//! [`EvalStats`] counters through every physical operator.

use crate::compile::CompiledConditions;
use crate::engine::{EvalOptions, EvalStats};
use crate::ops;
use crate::plan::{Plan, PlanNode};
use crate::reach;
use crate::seminaive::semi_naive_star;
use trial_core::{Adjacency, Error, Result, TripleSet, Triplestore};

/// Interprets plan trees; one instance per top-level evaluation.
pub(crate) struct Executor<'a> {
    store: &'a Triplestore,
    options: &'a EvalOptions,
    memo: Vec<Option<TripleSet>>,
}

impl<'a> Executor<'a> {
    /// Creates an executor with one empty memo slot per [`PlanNode::Memo`]
    /// in the plan.
    pub(crate) fn new(store: &'a Triplestore, options: &'a EvalOptions, plan: &Plan) -> Self {
        Executor {
            store,
            options,
            memo: vec![None; plan.memo_slots],
        }
    }

    /// Executes a plan node, returning its result set.
    pub(crate) fn run(&mut self, node: &PlanNode, stats: &mut EvalStats) -> Result<TripleSet> {
        match node {
            PlanNode::IndexScan {
                relation,
                bound,
                residual,
                ..
            } => self.index_scan(relation, *bound, residual, stats),
            PlanNode::Universe { .. } => ops::universe(self.store, self.options, stats),
            PlanNode::Empty => Ok(TripleSet::new()),
            PlanNode::Filter { input, cond, .. } => {
                let input = self.run(input, stats)?;
                let cond = CompiledConditions::compile(cond, self.store);
                Ok(ops::select(&input, &cond, self.store, stats))
            }
            PlanNode::HashJoin {
                left,
                right,
                output,
                cond,
                keys,
                ..
            } => {
                let l = self.run(left, stats)?;
                let r = self.run(right, stats)?;
                let cond = CompiledConditions::compile(cond, self.store);
                // Build on the planner's chosen keys so execution always
                // matches what explain() displays.
                let table = ops::JoinTable::build(&r, keys, stats);
                Ok(ops::hash_join_probe(
                    &l, &table, output, &cond, self.store, stats,
                ))
            }
            PlanNode::IndexNestedLoopJoin {
                outer,
                relation,
                probe,
                output,
                cond,
                ..
            } => {
                let outer = self.run(outer, stats)?;
                let (base, index) = self
                    .store
                    .relation_with_index(relation)
                    .ok_or_else(|| Error::UnknownRelation(relation.clone()))?;
                let cond = CompiledConditions::compile(cond, self.store);
                Ok(ops::index_nested_loop_join(
                    &outer, base, index, *probe, output, &cond, self.store, stats,
                ))
            }
            PlanNode::NestedLoopJoin {
                left,
                right,
                output,
                cond,
                ..
            } => {
                let l = self.run(left, stats)?;
                let r = self.run(right, stats)?;
                let cond = CompiledConditions::compile(cond, self.store);
                Ok(ops::nested_loop_join(
                    &l, &r, output, &cond, self.store, stats,
                ))
            }
            PlanNode::Union { left, right, .. } => {
                let l = self.run(left, stats)?;
                let r = self.run(right, stats)?;
                stats.triples_scanned += (l.len() + r.len()) as u64;
                Ok(l.union(&r))
            }
            PlanNode::Diff { left, right, .. } => {
                let l = self.run(left, stats)?;
                let r = self.run(right, stats)?;
                stats.triples_scanned += (l.len() + r.len()) as u64;
                Ok(l.difference(&r))
            }
            PlanNode::Intersect { left, right, .. } => {
                let l = self.run(left, stats)?;
                let r = self.run(right, stats)?;
                stats.triples_scanned += (l.len() + r.len()) as u64;
                Ok(l.intersection(&r))
            }
            PlanNode::Complement { input, .. } => {
                let e = self.run(input, stats)?;
                let u = ops::universe(self.store, self.options, stats)?;
                stats.triples_scanned += (e.len() + u.len()) as u64;
                Ok(u.difference(&e))
            }
            PlanNode::StarSemiNaive {
                input,
                output,
                cond,
                direction,
                ..
            } => {
                let base = self.run(input, stats)?;
                semi_naive_star(
                    &base,
                    output,
                    cond,
                    *direction,
                    self.store,
                    self.options,
                    stats,
                )
            }
            PlanNode::StarReach {
                input,
                same_label,
                relation,
                ..
            } => {
                let base = self.run(input, stats)?;
                self.star_reach(&base, *same_label, relation.as_deref(), stats)
            }
            PlanNode::Memo { slot, input } => {
                if let Some(cached) = &self.memo[*slot] {
                    stats.memo_hits += 1;
                    return Ok(cached.clone());
                }
                let result = self.run(input, stats)?;
                self.memo[*slot] = Some(result.clone());
                Ok(result)
            }
        }
    }

    /// Scans a relation, serving a pushed-down constant binding from the
    /// matching permutation index.
    fn index_scan(
        &self,
        relation: &str,
        bound: Option<(usize, trial_core::ObjectId)>,
        residual: &trial_core::Conditions,
        stats: &mut EvalStats,
    ) -> Result<TripleSet> {
        let (base, index) = self
            .store
            .relation_with_index(relation)
            .ok_or_else(|| Error::UnknownRelation(relation.to_owned()))?;
        let Some((component, value)) = bound else {
            if residual.is_empty() {
                return Ok(base.clone());
            }
            let cond = CompiledConditions::compile(residual, self.store);
            return Ok(ops::select(base, &cond, self.store, stats));
        };
        let slice = index.matching(base, component, value);
        stats.triples_scanned += slice.len() as u64;
        let residual =
            (!residual.is_empty()).then(|| CompiledConditions::compile(residual, self.store));
        let mut out = Vec::with_capacity(slice.len());
        for t in slice {
            if residual
                .as_ref()
                .is_none_or(|cond| cond.check_single(self.store, t))
            {
                out.push(*t);
                stats.triples_emitted += 1;
            }
        }
        // Runs of the SPO permutation are already in canonical order; the
        // other permutations interleave, so their runs are re-sorted.
        Ok(if component == 0 {
            TripleSet::from_sorted_vec(out)
        } else {
            TripleSet::from_vec(out)
        })
    }

    /// Runs a Proposition 5 reachability star, borrowing the store's cached
    /// adjacency lists when the base is a stored relation.
    fn star_reach(
        &self,
        base: &TripleSet,
        same_label: bool,
        relation: Option<&str>,
        stats: &mut EvalStats,
    ) -> Result<TripleSet> {
        if let Some((rel_base, index)) =
            relation.and_then(|name| self.store.relation_with_index(name))
        {
            debug_assert_eq!(rel_base, base, "relation hint must match the executed base");
            return Ok(if same_label {
                reach::reach_star_same_label(base, index.adjacency_by_label(rel_base), stats)
            } else {
                reach::reach_star_plain(base, index.adjacency(rel_base), stats)
            });
        }
        Ok(if same_label {
            let by_label = reach::label_adjacency(base);
            reach::reach_star_same_label(base, &by_label, stats)
        } else {
            let adjacency = Adjacency::from_triples(base.iter());
            reach::reach_star_plain(base, &adjacency, stats)
        })
    }
}
