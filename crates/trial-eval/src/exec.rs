//! The plan executor: compiles a [`PlanNode`] tree into a streaming cursor
//! pipeline, or interprets it with full materialisation.
//!
//! This is the only evaluation path of the [`crate::SmartEngine`] — the
//! logical `Expr` tree is consumed by the planner and never inspected here.
//! The executor owns the per-query memo slots and threads the shared
//! [`EvalStats`] counters through every physical operator.
//!
//! Two execution modes share the executor:
//!
//! * **streaming** (the default) — [`Executor::cursor`] compiles each
//!   operator into a pull-based [`Cursor`](crate::cursor::Cursor): work
//!   happens as rows are pulled and stops the moment the consumer stops (a
//!   satisfied [`PlanNode::Limit`], a closed connection). Pipeline breakers
//!   (hash-join build sides, difference/intersection right sides, star
//!   fixpoints, memo slots, complement inputs) are materialised at
//!   cursor-construction time via [`Executor::materialize`]; everything
//!   else streams. When a full result must be collected,
//!   [`Executor::materialize`] runs set-at-a-time operators *above* any
//!   limit boundary (building a set row-by-row through cursors would tax
//!   full-result queries for nothing) and switches to cursors beneath it.
//! * **materialised** ([`Executor::run`], kept as the reference
//!   implementation behind [`EvalOptions::streaming`]` = false`) — every
//!   operator computes its full [`TripleSet`] before the parent starts, and
//!   limits take the canonical prefix of the full result. The differential
//!   test-suite holds the two modes (and the naive engine) to identical
//!   results.

use crate::compile::CompiledConditions;
use crate::cursor::{
    ArcSetCursor, BoxCursor, ChainUnionCursor, ComplementCursor, DiffCursor, EmptyCursor,
    FilterCursor, HashJoinCursor, IndexJoinCursor, IntersectCursor, LimitCursor, MergeUnionCursor,
    NestedLoopCursor, ScanCursor, SetCursor, UniverseCursor,
};
use crate::engine::{EvalOptions, EvalStats};
use crate::ops;
use crate::plan::{Plan, PlanNode};
use crate::reach;
use crate::seminaive::semi_naive_star;
use std::sync::Arc;
use trial_core::{Adjacency, Error, Permutation, Result, TripleSet, Triplestore};

/// Interprets plan trees; one instance per top-level evaluation.
pub(crate) struct Executor<'a> {
    store: &'a Triplestore,
    options: EvalOptions,
    memo: Vec<Option<Arc<TripleSet>>>,
}

impl<'a> Executor<'a> {
    /// Creates an executor with one empty memo slot per [`PlanNode::Memo`]
    /// in the plan.
    pub(crate) fn new(store: &'a Triplestore, options: EvalOptions, plan: &Plan) -> Self {
        Executor {
            store,
            options,
            memo: vec![None; plan.memo_slots],
        }
    }

    /// Compiles a plan node into a streaming cursor, materialising exactly
    /// the pipeline-breaking inputs.
    pub(crate) fn cursor(
        &mut self,
        node: &PlanNode,
        stats: &mut EvalStats,
    ) -> Result<BoxCursor<'a>> {
        Ok(match node {
            PlanNode::IndexScan {
                relation,
                bound,
                residual,
                ..
            } => {
                let (base, index) = self
                    .store
                    .relation_with_index(relation)
                    .ok_or_else(|| Error::UnknownRelation(relation.clone()))?;
                let run = match bound {
                    None => index.scan_cursor(base, Permutation::Spo),
                    Some((component, value)) => index.matching_cursor(base, *component, *value),
                };
                let residual = (!residual.is_empty())
                    .then(|| CompiledConditions::compile(residual, self.store));
                Box::new(ScanCursor {
                    // Mirror the materialized interpreter's instrumentation:
                    // plain relation passthroughs are free, indexed runs and
                    // filtered scans count their rows.
                    instrument: bound.is_some() || residual.is_some(),
                    run,
                    residual,
                    store: self.store,
                })
            }
            PlanNode::Universe { .. } => {
                let adom = ops::universe_domain(self.store, &self.options)?;
                Box::new(UniverseCursor::new(adom))
            }
            PlanNode::Empty => Box::new(EmptyCursor),
            PlanNode::Filter { input, cond, .. } => {
                let input = self.cursor(input, stats)?;
                Box::new(FilterCursor {
                    input,
                    cond: CompiledConditions::compile(cond, self.store),
                    store: self.store,
                })
            }
            PlanNode::HashJoin {
                left,
                right,
                output,
                cond,
                keys,
                ..
            } => {
                // Build side: the one genuine materialisation of a hash join.
                let build = self.materialize(right, stats)?;
                let table = ops::JoinTable::build(&build, keys, stats);
                let probe = self.cursor(left, stats)?;
                stats.joins_executed += 1;
                Box::new(HashJoinCursor {
                    probe,
                    table,
                    output: *output,
                    cond: CompiledConditions::compile(cond, self.store),
                    store: self.store,
                    buf: Vec::new(),
                    buf_pos: 0,
                })
            }
            PlanNode::IndexNestedLoopJoin {
                outer,
                relation,
                probe,
                output,
                cond,
                ..
            } => {
                let (base, index) = self
                    .store
                    .relation_with_index(relation)
                    .ok_or_else(|| Error::UnknownRelation(relation.clone()))?;
                let outer = self.cursor(outer, stats)?;
                stats.joins_executed += 1;
                Box::new(IndexJoinCursor {
                    outer,
                    base,
                    index,
                    probe: *probe,
                    output: *output,
                    cond: CompiledConditions::compile(cond, self.store),
                    store: self.store,
                    current: None,
                    run: &[],
                    run_pos: 0,
                })
            }
            PlanNode::NestedLoopJoin {
                left,
                right,
                output,
                cond,
                ..
            } => {
                let right = self.materialize(right, stats)?;
                let left = self.cursor(left, stats)?;
                stats.joins_executed += 1;
                Box::new(NestedLoopCursor {
                    left,
                    right,
                    output: *output,
                    cond: CompiledConditions::compile(cond, self.store),
                    store: self.store,
                    current: None,
                    r_pos: 0,
                })
            }
            PlanNode::Union { left, right, .. } => {
                let l = self.cursor(left, stats)?;
                let r = self.cursor(right, stats)?;
                if left.ordered() && right.ordered() {
                    Box::new(MergeUnionCursor {
                        left: l,
                        right: r,
                        l_peek: None,
                        r_peek: None,
                        primed: false,
                    })
                } else {
                    Box::new(ChainUnionCursor {
                        left: l,
                        right: r,
                        on_right: false,
                    })
                }
            }
            PlanNode::Diff { left, right, .. } => {
                let rhs = self.materialize(right, stats)?;
                let input = self.cursor(left, stats)?;
                Box::new(DiffCursor { input, rhs })
            }
            PlanNode::Intersect { left, right, .. } => {
                let rhs = self.materialize(right, stats)?;
                let input = self.cursor(left, stats)?;
                Box::new(IntersectCursor { input, rhs })
            }
            PlanNode::Complement { input, .. } => {
                let exclude = self.materialize(input, stats)?;
                let adom = ops::universe_domain(self.store, &self.options)?;
                Box::new(ComplementCursor {
                    universe: UniverseCursor::new(adom),
                    exclude,
                })
            }
            PlanNode::StarSemiNaive {
                input,
                output,
                cond,
                direction,
                ..
            } => {
                let base = self.materialize(input, stats)?;
                let result = semi_naive_star(
                    &base,
                    output,
                    cond,
                    *direction,
                    self.store,
                    &self.options,
                    stats,
                )?;
                Box::new(SetCursor::new(result))
            }
            PlanNode::StarReach {
                input,
                same_label,
                relation,
                ..
            } => {
                let base = self.materialize(input, stats)?;
                let result = self.star_reach(&base, *same_label, relation.as_deref(), stats)?;
                Box::new(SetCursor::new(result))
            }
            PlanNode::Memo { slot, input } => {
                let set = match &self.memo[*slot] {
                    Some(cached) => {
                        stats.memo_hits += 1;
                        Arc::clone(cached)
                    }
                    None => {
                        let result = Arc::new(self.materialize(input, stats)?);
                        self.memo[*slot] = Some(Arc::clone(&result));
                        result
                    }
                };
                Box::new(ArcSetCursor { set, pos: 0 })
            }
            PlanNode::Limit { input, limit, .. } => {
                if *limit == 0 {
                    return Ok(Box::new(EmptyCursor));
                }
                let seen = (!input.ordered()).then(std::collections::HashSet::new);
                let input = self.cursor(input, stats)?;
                Box::new(LimitCursor {
                    input,
                    remaining: *limit,
                    seen,
                })
            }
        })
    }

    /// Materialises a plan node for the streaming execution mode: set-at-a-
    /// time operators everywhere **except** under [`PlanNode::Limit`], whose
    /// subtree is compiled to a cursor pipeline and drained with early
    /// termination.
    ///
    /// This is how pipeline breakers consume their blocking inputs and how
    /// an unlimited evaluation collects its result: operators whose output
    /// is naturally a full [`TripleSet`] build it directly (pulling a
    /// million triples one-by-one through a cursor just to rebuild the set
    /// would tax full-result queries for no benefit), while a limit boundary
    /// switches the subtree beneath it to pull-based cursors.
    pub(crate) fn materialize(
        &mut self,
        node: &PlanNode,
        stats: &mut EvalStats,
    ) -> Result<TripleSet> {
        if let PlanNode::Limit { .. } = node {
            // Streaming limit semantics: the first `limit` distinct triples
            // the pipeline yields, evaluation stops at the boundary.
            let ordered = node.ordered();
            let mut cursor = self.cursor(node, stats)?;
            // Seed capacity from the estimate, capped so a wild estimate
            // cannot over-allocate.
            let mut out = Vec::with_capacity(node.est().min(1 << 16));
            while let Some(t) = cursor.next(stats) {
                out.push(t);
            }
            return Ok(if ordered {
                TripleSet::from_sorted_vec(out)
            } else {
                TripleSet::from_vec(out)
            });
        }
        self.eval_set(node, stats, true)
    }

    /// Executes a plan node with full materialisation everywhere, including
    /// canonical-prefix limits. This is the reference interpreter the
    /// streaming pipeline is differentially tested against
    /// ([`EvalOptions::streaming`]` = false`).
    pub(crate) fn run(&mut self, node: &PlanNode, stats: &mut EvalStats) -> Result<TripleSet> {
        self.eval_set(node, stats, false)
    }

    /// The set-at-a-time interpreter shared by both execution modes;
    /// `stream_limits` selects how [`PlanNode::Limit`] subtrees run
    /// (cursor pipeline with early termination vs. canonical prefix of the
    /// fully evaluated input).
    fn eval_set(
        &mut self,
        node: &PlanNode,
        stats: &mut EvalStats,
        stream_limits: bool,
    ) -> Result<TripleSet> {
        let recurse = |this: &mut Self, n: &PlanNode, stats: &mut EvalStats| {
            if stream_limits {
                this.materialize(n, stats)
            } else {
                this.run(n, stats)
            }
        };
        match node {
            PlanNode::IndexScan {
                relation,
                bound,
                residual,
                ..
            } => self.index_scan(relation, *bound, residual, stats),
            PlanNode::Universe { .. } => ops::universe(self.store, &self.options, stats),
            PlanNode::Empty => Ok(TripleSet::new()),
            PlanNode::Filter { input, cond, .. } => {
                let input = recurse(self, input, stats)?;
                let cond = CompiledConditions::compile(cond, self.store);
                Ok(ops::select(&input, &cond, self.store, stats))
            }
            PlanNode::HashJoin {
                left,
                right,
                output,
                cond,
                keys,
                ..
            } => {
                let l = recurse(self, left, stats)?;
                let r = recurse(self, right, stats)?;
                let cond = CompiledConditions::compile(cond, self.store);
                // Build on the planner's chosen keys so execution always
                // matches what explain() displays.
                let table = ops::JoinTable::build(&r, keys, stats);
                Ok(ops::hash_join_probe(
                    &l, &table, output, &cond, self.store, stats,
                ))
            }
            PlanNode::IndexNestedLoopJoin {
                outer,
                relation,
                probe,
                output,
                cond,
                ..
            } => {
                let outer = recurse(self, outer, stats)?;
                let (base, index) = self
                    .store
                    .relation_with_index(relation)
                    .ok_or_else(|| Error::UnknownRelation(relation.clone()))?;
                let cond = CompiledConditions::compile(cond, self.store);
                Ok(ops::index_nested_loop_join(
                    &outer, base, index, *probe, output, &cond, self.store, stats,
                ))
            }
            PlanNode::NestedLoopJoin {
                left,
                right,
                output,
                cond,
                ..
            } => {
                let l = recurse(self, left, stats)?;
                let r = recurse(self, right, stats)?;
                let cond = CompiledConditions::compile(cond, self.store);
                Ok(ops::nested_loop_join(
                    &l, &r, output, &cond, self.store, stats,
                ))
            }
            PlanNode::Union { left, right, .. } => {
                let l = recurse(self, left, stats)?;
                let r = recurse(self, right, stats)?;
                stats.triples_scanned += (l.len() + r.len()) as u64;
                Ok(l.union(&r))
            }
            PlanNode::Diff { left, right, .. } => {
                let l = recurse(self, left, stats)?;
                let r = recurse(self, right, stats)?;
                stats.triples_scanned += (l.len() + r.len()) as u64;
                Ok(l.difference(&r))
            }
            PlanNode::Intersect { left, right, .. } => {
                let l = recurse(self, left, stats)?;
                let r = recurse(self, right, stats)?;
                stats.triples_scanned += (l.len() + r.len()) as u64;
                Ok(l.intersection(&r))
            }
            PlanNode::Complement { input, .. } => {
                let e = recurse(self, input, stats)?;
                let u = ops::universe(self.store, &self.options, stats)?;
                stats.triples_scanned += (e.len() + u.len()) as u64;
                Ok(u.difference(&e))
            }
            PlanNode::StarSemiNaive {
                input,
                output,
                cond,
                direction,
                ..
            } => {
                let base = recurse(self, input, stats)?;
                semi_naive_star(
                    &base,
                    output,
                    cond,
                    *direction,
                    self.store,
                    &self.options,
                    stats,
                )
            }
            PlanNode::StarReach {
                input,
                same_label,
                relation,
                ..
            } => {
                let base = recurse(self, input, stats)?;
                self.star_reach(&base, *same_label, relation.as_deref(), stats)
            }
            PlanNode::Memo { slot, input } => {
                if let Some(cached) = &self.memo[*slot] {
                    stats.memo_hits += 1;
                    return Ok((**cached).clone());
                }
                let result = recurse(self, input, stats)?;
                self.memo[*slot] = Some(Arc::new(result.clone()));
                Ok(result)
            }
            PlanNode::Limit { input, limit, .. } => {
                // Materialised limit semantics: the canonical prefix — the
                // `limit` smallest triples of the (sorted) full result.
                let result = recurse(self, input, stats)?;
                if result.len() <= *limit {
                    return Ok(result);
                }
                Ok(TripleSet::from_sorted_vec(
                    result.into_vec().into_iter().take(*limit).collect(),
                ))
            }
        }
    }

    /// Scans a relation, serving a pushed-down constant binding from the
    /// matching permutation index.
    fn index_scan(
        &self,
        relation: &str,
        bound: Option<(usize, trial_core::ObjectId)>,
        residual: &trial_core::Conditions,
        stats: &mut EvalStats,
    ) -> Result<TripleSet> {
        let (base, index) = self
            .store
            .relation_with_index(relation)
            .ok_or_else(|| Error::UnknownRelation(relation.to_owned()))?;
        let Some((component, value)) = bound else {
            if residual.is_empty() {
                return Ok(base.clone());
            }
            let cond = CompiledConditions::compile(residual, self.store);
            return Ok(ops::select(base, &cond, self.store, stats));
        };
        let slice = index.matching(base, component, value);
        stats.triples_scanned += slice.len() as u64;
        let residual =
            (!residual.is_empty()).then(|| CompiledConditions::compile(residual, self.store));
        let mut out = Vec::with_capacity(slice.len());
        for t in slice {
            if residual
                .as_ref()
                .is_none_or(|cond| cond.check_single(self.store, t))
            {
                out.push(*t);
                stats.triples_emitted += 1;
            }
        }
        // Runs of the SPO permutation are already in canonical order; the
        // other permutations interleave, so their runs are re-sorted.
        Ok(if component == 0 {
            TripleSet::from_sorted_vec(out)
        } else {
            TripleSet::from_vec(out)
        })
    }

    /// Runs a Proposition 5 reachability star, borrowing the store's cached
    /// adjacency lists when the base is a stored relation.
    fn star_reach(
        &self,
        base: &TripleSet,
        same_label: bool,
        relation: Option<&str>,
        stats: &mut EvalStats,
    ) -> Result<TripleSet> {
        if let Some((rel_base, index)) =
            relation.and_then(|name| self.store.relation_with_index(name))
        {
            debug_assert_eq!(rel_base, base, "relation hint must match the executed base");
            return Ok(if same_label {
                reach::reach_star_same_label(base, index.adjacency_by_label(rel_base), stats)
            } else {
                reach::reach_star_plain(base, index.adjacency(rel_base), stats)
            });
        }
        Ok(if same_label {
            let by_label = reach::label_adjacency(base);
            reach::reach_star_same_label(base, &by_label, stats)
        } else {
            let adjacency = Adjacency::from_triples(base.iter());
            reach::reach_star_plain(base, &adjacency, stats)
        })
    }
}
