//! The plan executor: compiles a [`PlanNode`] tree into a streaming cursor
//! pipeline, or interprets it with full materialisation.
//!
//! This is the only evaluation path of the [`crate::SmartEngine`] — the
//! logical `Expr` tree is consumed by the planner and never inspected here.
//! The executor owns the per-query memo slots and threads the shared
//! [`EvalStats`] counters through every physical operator.
//!
//! Two execution modes share the executor:
//!
//! * **streaming** (the default) — [`Executor::cursor`] compiles each
//!   operator into a pull-based [`Cursor`](crate::cursor::Cursor): work
//!   happens as rows are pulled and stops the moment the consumer stops (a
//!   satisfied [`PlanNode::Limit`], a closed connection). Pipeline breakers
//!   (hash-join build sides, difference/intersection right sides, star
//!   fixpoints, memo slots, complement inputs) are materialised at
//!   cursor-construction time via [`Executor::materialize`]; everything
//!   else streams. When a full result must be collected,
//!   [`Executor::materialize`] runs set-at-a-time operators *above* any
//!   limit boundary (building a set row-by-row through cursors would tax
//!   full-result queries for nothing) and switches to cursors beneath it.
//! * **materialised** ([`Executor::run`], kept as the reference
//!   implementation behind [`EvalOptions::streaming`]` = false`) — every
//!   operator computes its full [`TripleSet`] before the parent starts, and
//!   limits take the canonical prefix of the full result. The differential
//!   test-suite holds the two modes (and the naive engine) to identical
//!   results.

use crate::compile::CompiledConditions;
use crate::cursor::{
    ArcSetCursor, BoxCursor, ChainUnionCursor, ComplementCursor, DiffCursor, EmptyCursor,
    FilterCursor, HashJoinCursor, IndexJoinCursor, IntersectCursor, LimitCursor, MergeJoinCursor,
    MergeUnionCursor, NestedLoopCursor, ProfiledCursor, RowsCursor, ScanCursor, SetCursor,
    SkipCursor, TopKCursor, UniverseCursor,
};
use crate::engine::{EvalOptions, EvalStats};
use crate::ops;
use crate::parallel;
use crate::plan::{Plan, PlanNode};
use crate::profile::{Profiler, QueryProfile};
use crate::reach;
use crate::seminaive::semi_naive_star;
use std::borrow::Cow;
use std::sync::Arc;
use std::time::Instant;
use trial_core::{Adjacency, Error, ObjectId, Permutation, Result, Triple, TripleSet, Triplestore};

/// The identity of a plan node for per-node bookkeeping (actuals and wall
/// timers): its address, stable for the lifetime of one evaluation — the
/// plan tree is never mutated while an executor borrows it.
pub(crate) fn node_key(node: &PlanNode) -> usize {
    node as *const PlanNode as usize
}

/// Plan nodes that perform **blocking work at cursor-construction time**
/// (materialising an input, building a table, running a fixpoint) — the
/// pipeline breakers whose construction latency the profiler reports as
/// `build_us`, separate from per-row pull time.
fn records_build_time(node: &PlanNode) -> bool {
    matches!(
        node,
        PlanNode::HashJoin { .. }
            | PlanNode::NestedLoopJoin { .. }
            | PlanNode::Diff { .. }
            | PlanNode::Intersect { .. }
            | PlanNode::Complement { .. }
            | PlanNode::StarSemiNaive { .. }
            | PlanNode::StarReach { .. }
            | PlanNode::PathNfa { .. }
            | PlanNode::Memo { .. }
            | PlanNode::Sort { .. }
            | PlanNode::Universe { .. }
    )
}

/// Memo slots shared by an executor and its worker-thread siblings: one
/// mutex-guarded slot per [`PlanNode::Memo`]. The slot's lock is **held
/// while the shared sub-expression is computed**, so exactly one executor
/// ever evaluates it (concurrent arrivals block, then hit) — work counters
/// stay identical to the single-threaded run. Holding a lock across the
/// recursive evaluation cannot deadlock: a memo slot can only wait on slots
/// of its *strict* sub-expressions, and the sub-expression relation is
/// acyclic.
type MemoSlots = Arc<Vec<std::sync::Mutex<Option<Arc<TripleSet>>>>>;

/// Interprets plan trees; one instance per top-level evaluation.
pub(crate) struct Executor<'a> {
    store: &'a Triplestore,
    options: EvalOptions,
    memo: MemoSlots,
    /// Per-node wall timers and actual-cardinality records, active when
    /// [`EvalOptions::collect_node_stats`] is set (exact, stride 1) or
    /// [`EvalOptions::profile_sample`] is positive (sampled).
    profiler: Option<Profiler>,
}

impl<'a> Executor<'a> {
    /// Creates an executor with one empty memo slot per [`PlanNode::Memo`]
    /// in the plan.
    pub(crate) fn new(store: &'a Triplestore, options: EvalOptions, plan: &Plan) -> Self {
        let profiler = if options.collect_node_stats {
            Some(Profiler::new(1))
        } else if options.profile_sample > 0 {
            Some(Profiler::new(options.profile_sample))
        } else {
            None
        };
        Executor {
            store,
            options,
            memo: Arc::new((0..plan.memo_slots).map(|_| Default::default()).collect()),
            profiler,
        }
    }

    /// A sibling executor for evaluating an independent subtree on a worker
    /// thread. It shares the store, options, **memo slots** (so a repeated
    /// sub-expression is still computed exactly once, whichever side reaches
    /// it first) and the **profiler** — sibling measurements land in the
    /// same per-node timers, no merge step needed.
    fn child(&self) -> Executor<'a> {
        Executor {
            store: self.store,
            options: self.options.clone(),
            memo: Arc::clone(&self.memo),
            profiler: self.profiler.clone(),
        }
    }

    /// Resolves a memo slot: returns the cached sub-result or computes it
    /// with `compute` while holding the slot's lock (see [`MemoSlots`]).
    fn memo_slot(
        &mut self,
        slot: usize,
        stats: &mut EvalStats,
        compute: impl FnOnce(&mut Self, &mut EvalStats) -> Result<TripleSet>,
    ) -> Result<Arc<TripleSet>> {
        let slots = Arc::clone(&self.memo);
        let mut guard = slots[slot]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(cached) = &*guard {
            stats.memo_hits += 1;
            return Ok(Arc::clone(cached));
        }
        let result = Arc::new(compute(self, stats)?);
        *guard = Some(Arc::clone(&result));
        Ok(result)
    }

    /// The morsel-parallel degree for an operator over `rows` input rows:
    /// [`EvalOptions::threads`] when parallelism is on and the input is
    /// large enough to amortise spawn/merge overhead, 1 otherwise.
    fn degree(&self, rows: usize) -> usize {
        if self.options.threads > 1 && rows >= self.options.parallel_min_rows {
            self.options.threads
        } else {
            1
        }
    }

    /// Records a node's **materialised** output cardinality (no-op unless
    /// the profiler is active).
    fn record(&mut self, node: &PlanNode, rows: usize) {
        if let Some(profiler) = &self.profiler {
            profiler.timer(node_key(node)).set_mat_rows(rows as u64);
        }
    }

    /// `EXPLAIN ANALYZE` actuals in plan preorder: each node's materialised
    /// output cardinality, `None` for nodes that only executed inside a
    /// streaming pipeline (or with the profiler off).
    pub(crate) fn node_actuals(&self, plan: &Plan) -> Vec<Option<u64>> {
        let nodes = plan.root.preorder();
        match &self.profiler {
            Some(profiler) => nodes
                .into_iter()
                .map(|node| profiler.mat_rows_of(node_key(node)))
                .collect(),
            None => vec![None; nodes.len()],
        }
    }

    /// A read handle onto this evaluation's per-node timers, valid after the
    /// executor (and any cursors it compiled) are gone; `None` with the
    /// profiler off.
    pub(crate) fn query_profile(&self, plan: &Plan) -> Option<QueryProfile> {
        self.profiler
            .as_ref()
            .map(|profiler| QueryProfile::new(profiler.clone(), plan))
    }

    /// Compiles a plan node into a streaming cursor, materialising exactly
    /// the pipeline-breaking inputs. With the profiler active every compiled
    /// operator is wrapped in a [`ProfiledCursor`] shim, and pipeline
    /// breakers additionally record their blocking construction work as
    /// build time.
    pub(crate) fn cursor(
        &mut self,
        node: &PlanNode,
        stats: &mut EvalStats,
    ) -> Result<BoxCursor<'a>> {
        let Some(profiler) = self.profiler.clone() else {
            return self.cursor_inner(node, stats);
        };
        let start = Instant::now();
        let inner = self.cursor_inner(node, stats)?;
        let timer = profiler.timer(node_key(node));
        if records_build_time(node) {
            timer.add_build(start.elapsed());
        }
        Ok(Box::new(ProfiledCursor::new(
            inner,
            timer,
            profiler.stride(),
        )))
    }

    fn cursor_inner(&mut self, node: &PlanNode, stats: &mut EvalStats) -> Result<BoxCursor<'a>> {
        Ok(match node {
            PlanNode::IndexScan {
                relation,
                bound,
                residual,
                order,
                ..
            } => {
                let (base, index) = self
                    .store
                    .relation_with_index(relation)
                    .ok_or_else(|| Error::UnknownRelation(relation.clone()))?;
                let run = match bound {
                    None => index.scan_cursor(base, *order),
                    Some((component, value)) => index.matching_cursor(base, *component, *value),
                };
                let residual = (!residual.is_empty())
                    .then(|| CompiledConditions::compile(residual, self.store));
                Box::new(ScanCursor {
                    // Mirror the materialized interpreter's instrumentation:
                    // plain relation passthroughs are free, indexed runs and
                    // filtered scans count their rows.
                    instrument: bound.is_some() || residual.is_some(),
                    run,
                    residual,
                    store: self.store,
                })
            }
            PlanNode::Universe { .. } => {
                let adom = ops::universe_domain(self.store, &self.options)?;
                Box::new(UniverseCursor::new(adom))
            }
            PlanNode::Empty => Box::new(EmptyCursor),
            PlanNode::Filter { input, cond, .. } => {
                let input = self.cursor(input, stats)?;
                Box::new(FilterCursor {
                    input,
                    cond: CompiledConditions::compile(cond, self.store),
                    store: self.store,
                })
            }
            PlanNode::HashJoin {
                left,
                right,
                output,
                cond,
                keys,
                ..
            } => {
                // Build side: the one genuine materialisation of a hash
                // join. The build itself shards across workers when large;
                // the probe side stays a sequential pull-based stream (its
                // consumer may stop at any triple).
                let build = self.materialize(right, stats)?;
                let degree = self.degree(build.len());
                let table = if degree > 1 {
                    ops::JoinTable::build_parallel(
                        &build,
                        keys,
                        degree,
                        &self.options.cancel,
                        stats,
                    )
                } else {
                    ops::JoinTable::build(&build, keys, stats)
                };
                let probe = self.cursor(left, stats)?;
                stats.joins_executed += 1;
                Box::new(HashJoinCursor {
                    probe,
                    table,
                    output: *output,
                    cond: CompiledConditions::compile(cond, self.store),
                    store: self.store,
                    buf: Vec::new(),
                    buf_pos: 0,
                })
            }
            PlanNode::MergeJoin {
                left,
                right,
                output,
                cond,
                key,
                ..
            } => {
                // Both inputs stream pre-sorted on the join-key component
                // (the planner guarantees it); the join is a synchronized
                // pass with no build side and no hash table.
                let l = self.cursor(left, stats)?;
                let r = self.cursor(right, stats)?;
                stats.joins_executed += 1;
                Box::new(MergeJoinCursor {
                    left: l,
                    right: r,
                    lc: key.0.component_index(),
                    rc: key.1.component_index(),
                    output: *output,
                    cond: CompiledConditions::compile(cond, self.store),
                    store: self.store,
                    emit_once: *output == trial_core::OutputSpec::IDENTITY,
                    l_cur: None,
                    group: Vec::new(),
                    group_key: None,
                    group_pos: 0,
                    r_peek: None,
                    primed: false,
                })
            }
            PlanNode::IndexNestedLoopJoin {
                outer,
                relation,
                probe,
                output,
                cond,
                ..
            } => {
                let (base, index) = self
                    .store
                    .relation_with_index(relation)
                    .ok_or_else(|| Error::UnknownRelation(relation.clone()))?;
                let outer = self.cursor(outer, stats)?;
                stats.joins_executed += 1;
                Box::new(IndexJoinCursor {
                    outer,
                    base,
                    index,
                    probe: *probe,
                    output: *output,
                    cond: CompiledConditions::compile(cond, self.store),
                    store: self.store,
                    current: None,
                    run: &[],
                    run_pos: 0,
                })
            }
            PlanNode::NestedLoopJoin {
                left,
                right,
                output,
                cond,
                ..
            } => {
                let right = self.materialize(right, stats)?;
                let left = self.cursor(left, stats)?;
                stats.joins_executed += 1;
                Box::new(NestedLoopCursor {
                    left,
                    right,
                    output: *output,
                    cond: CompiledConditions::compile(cond, self.store),
                    store: self.store,
                    current: None,
                    r_pos: 0,
                })
            }
            PlanNode::Union { left, right, .. } => {
                let l = self.cursor(left, stats)?;
                let r = self.cursor(right, stats)?;
                // Merge whenever the two sides share *any* sort order (not
                // just the canonical one), so ordered deliveries survive
                // unions; concatenate otherwise.
                let shared = left.ordering().filter(|p| right.ordering() == Some(*p));
                if let Some(perm) = shared {
                    Box::new(MergeUnionCursor {
                        left: l,
                        right: r,
                        perm,
                        l_peek: None,
                        r_peek: None,
                        primed: false,
                    })
                } else {
                    Box::new(ChainUnionCursor {
                        left: l,
                        right: r,
                        on_right: false,
                    })
                }
            }
            PlanNode::Diff { left, right, .. } => {
                let rhs = self.materialize(right, stats)?;
                let input = self.cursor(left, stats)?;
                Box::new(DiffCursor { input, rhs })
            }
            PlanNode::Intersect { left, right, .. } => {
                let rhs = self.materialize(right, stats)?;
                let input = self.cursor(left, stats)?;
                Box::new(IntersectCursor { input, rhs })
            }
            PlanNode::Complement { input, .. } => {
                let exclude = self.materialize(input, stats)?;
                let adom = ops::universe_domain(self.store, &self.options)?;
                Box::new(ComplementCursor {
                    universe: UniverseCursor::new(adom),
                    exclude,
                })
            }
            PlanNode::StarSemiNaive {
                input,
                output,
                cond,
                direction,
                ..
            } => {
                let base = self.materialize(input, stats)?;
                let result = semi_naive_star(
                    &base,
                    output,
                    cond,
                    *direction,
                    self.store,
                    &self.options,
                    stats,
                )?;
                Box::new(SetCursor::new(result))
            }
            PlanNode::StarReach {
                input,
                same_label,
                relation,
                ..
            } => {
                let base = self.materialize(input, stats)?;
                let result = self.star_reach(&base, *same_label, relation.as_deref(), stats)?;
                Box::new(SetCursor::new(result))
            }
            PlanNode::PathNfa {
                relation,
                path,
                max_hops,
                ..
            } => {
                let result = self.path_nfa(relation, path, *max_hops, stats)?;
                Box::new(SetCursor::new(result))
            }
            PlanNode::Memo { slot, input } => {
                let set =
                    self.memo_slot(*slot, stats, |this, stats| this.materialize(input, stats))?;
                Box::new(ArcSetCursor { set, pos: 0 })
            }
            PlanNode::Limit { input, limit, .. } => {
                if *limit == 0 {
                    return Ok(Box::new(EmptyCursor));
                }
                // A stream sorted under *any* permutation key is strictly
                // increasing in a total order, hence duplicate-free: the
                // countdown needs no seen-set.
                let seen = input
                    .ordering()
                    .is_none()
                    .then(std::collections::HashSet::new);
                let input = self.cursor(input, stats)?;
                Box::new(LimitCursor {
                    input,
                    remaining: *limit,
                    seen,
                })
            }
            PlanNode::Sort { input, order, .. } => {
                // The order breaker: materialise the input (set-at-a-time,
                // breakers beneath still parallelise), then re-emit in the
                // requested permutation's key order.
                let set = self.materialize(input, stats)?;
                if *order == Permutation::Spo {
                    Box::new(SetCursor::new(set))
                } else {
                    let mut rows = set.into_vec();
                    rows.sort_unstable_by_key(|t| order.key(t));
                    Box::new(RowsCursor { rows, pos: 0 })
                }
            }
            PlanNode::TopK {
                input, k, order, ..
            } => {
                if *k == 0 {
                    return Ok(Box::new(EmptyCursor));
                }
                let input = self.cursor(input, stats)?;
                Box::new(TopKCursor {
                    input,
                    k: *k,
                    order: *order,
                    out: Vec::new(),
                    pos: 0,
                    drained: false,
                    cancel: self.options.cancel.checker(),
                })
            }
        })
    }

    /// Compiles `node` into independently drainable **morsel pipelines**
    /// whose in-order concatenation yields exactly the rows of
    /// [`Executor::cursor`] on the same node — the producer side of
    /// [`crate::QueryStream::channel`]'s ordered multi-lane exchange.
    ///
    /// Only operators whose parallel instances are contiguous ranges of one
    /// permutation run qualify: index scans (bound or not, residuals
    /// included) carve via the storage layer's partitioned cursors, and
    /// filters distribute over a morselizable input. Everything else returns
    /// `None` and the exchange falls back to a single producer.
    pub(crate) fn morsel_cursors(
        &mut self,
        node: &PlanNode,
        parts: usize,
    ) -> Result<Option<Vec<BoxCursor<'a>>>> {
        let morsels = self.morsel_cursors_inner(node, parts)?;
        let Some(profiler) = self.profiler.clone() else {
            return Ok(morsels);
        };
        // Every morsel instance shares the node's timer: rows and time sum
        // across the fan-out (elapsed reads as worker time, not wall time).
        Ok(morsels.map(|cursors| {
            cursors
                .into_iter()
                .map(|cursor| {
                    let timer = profiler.timer(node_key(node));
                    Box::new(ProfiledCursor::new(cursor, timer, profiler.stride())) as BoxCursor<'a>
                })
                .collect()
        }))
    }

    fn morsel_cursors_inner(
        &mut self,
        node: &PlanNode,
        parts: usize,
    ) -> Result<Option<Vec<BoxCursor<'a>>>> {
        Ok(match node {
            PlanNode::IndexScan {
                relation,
                bound,
                residual,
                order,
                ..
            } => {
                let (base, index) = self
                    .store
                    .relation_with_index(relation)
                    .ok_or_else(|| Error::UnknownRelation(relation.clone()))?;
                let runs = match bound {
                    None => index.partition_cursors(base, *order, parts),
                    Some((component, value)) => {
                        index.partition_matching_cursors(base, *component, *value, parts)
                    }
                };
                let instrument = bound.is_some() || !residual.is_empty();
                Some(
                    runs.into_iter()
                        .map(|run| {
                            let residual = (!residual.is_empty())
                                .then(|| CompiledConditions::compile(residual, self.store));
                            Box::new(ScanCursor {
                                instrument,
                                run,
                                residual,
                                store: self.store,
                            }) as BoxCursor<'a>
                        })
                        .collect(),
                )
            }
            PlanNode::Filter { input, cond, .. } => {
                self.morsel_cursors(input, parts)?.map(|inputs| {
                    inputs
                        .into_iter()
                        .map(|input| {
                            Box::new(FilterCursor {
                                input,
                                cond: CompiledConditions::compile(cond, self.store),
                                store: self.store,
                            }) as BoxCursor<'a>
                        })
                        .collect()
                })
            }
            _ => None,
        })
    }

    /// Compiles `node` — whose stream must be ordered under `order`'s key —
    /// into a cursor resumed strictly **after** the key `after`: the
    /// executor half of resumable pagination.
    ///
    /// The seek is pushed into the storage layer where the root shape allows
    /// it (index scans seek their permutation run in `O(log n)`, filters and
    /// limits pass the seek through), and otherwise degrades to a
    /// [`SkipCursor`] that drops the already-served prefix — correct for any
    /// ordered root, linear in the rows skipped.
    pub(crate) fn cursor_seek(
        &mut self,
        node: &PlanNode,
        order: Permutation,
        after: [ObjectId; 3],
        stats: &mut EvalStats,
    ) -> Result<BoxCursor<'a>> {
        let Some(profiler) = self.profiler.clone() else {
            return self.cursor_seek_inner(node, order, after, stats);
        };
        let inner = self.cursor_seek_inner(node, order, after, stats)?;
        let timer = profiler.timer(node_key(node));
        Ok(Box::new(ProfiledCursor::new(
            inner,
            timer,
            profiler.stride(),
        )))
    }

    fn cursor_seek_inner(
        &mut self,
        node: &PlanNode,
        order: Permutation,
        after: [ObjectId; 3],
        stats: &mut EvalStats,
    ) -> Result<BoxCursor<'a>> {
        debug_assert_eq!(
            node.ordering(),
            Some(order),
            "cursor_seek requires a root ordered on the seek permutation"
        );
        Ok(match node {
            PlanNode::Limit { input, limit, .. } => {
                if *limit == 0 {
                    return Ok(Box::new(EmptyCursor));
                }
                // The limit's input is ordered (it delivers this node's
                // order), hence distinct: no seen-set, and the countdown
                // restarts fresh for the resumed page.
                let input = self.cursor_seek(input, order, after, stats)?;
                Box::new(LimitCursor {
                    input,
                    remaining: *limit,
                    seen: None,
                })
            }
            PlanNode::IndexScan {
                relation,
                bound,
                residual,
                order: scan_order,
                ..
            } => {
                let (base, index) = self
                    .store
                    .relation_with_index(relation)
                    .ok_or_else(|| Error::UnknownRelation(relation.clone()))?;
                let mut run = match bound {
                    None => index.scan_cursor(base, *scan_order),
                    Some((component, value)) => index.matching_cursor(base, *component, *value),
                };
                run.seek(order, after);
                let residual = (!residual.is_empty())
                    .then(|| CompiledConditions::compile(residual, self.store));
                Box::new(ScanCursor {
                    instrument: bound.is_some() || residual.is_some(),
                    run,
                    residual,
                    store: self.store,
                })
            }
            PlanNode::Filter { input, cond, .. } => {
                let input = self.cursor_seek(input, order, after, stats)?;
                Box::new(FilterCursor {
                    input,
                    cond: CompiledConditions::compile(cond, self.store),
                    store: self.store,
                })
            }
            other => Box::new(SkipCursor {
                input: self.cursor(other, stats)?,
                order,
                after,
                skipping: true,
            }),
        })
    }

    /// Materialises a plan node for the streaming execution mode: set-at-a-
    /// time operators everywhere **except** under [`PlanNode::Limit`], whose
    /// subtree is compiled to a cursor pipeline and drained with early
    /// termination.
    ///
    /// This is how pipeline breakers consume their blocking inputs and how
    /// an unlimited evaluation collects its result: operators whose output
    /// is naturally a full [`TripleSet`] build it directly (pulling a
    /// million triples one-by-one through a cursor just to rebuild the set
    /// would tax full-result queries for no benefit), while a limit boundary
    /// switches the subtree beneath it to pull-based cursors.
    pub(crate) fn materialize(
        &mut self,
        node: &PlanNode,
        stats: &mut EvalStats,
    ) -> Result<TripleSet> {
        if matches!(node, PlanNode::Limit { .. } | PlanNode::TopK { .. }) {
            // Streaming limit semantics: the first `limit` distinct triples
            // the pipeline yields, evaluation stops at the boundary. This is
            // the **explicit sequential fallback** of the parallel executor:
            // a limited subtree runs as a single pull-based pipeline because
            // a parallel drain would race workers past the limit and forfeit
            // early termination (breakers beneath the limit still
            // parallelise inside their own materialisation).
            //
            // Top-k subtrees take the same route for a different reason: the
            // cursor's bounded heap is what keeps memory at ≤ k buffered
            // rows above the deepest breaker — the set-at-a-time reference
            // (`run`) would materialise the whole input first.
            let ordered = node.ordered();
            let mut cursor = self.cursor(node, stats)?;
            // Seed capacity from the estimate, capped so a wild estimate
            // cannot over-allocate.
            let mut out = Vec::with_capacity(node.est().min(1 << 16));
            // The drain is a cancellation checkpoint: the limit/top-k subtree
            // can be long-running and this loop is its only pull site.
            let mut checker = self.options.cancel.checker();
            while let Some(t) = cursor.next(stats) {
                if checker.should_stop() {
                    self.options.cancel.check()?;
                }
                out.push(t);
            }
            // A cancelled pipeline ends its stream early (cursors are
            // infallible); convert the latch into the structured error
            // before the truncated drain can pass for a complete result.
            self.options.cancel.check()?;
            let result = if ordered {
                TripleSet::from_sorted_vec(out)
            } else {
                TripleSet::from_vec(out)
            };
            self.record(node, result.len());
            return Ok(result);
        }
        self.eval_set(node, stats, true)
    }

    /// Executes a plan node with full materialisation everywhere, including
    /// canonical-prefix limits. This is the reference interpreter the
    /// streaming pipeline is differentially tested against
    /// ([`EvalOptions::streaming`]` = false`).
    pub(crate) fn run(&mut self, node: &PlanNode, stats: &mut EvalStats) -> Result<TripleSet> {
        self.eval_set(node, stats, false)
    }

    /// The set-at-a-time interpreter shared by both execution modes;
    /// `stream_limits` selects how [`PlanNode::Limit`] subtrees run
    /// (cursor pipeline with early termination vs. canonical prefix of the
    /// fully evaluated input). Records per-node actual cardinalities when
    /// [`EvalOptions::collect_node_stats`] is on.
    fn eval_set(
        &mut self,
        node: &PlanNode,
        stats: &mut EvalStats,
        stream_limits: bool,
    ) -> Result<TripleSet> {
        // Per-node checkpoint of the set-at-a-time interpreter: every
        // operator (and every fixpoint base, breaker input, memo fill)
        // passes through here, so a latched token stops the evaluation at
        // the next node boundary — and discards any partial morsel output a
        // cancelled `run_tasks` fan-out may have produced.
        self.options.cancel.check()?;
        let start = self.profiler.is_some().then(Instant::now);
        let result = self.eval_set_inner(node, stats, stream_limits)?;
        // Re-check on the way out: a morsel fan-out cancelled mid-node
        // delivers a truncated set, which must surface as the error, not as
        // this node's result.
        self.options.cancel.check()?;
        if let (Some(profiler), Some(start)) = (&self.profiler, start) {
            // Inclusive wall time: a parent's measurement covers its
            // children (mirroring the cursor shim's semantics).
            profiler.timer(node_key(node)).add_full(start.elapsed());
        }
        self.record(node, result.len());
        Ok(result)
    }

    /// Evaluates the two inputs of a binary operator, overlapping them on
    /// two threads when parallelism is on and both sides are estimated
    /// large enough to be worth a spawn: the right (blocking) side
    /// materialises on a worker driven by a sibling executor while the left
    /// side runs on the current thread — how difference/intersection right
    /// sides and join build sides stop serialising behind their siblings.
    fn eval_pair(
        &mut self,
        left: &PlanNode,
        right: &PlanNode,
        stats: &mut EvalStats,
        stream_limits: bool,
    ) -> Result<(TripleSet, TripleSet)> {
        let overlap = self.options.threads > 1
            && left.est().min(right.est()) >= self.options.parallel_min_rows;
        if !overlap {
            let l = self.eval_mode(left, stats, stream_limits)?;
            let r = self.eval_mode(right, stats, stream_limits)?;
            return Ok((l, r));
        }
        let mut far = self.child();
        // The sibling shares the profiler: its per-node measurements land in
        // the same timers, so nothing needs merging back.
        let (l, r) = parallel::join_pair(
            |stats| self.eval_mode(left, stats, stream_limits),
            move |stats| far.eval_mode(right, stats, stream_limits),
            stats,
        );
        Ok((l?, r?))
    }

    /// Dispatches to the execution mode selected by `stream_limits`:
    /// [`Executor::materialize`] (streaming limits) or [`Executor::run`]
    /// (canonical-prefix limits).
    fn eval_mode(
        &mut self,
        node: &PlanNode,
        stats: &mut EvalStats,
        stream_limits: bool,
    ) -> Result<TripleSet> {
        if stream_limits {
            self.materialize(node, stats)
        } else {
            self.run(node, stats)
        }
    }

    fn eval_set_inner(
        &mut self,
        node: &PlanNode,
        stats: &mut EvalStats,
        stream_limits: bool,
    ) -> Result<TripleSet> {
        let recurse = |this: &mut Self, n: &PlanNode, stats: &mut EvalStats| {
            if stream_limits {
                this.materialize(n, stats)
            } else {
                this.run(n, stats)
            }
        };
        match node {
            PlanNode::IndexScan {
                relation,
                bound,
                residual,
                ..
            } => self.index_scan(relation, *bound, residual, stats),
            PlanNode::Universe { .. } => ops::universe(self.store, &self.options, stats),
            PlanNode::Empty => Ok(TripleSet::new()),
            PlanNode::Filter { input, cond, .. } => {
                let input = recurse(self, input, stats)?;
                let cond = CompiledConditions::compile(cond, self.store);
                let degree = self.degree(input.len());
                Ok(if degree > 1 {
                    ops::select_parallel(
                        &input,
                        &cond,
                        self.store,
                        degree,
                        &self.options.cancel,
                        stats,
                    )
                } else {
                    ops::select(&input, &cond, self.store, stats)
                })
            }
            PlanNode::HashJoin {
                left,
                right,
                output,
                cond,
                keys,
                ..
            } => {
                let (l, r) = self.eval_pair(left, right, stats, stream_limits)?;
                let cond = CompiledConditions::compile(cond, self.store);
                // Build on the planner's chosen keys so execution always
                // matches what explain() displays; shard the build and
                // partition the probe across workers when the sides are
                // large enough.
                let build_degree = self.degree(r.len());
                let build_start = self.profiler.is_some().then(Instant::now);
                let table = if build_degree > 1 {
                    ops::JoinTable::build_parallel(
                        &r,
                        keys,
                        build_degree,
                        &self.options.cancel,
                        stats,
                    )
                } else {
                    ops::JoinTable::build(&r, keys, stats)
                };
                // Mirror the cursor path's breaker semantics: the blocking
                // table construction is reported as build time.
                if let (Some(profiler), Some(start)) = (&self.profiler, build_start) {
                    profiler.timer(node_key(node)).add_build(start.elapsed());
                }
                let probe_degree = self.degree(l.len());
                Ok(if probe_degree > 1 {
                    ops::hash_join_probe_parallel(
                        &l,
                        &table,
                        output,
                        &cond,
                        self.store,
                        probe_degree,
                        &self.options.cancel,
                        stats,
                    )
                } else {
                    ops::hash_join_probe(&l, &table, output, &cond, self.store, stats)
                })
            }
            PlanNode::MergeJoin {
                left,
                right,
                output,
                cond,
                key,
                ..
            } => {
                let (l, r) = self.eval_pair(left, right, stats, stream_limits)?;
                let cond = CompiledConditions::compile(cond, self.store);
                let lc = key.0.component_index();
                let rc = key.1.component_index();
                // Key-sorted views of the two sides: borrowed straight from
                // a store permutation when a side is a stored relation,
                // sorted copies otherwise. SPO keys borrow the set itself.
                let l_sorted = self.key_sorted_view(left, &l, lc);
                let r_sorted = self.key_sorted_view(right, &r, rc);
                let degree = self.degree(l.len().max(r.len()));
                Ok(if degree > 1 {
                    ops::merge_join_parallel(
                        &l_sorted,
                        &r_sorted,
                        lc,
                        rc,
                        output,
                        &cond,
                        self.store,
                        degree,
                        &self.options.cancel,
                        stats,
                    )
                } else {
                    ops::merge_join(
                        &l_sorted, &r_sorted, lc, rc, output, &cond, self.store, stats,
                    )
                })
            }
            PlanNode::IndexNestedLoopJoin {
                outer,
                relation,
                probe,
                output,
                cond,
                ..
            } => {
                let outer = recurse(self, outer, stats)?;
                let (base, index) = self
                    .store
                    .relation_with_index(relation)
                    .ok_or_else(|| Error::UnknownRelation(relation.clone()))?;
                let cond = CompiledConditions::compile(cond, self.store);
                let degree = self.degree(outer.len());
                Ok(if degree > 1 {
                    ops::index_nested_loop_join_parallel(
                        &outer,
                        base,
                        index,
                        *probe,
                        output,
                        &cond,
                        self.store,
                        degree,
                        &self.options.cancel,
                        stats,
                    )
                } else {
                    ops::index_nested_loop_join(
                        &outer, base, index, *probe, output, &cond, self.store, stats,
                    )
                })
            }
            PlanNode::NestedLoopJoin {
                left,
                right,
                output,
                cond,
                ..
            } => {
                let (l, r) = self.eval_pair(left, right, stats, stream_limits)?;
                let cond = CompiledConditions::compile(cond, self.store);
                let degree = self.degree(l.len());
                Ok(if degree > 1 {
                    ops::nested_loop_join_parallel(
                        &l,
                        &r,
                        output,
                        &cond,
                        self.store,
                        degree,
                        &self.options.cancel,
                        stats,
                    )
                } else {
                    ops::nested_loop_join(&l, &r, output, &cond, self.store, stats)
                })
            }
            PlanNode::Union { left, right, .. } => {
                let (l, r) = self.eval_pair(left, right, stats, stream_limits)?;
                stats.triples_scanned += (l.len() + r.len()) as u64;
                Ok(l.union(&r))
            }
            PlanNode::Diff { left, right, .. } => {
                // The right side materialises concurrently with the left
                // when parallelism is on (see eval_pair).
                let (l, r) = self.eval_pair(left, right, stats, stream_limits)?;
                stats.triples_scanned += (l.len() + r.len()) as u64;
                Ok(l.difference(&r))
            }
            PlanNode::Intersect { left, right, .. } => {
                let (l, r) = self.eval_pair(left, right, stats, stream_limits)?;
                stats.triples_scanned += (l.len() + r.len()) as u64;
                Ok(l.intersection(&r))
            }
            PlanNode::Complement { input, .. } => {
                // With parallelism on, the excluded input materialises on a
                // worker while the universe builds on the current thread.
                let overlap =
                    self.options.threads > 1 && input.est() >= self.options.parallel_min_rows;
                let (e, u) = if overlap {
                    let mut far = self.child();
                    let (u, e) = parallel::join_pair(
                        |stats| ops::universe(self.store, &self.options, stats),
                        move |stats| far.eval_mode(input, stats, stream_limits),
                        stats,
                    );
                    (e?, u?)
                } else {
                    let e = recurse(self, input, stats)?;
                    (e, ops::universe(self.store, &self.options, stats)?)
                };
                stats.triples_scanned += (e.len() + u.len()) as u64;
                Ok(u.difference(&e))
            }
            PlanNode::StarSemiNaive {
                input,
                output,
                cond,
                direction,
                ..
            } => {
                let base = recurse(self, input, stats)?;
                semi_naive_star(
                    &base,
                    output,
                    cond,
                    *direction,
                    self.store,
                    &self.options,
                    stats,
                )
            }
            PlanNode::StarReach {
                input,
                same_label,
                relation,
                ..
            } => {
                let base = recurse(self, input, stats)?;
                self.star_reach(&base, *same_label, relation.as_deref(), stats)
            }
            PlanNode::PathNfa {
                relation,
                path,
                max_hops,
                ..
            } => self.path_nfa(relation, path, *max_hops, stats),
            PlanNode::Memo { slot, input } => {
                let set =
                    self.memo_slot(*slot, stats, |this, stats| recurse(this, input, stats))?;
                Ok((*set).clone())
            }
            PlanNode::Limit { input, limit, .. } => {
                // Materialised limit semantics: the *ordered* prefix — the
                // `limit` smallest triples of the full result under the
                // input's delivered order (canonical SPO when the input is
                // unordered). For ordered inputs this is exactly what the
                // streaming pipeline's first `limit` rows are — the two
                // modes agree deterministically, which is what lets the
                // planner collapse a top-k over an ordered input to a plain
                // limit.
                let result = recurse(self, input, stats)?;
                if result.len() <= *limit {
                    return Ok(result);
                }
                match input.ordering() {
                    Some(perm) if perm != Permutation::Spo => {
                        let mut rows = result.into_vec();
                        rows.sort_unstable_by_key(|t| perm.key(t));
                        rows.truncate(*limit);
                        Ok(TripleSet::from_vec(rows))
                    }
                    _ => Ok(TripleSet::from_sorted_vec(
                        result.into_vec().into_iter().take(*limit).collect(),
                    )),
                }
            }
            PlanNode::Sort { input, .. } => {
                // Sets carry no order: a sort is an emit-order directive for
                // the streaming pipeline and the identity on materialised
                // results.
                recurse(self, input, stats)
            }
            PlanNode::TopK {
                input, k, order, ..
            } => {
                // Reference top-k semantics: the k smallest triples of the
                // fully evaluated input under the permutation key. Unlike a
                // streamed limit this is deterministic — permutation keys
                // are total, so the streaming heap must produce exactly this
                // set (the ordered differential suite holds it to that).
                let result = recurse(self, input, stats)?;
                if result.len() <= *k {
                    return Ok(result);
                }
                if *order == Permutation::Spo {
                    return Ok(TripleSet::from_sorted_vec(
                        result.into_vec().into_iter().take(*k).collect(),
                    ));
                }
                let mut rows = result.into_vec();
                rows.sort_unstable_by_key(|t| order.key(t));
                rows.truncate(*k);
                Ok(TripleSet::from_vec(rows))
            }
        }
    }

    /// A view of `set` sorted by the key component `component`, borrowing
    /// where the order is already available: the set itself for component 0
    /// (canonical order) or the store's cached permutation when `node` scans
    /// a stored relation unfiltered; a sorted copy otherwise.
    fn key_sorted_view<'s>(
        &self,
        node: &PlanNode,
        set: &'s TripleSet,
        component: usize,
    ) -> Cow<'s, [Triple]>
    where
        'a: 's,
    {
        if component == 0 {
            return Cow::Borrowed(set.as_slice());
        }
        if let PlanNode::IndexScan {
            relation,
            bound: None,
            residual,
            ..
        } = node
        {
            if residual.is_empty() {
                if let Some((base, index)) = self.store.relation_with_index(relation) {
                    return Cow::Borrowed(
                        index.permutation(base, Permutation::keyed_on(component)),
                    );
                }
            }
        }
        let mut rows = set.as_slice().to_vec();
        let perm = Permutation::keyed_on(component);
        rows.sort_unstable_by_key(|t| perm.key(t));
        Cow::Owned(rows)
    }

    /// Scans a relation, serving a pushed-down constant binding from the
    /// matching permutation index.
    fn index_scan(
        &self,
        relation: &str,
        bound: Option<(usize, trial_core::ObjectId)>,
        residual: &trial_core::Conditions,
        stats: &mut EvalStats,
    ) -> Result<TripleSet> {
        let (base, index) = self
            .store
            .relation_with_index(relation)
            .ok_or_else(|| Error::UnknownRelation(relation.to_owned()))?;
        let Some((component, value)) = bound else {
            if residual.is_empty() {
                return Ok(base.clone());
            }
            let cond = CompiledConditions::compile(residual, self.store);
            let degree = self.degree(base.len());
            if degree > 1 {
                // Full filtered scan: morsels are carved at the storage
                // layer (disjoint zero-copy sub-ranges of the SPO
                // permutation), one pipeline instance per morsel. Morsel
                // order is scan order, so concatenation keeps the canonical
                // sort.
                let morsels = index.partition_cursors(base, Permutation::Spo, degree);
                let out = self.filter_morsels(morsels, &cond, degree, stats);
                return Ok(TripleSet::from_sorted_vec(out));
            }
            return Ok(ops::select(base, &cond, self.store, stats));
        };
        let slice = index.matching(base, component, value);
        let residual =
            (!residual.is_empty()).then(|| CompiledConditions::compile(residual, self.store));
        let out = match &residual {
            // A filtered run splits into morsels when large: the residual
            // check is the per-row work worth spreading (an unfiltered run
            // is a plain copy and stays sequential). The bounded run is
            // carved by the index itself into disjoint sub-range cursors.
            Some(cond) if self.degree(slice.len()) > 1 => {
                let degree = self.degree(slice.len());
                let morsels = index.partition_matching_cursors(base, component, value, degree);
                self.filter_morsels(morsels, cond, degree, stats)
            }
            _ => {
                stats.triples_scanned += slice.len() as u64;
                let mut out = Vec::with_capacity(slice.len());
                for t in slice {
                    if residual
                        .as_ref()
                        .is_none_or(|cond| cond.check_single(self.store, t))
                    {
                        out.push(*t);
                        stats.triples_emitted += 1;
                    }
                }
                out
            }
        };
        // Runs of the SPO permutation are already in canonical order; the
        // other permutations interleave, so their runs are re-sorted.
        Ok(if component == 0 {
            TripleSet::from_sorted_vec(out)
        } else {
            TripleSet::from_vec(out)
        })
    }

    /// Runs one filtering pipeline instance per partitioned scan morsel and
    /// concatenates the outputs in morsel (= scan) order.
    fn filter_morsels(
        &self,
        morsels: Vec<trial_core::RangeCursor<'_>>,
        cond: &CompiledConditions,
        degree: usize,
        stats: &mut EvalStats,
    ) -> Vec<trial_core::Triple> {
        let tasks: Vec<_> = morsels
            .into_iter()
            .map(|morsel| {
                move |stats: &mut EvalStats| {
                    let run = morsel.rest();
                    let mut out = Vec::with_capacity(run.len());
                    ops::select_slice(run, cond, self.store, stats, &mut out);
                    out
                }
            })
            .collect();
        parallel::run_tasks(degree, tasks, &self.options.cancel, stats).concat()
    }

    /// Runs a Proposition 5 reachability star, borrowing the store's cached
    /// adjacency lists when the base is a stored relation.
    fn star_reach(
        &self,
        base: &TripleSet,
        same_label: bool,
        relation: Option<&str>,
        stats: &mut EvalStats,
    ) -> Result<TripleSet> {
        // One BFS per distinct endpoint: the base size bounds the number of
        // roots, which is what the morsel fan-out partitions.
        let degree = self.degree(base.len());
        let cancel = &self.options.cancel;
        let result = if let Some((rel_base, index)) =
            relation.and_then(|name| self.store.relation_with_index(name))
        {
            debug_assert_eq!(rel_base, base, "relation hint must match the executed base");
            match (same_label, degree > 1) {
                (true, true) => reach::reach_star_same_label_parallel(
                    base,
                    index.adjacency_by_label(rel_base),
                    degree,
                    cancel,
                    stats,
                ),
                (true, false) => reach::reach_star_same_label(
                    base,
                    index.adjacency_by_label(rel_base),
                    cancel,
                    stats,
                ),
                (false, true) => reach::reach_star_plain_parallel(
                    base,
                    index.adjacency(rel_base),
                    degree,
                    cancel,
                    stats,
                ),
                (false, false) => {
                    reach::reach_star_plain(base, index.adjacency(rel_base), cancel, stats)
                }
            }
        } else if same_label {
            let by_label = reach::label_adjacency(base);
            if degree > 1 {
                reach::reach_star_same_label_parallel(base, &by_label, degree, cancel, stats)
            } else {
                reach::reach_star_same_label(base, &by_label, cancel, stats)
            }
        } else {
            let adjacency = Adjacency::from_triples(base.iter());
            if degree > 1 {
                reach::reach_star_plain_parallel(base, &adjacency, degree, cancel, stats)
            } else {
                reach::reach_star_plain(base, &adjacency, cancel, stats)
            }
        };
        // A closure cut short by cancellation is a partial set: surface the
        // error here so it never reaches downstream operators or caches.
        cancel.check()?;
        Ok(result)
    }

    /// Evaluates a [`PlanNode::PathNfa`] leaf: a product-graph BFS over the
    /// stored relation's cached per-label adjacency lists, with the roots
    /// fanned out across workers like [`Self::star_reach`]'s.
    fn path_nfa(
        &self,
        relation: &str,
        path: &trial_parser::PathExpr,
        max_hops: Option<usize>,
        stats: &mut EvalStats,
    ) -> Result<TripleSet> {
        let base = self.store.require_relation(relation)?;
        // One product BFS per graph node: that is the unit the fan-out
        // partitions, so size the degree on the node count's proxy.
        let degree = self.degree(base.len());
        crate::rpq::eval_on_store(
            self.store,
            relation,
            path,
            max_hops,
            degree,
            &self.options.cancel,
            stats,
        )
    }
}
