//! Per-operator wall-clock profiling: node timers, the sampling profiler
//! shared by an executor tree, and the [`NodeProfile`] records surfaced
//! through [`crate::AnalyzedEvaluation`] and [`crate::QueryStream`].
//!
//! Profiling is a separate axis from the [`crate::EvalStats`] work counters:
//! stats count *elementary steps* (machine-independent, exact under any
//! thread count — they verify the paper's complexity bounds), while profiles
//! measure *wall-clock time* per plan node (machine-dependent — they feed
//! `EXPLAIN ANALYZE` and the server's slow-query diagnostics). Keeping the
//! two apart means the differential suites can keep asserting exact stats
//! equality while timing remains free to vary run over run.
//!
//! # Semantics
//!
//! * **Inclusive times.** A node's `elapsed` includes its children — the
//!   cursor wrapper times a `next()` call end-to-end, and the materialised
//!   interpreter times the whole sub-evaluation. The root therefore reads as
//!   total evaluation time, and a child's share is read by subtraction.
//! * **Build time** is recorded separately for pipeline breakers: the
//!   blocking work a breaker performs at cursor-construction time (hash-join
//!   build sides, star fixpoints, difference/intersection right sides,
//!   sorts, memo fills) before the first row is pulled.
//! * **Parallel operators sum worker time.** Morsel instances share their
//!   node's timer, so `elapsed` aggregates across workers — closer to CPU
//!   time than wall time for the parallel stretches.
//! * **Sampling.** With a stride of `n > 1` only every `n`-th cursor pull is
//!   timed and the measurement is scaled by `n` — row counts stay exact,
//!   times become estimates. `EXPLAIN ANALYZE` always runs at stride 1.

use crate::plan::Plan;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Wall-clock and row counters for a single plan node. All fields are
/// relaxed atomics: timers are shared across sibling executors and morsel
/// workers, and profiling must never serialise them.
#[derive(Debug, Default)]
pub(crate) struct NodeTimer {
    /// Rows of the node's individually materialised result (the `actual`
    /// of `EXPLAIN ANALYZE`); unset for nodes that only ever streamed.
    mat_rows: AtomicU64,
    mat_known: AtomicBool,
    /// Rows pulled through the node's cursor(s), summed across morsels.
    cur_rows: AtomicU64,
    cur_known: AtomicBool,
    /// Nanoseconds measured on unsampled paths (materialised evaluation,
    /// stride-1 cursors).
    full_ns: AtomicU64,
    /// Nanoseconds measured on sampled cursor pulls; scaled by the stride
    /// when read.
    sampled_ns: AtomicU64,
    /// Nanoseconds of blocking cursor-construction work (breakers only).
    build_ns: AtomicU64,
    build_known: AtomicBool,
}

impl NodeTimer {
    pub(crate) fn set_mat_rows(&self, rows: u64) {
        self.mat_rows.store(rows, Ordering::Relaxed);
        self.mat_known.store(true, Ordering::Relaxed);
    }

    pub(crate) fn add_cur_rows(&self, rows: u64) {
        self.cur_rows.fetch_add(rows, Ordering::Relaxed);
        self.cur_known.store(true, Ordering::Relaxed);
    }

    pub(crate) fn add_full(&self, elapsed: Duration) {
        self.full_ns
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    }

    pub(crate) fn add_sampled(&self, elapsed: Duration) {
        self.sampled_ns
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    }

    pub(crate) fn add_build(&self, elapsed: Duration) {
        self.build_ns
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
        self.build_known.store(true, Ordering::Relaxed);
    }

    pub(crate) fn mat_rows(&self) -> Option<u64> {
        self.mat_known
            .load(Ordering::Relaxed)
            .then(|| self.mat_rows.load(Ordering::Relaxed))
    }

    fn profile(&self, stride: u32) -> NodeProfile {
        let rows = self.mat_rows().or_else(|| {
            self.cur_known
                .load(Ordering::Relaxed)
                .then(|| self.cur_rows.load(Ordering::Relaxed))
        });
        let full = self.full_ns.load(Ordering::Relaxed);
        let sampled = self
            .sampled_ns
            .load(Ordering::Relaxed)
            .saturating_mul(stride.max(1) as u64);
        NodeProfile {
            rows,
            elapsed_us: (full + sampled) / 1_000,
            build_us: self
                .build_known
                .load(Ordering::Relaxed)
                .then(|| self.build_ns.load(Ordering::Relaxed) / 1_000),
        }
    }
}

/// The timer table one evaluation shares across its executor tree: sibling
/// executors (worker threads) and morsel cursors all record into the same
/// per-node timers. The map lock is taken once per *operator* (at cursor
/// construction / sub-evaluation entry), never per row.
#[derive(Debug, Clone)]
pub(crate) struct Profiler {
    timers: Arc<Mutex<HashMap<usize, Arc<NodeTimer>>>>,
    /// Time every `stride`-th cursor pull; 1 = every pull.
    stride: u32,
}

impl Profiler {
    pub(crate) fn new(stride: u32) -> Self {
        Profiler {
            timers: Arc::new(Mutex::new(HashMap::new())),
            stride: stride.max(1),
        }
    }

    pub(crate) fn stride(&self) -> u32 {
        self.stride
    }

    /// The timer for `key` (a plan-node address), created on first use.
    pub(crate) fn timer(&self, key: usize) -> Arc<NodeTimer> {
        let mut timers = self
            .timers
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        Arc::clone(timers.entry(key).or_default())
    }

    /// The node's materialised cardinality, if it was individually recorded
    /// (the `actual` of `EXPLAIN ANALYZE`).
    pub(crate) fn mat_rows_of(&self, key: usize) -> Option<u64> {
        self.get(key).and_then(|timer| timer.mat_rows())
    }

    fn get(&self, key: usize) -> Option<Arc<NodeTimer>> {
        let timers = self
            .timers
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        timers.get(&key).cloned()
    }
}

/// Wall-clock and cardinality measurements for one plan node, indexed like
/// `EXPLAIN ANALYZE` actuals: by the node's position in
/// [`PlanNode::preorder`](crate::PlanNode::preorder) over the plan root.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NodeProfile {
    /// Rows the node produced: its materialised cardinality when it ran
    /// set-at-a-time, the rows pulled through its cursor when it streamed
    /// (for a partially drained pipeline this is the partial count).
    /// `None` when the node never executed (e.g. a memo hit short-circuited
    /// it).
    pub rows: Option<u64>,
    /// Wall-clock microseconds spent in the node **including its children**
    /// (and, for parallel operators, summed across morsel workers). Under a
    /// sampling stride `n > 1` this is an `n`-scaled estimate.
    pub elapsed_us: u64,
    /// Blocking cursor-construction work for pipeline breakers (hash-join
    /// builds, star fixpoints, blocking right sides, sorts); `None` for
    /// fully streaming operators.
    pub build_us: Option<u64>,
}

/// A handle onto one streaming query's timer table, usable **after** the
/// stream finished (drained, or its cursors dropped): morsel workers and
/// cursor wrappers flush their locally-accumulated measurements when their
/// cursor exhausts or drops, so a snapshot taken mid-flight undercounts.
///
/// Obtained from [`QueryStream::profile`](crate::QueryStream::profile); the
/// handle stays valid after the stream itself is consumed (for example by
/// [`QueryStream::channel`](crate::QueryStream::channel)), which is how the
/// server attaches per-node timings to its slow-query records.
#[derive(Debug, Clone)]
pub struct QueryProfile {
    profiler: Profiler,
    /// Plan-node identities in preorder, captured while the plan was alive.
    keys: Vec<usize>,
}

impl QueryProfile {
    pub(crate) fn new(profiler: Profiler, plan: &Plan) -> Self {
        QueryProfile {
            keys: plan
                .root
                .preorder()
                .into_iter()
                .map(crate::exec::node_key)
                .collect(),
            profiler,
        }
    }

    /// Per-node profiles in plan preorder. Nodes that never executed (memo
    /// hits, pruned branches) report `Default` (no rows, zero time).
    pub fn snapshot(&self) -> Vec<NodeProfile> {
        self.keys
            .iter()
            .map(|&key| {
                self.profiler
                    .get(key)
                    .map(|t| t.profile(self.profiler.stride()))
                    .unwrap_or_default()
            })
            .collect()
    }

    /// The sampling stride the profiles were measured under (1 = exact).
    pub fn stride(&self) -> u32 {
        self.profiler.stride()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_scales_sampled_time_by_stride() {
        let t = NodeTimer::default();
        t.add_full(Duration::from_micros(100));
        t.add_sampled(Duration::from_micros(10));
        let p = t.profile(8);
        assert_eq!(p.elapsed_us, 100 + 80);
        assert_eq!(p.rows, None);
        assert_eq!(p.build_us, None);
    }

    #[test]
    fn materialised_rows_win_over_cursor_counts() {
        let t = NodeTimer::default();
        t.add_cur_rows(7);
        assert_eq!(t.profile(1).rows, Some(7));
        t.set_mat_rows(5);
        assert_eq!(t.profile(1).rows, Some(5));
        assert_eq!(t.mat_rows(), Some(5));
    }

    #[test]
    fn profiler_shares_timers_by_key() {
        let p = Profiler::new(0); // clamped to 1
        assert_eq!(p.stride(), 1);
        p.timer(42).add_build(Duration::from_micros(3));
        p.timer(42).add_cur_rows(2);
        let t = p.timer(42);
        let profile = t.profile(p.stride());
        assert_eq!(profile.build_us, Some(3));
        assert_eq!(profile.rows, Some(2));
    }
}
