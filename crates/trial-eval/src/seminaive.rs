//! Semi-naive (delta) evaluation of Kleene closures.
//!
//! The naive fixpoint of Procedure 2 re-joins the *entire* accumulated
//! relation with the base relation in every round. Because triple joins
//! distribute over union in each argument, it suffices to join only the
//! triples discovered in the previous round (the *delta*) — the standard
//! semi-naive optimisation from Datalog evaluation, which the paper's
//! Section 7 explicitly asks about ("whether commercial RDBMSs can scalably
//! implement the type of recursion we require").

use crate::compile::CompiledConditions;
use crate::engine::{EvalOptions, EvalStats};
use crate::ops;
use trial_core::{Error, OutputSpec, Result, StarDirection, TripleSet, Triplestore};

/// Computes `(base ✶)^*` (right) or `(✶ base)^*` (left) by delta iteration.
///
/// Each round joins only the previously-new triples against the base
/// relation, unions the genuinely new results into the accumulator and stops
/// when a round produces nothing new.
pub fn semi_naive_star(
    base: &TripleSet,
    output: &OutputSpec,
    cond: &CompiledConditions,
    direction: StarDirection,
    store: &Triplestore,
    options: &EvalOptions,
    stats: &mut EvalStats,
) -> Result<TripleSet> {
    let mut acc = base.clone();
    let mut delta = base.clone();
    let mut rounds: u64 = 0;
    while !delta.is_empty() {
        if rounds >= options.max_fixpoint_rounds {
            return Err(Error::LimitExceeded(format!(
                "Kleene star exceeded {} fixpoint rounds",
                options.max_fixpoint_rounds
            )));
        }
        rounds += 1;
        stats.fixpoint_rounds += 1;
        let joined = match direction {
            StarDirection::Right => ops::join_auto(&delta, base, output, cond, store, stats),
            StarDirection::Left => ops::join_auto(base, &delta, output, cond, store, stats),
        };
        let fresh = joined.difference(&acc);
        if fresh.is_empty() {
            break;
        }
        acc = acc.union(&fresh);
        delta = fresh;
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::naive::NaiveEngine;
    use trial_core::builder::queries;
    use trial_core::{Conditions, Expr, Pos, TriplestoreBuilder};

    fn chain(n: usize) -> Triplestore {
        let mut b = TriplestoreBuilder::new();
        for i in 0..n {
            b.add_triple("E", format!("n{i}"), "next", format!("n{}", i + 1));
        }
        b.finish()
    }

    fn run_star(expr: &Expr, store: &Triplestore) -> (TripleSet, EvalStats) {
        let mut stats = EvalStats::new();
        match expr {
            Expr::Star {
                input,
                output,
                cond,
                direction,
            } => {
                let base = NaiveEngine::new().run(input, store).unwrap();
                let cond = CompiledConditions::compile(cond, store);
                let result = semi_naive_star(
                    &base,
                    output,
                    &cond,
                    *direction,
                    store,
                    &EvalOptions::default(),
                    &mut stats,
                )
                .unwrap();
                (result, stats)
            }
            _ => panic!("expected a star expression"),
        }
    }

    #[test]
    fn agrees_with_naive_on_chain_reachability() {
        let store = chain(12);
        let q = queries::reach_forward("E");
        let naive = NaiveEngine::new().run(&q, &store).unwrap();
        let (semi, stats) = run_star(&q, &store);
        assert_eq!(naive, semi);
        // A chain of 12 edges yields 12·13/2 = 78 reachability triples.
        assert_eq!(semi.len(), 78);
        assert!(stats.fixpoint_rounds >= 11);
    }

    #[test]
    fn agrees_with_naive_on_left_star() {
        let mut b = TriplestoreBuilder::new();
        b.add_triple("E", "a", "b", "c");
        b.add_triple("E", "c", "d", "e");
        b.add_triple("E", "d", "e", "f");
        let store = b.finish();
        let out = trial_core::output(Pos::L1, Pos::L2, Pos::R2);
        let cond = Conditions::new().obj_eq(Pos::L3, Pos::R1);
        let left = Expr::rel("E").left_star(out, cond.clone());
        let right = Expr::rel("E").right_star(out, cond);
        for q in [left, right] {
            let naive = NaiveEngine::new().run(&q, &store).unwrap();
            let (semi, _) = run_star(&q, &store);
            assert_eq!(naive, semi, "mismatch for {q}");
        }
    }

    #[test]
    fn delta_iteration_does_less_work_than_naive() {
        let store = chain(24);
        let q = queries::reach_forward("E");
        let naive_eval = NaiveEngine::new().evaluate(&q, &store).unwrap();
        let (_, semi_stats) = run_star(&q, &store);
        assert!(
            semi_stats.pairs_considered < naive_eval.stats.pairs_considered,
            "semi-naive should inspect fewer pairs ({} vs {})",
            semi_stats.pairs_considered,
            naive_eval.stats.pairs_considered
        );
    }

    #[test]
    fn respects_round_limit() {
        let store = chain(10);
        let q = queries::reach_forward("E");
        let (base, cond, output, direction) = match &q {
            Expr::Star {
                input,
                output,
                cond,
                direction,
            } => (
                NaiveEngine::new().run(input, &store).unwrap(),
                CompiledConditions::compile(cond, &store),
                *output,
                *direction,
            ),
            _ => unreachable!(),
        };
        let mut stats = EvalStats::new();
        let err = semi_naive_star(
            &base,
            &output,
            &cond,
            direction,
            &store,
            &EvalOptions {
                max_fixpoint_rounds: 2,
                ..EvalOptions::default()
            },
            &mut stats,
        )
        .unwrap_err();
        assert!(matches!(err, Error::LimitExceeded(_)));
    }

    #[test]
    fn empty_base_terminates_immediately() {
        let mut b = TriplestoreBuilder::new();
        b.relation("E");
        let store = b.finish();
        let mut stats = EvalStats::new();
        let out = trial_core::output(Pos::L1, Pos::L2, Pos::R3);
        let cond = CompiledConditions::compile(&Conditions::new().obj_eq(Pos::L3, Pos::R1), &store);
        let result = semi_naive_star(
            &TripleSet::new(),
            &out,
            &cond,
            StarDirection::Right,
            &store,
            &EvalOptions::default(),
            &mut stats,
        )
        .unwrap();
        assert!(result.is_empty());
        assert_eq!(stats.fixpoint_rounds, 0);
    }
}
