//! Semi-naive (delta) evaluation of Kleene closures.
//!
//! The naive fixpoint of Procedure 2 re-joins the *entire* accumulated
//! relation with the base relation in every round. Because triple joins
//! distribute over union in each argument, it suffices to join only the
//! triples discovered in the previous round (the *delta*) — the standard
//! semi-naive optimisation from Datalog evaluation, which the paper's
//! Section 7 explicitly asks about ("whether commercial RDBMSs can scalably
//! implement the type of recursion we require").
//!
//! On top of delta iteration, the base relation's side of the join is
//! invariant across rounds, so its hash table is built **once** before the
//! loop and probed by every delta (left closures are normalised to the same
//! orientation through the mirroring identity). Disabling
//! [`EvalOptions::optimize_plans`] restores the historical
//! rebuild-every-round behaviour, which the `planned_vs_unplanned` benchmark
//! measures against.
//!
//! With [`EvalOptions::threads`]` > 1` each round's delta is carved into
//! morsels probed concurrently against the shared read-only [`JoinTable`]
//! (the fixpoint's natural synchronisation point: rounds are inherently
//! sequential, the join inside a round is embarrassingly parallel). Morsel
//! outputs concatenate in delta order, so the per-round `fresh` sets — and
//! therefore the round count and the result — are identical to the
//! single-threaded run.

use crate::compile::CompiledConditions;
use crate::engine::{EvalOptions, EvalStats};
use crate::ops::{self, JoinTable};
use trial_core::{Conditions, Error, OutputSpec, Result, StarDirection, TripleSet, Triplestore};

/// Computes `(base ✶)^*` (right) or `(✶ base)^*` (left) by delta iteration.
///
/// Each round joins only the previously-new triples against the base
/// relation, unions the genuinely new results into the accumulator and stops
/// when a round produces nothing new.
pub fn semi_naive_star(
    base: &TripleSet,
    output: &OutputSpec,
    cond: &Conditions,
    direction: StarDirection,
    store: &Triplestore,
    options: &EvalOptions,
    stats: &mut EvalStats,
) -> Result<TripleSet> {
    // Normalise the orientation so the delta is always the probe (left) side
    // and the invariant base is always the build (right) side:
    //   right closure:  acc ✶ base  — already in that shape;
    //   left closure:   base ✶ acc  =  acc ✶^{m(out)}_{m(cond)} base.
    let (output, cond) = match direction {
        StarDirection::Right => (*output, cond.clone()),
        StarDirection::Left => (output.mirrored(), cond.mirrored()),
    };
    let compiled = CompiledConditions::compile(&cond, store);
    let keys = compiled.cross_equalities();
    let table = if options.optimize_plans && !keys.is_empty() {
        Some(JoinTable::build(base, &keys, stats))
    } else {
        None
    };
    let mut acc = base.clone();
    let mut delta = base.clone();
    let mut rounds: u64 = 0;
    while !delta.is_empty() {
        // Fixpoint-round checkpoint: a cancelled or expired token stops the
        // iteration between rounds with the structured error, the same
        // boundary the round limit is enforced at.
        options.cancel.check()?;
        if rounds >= options.max_fixpoint_rounds {
            return Err(Error::LimitExceeded(format!(
                "Kleene star exceeded {} fixpoint rounds",
                options.max_fixpoint_rounds
            )));
        }
        rounds += 1;
        stats.fixpoint_rounds += 1;
        let threads = if options.threads > 1 && delta.len() >= options.parallel_min_rows {
            options.threads
        } else {
            1
        };
        let joined = match &table {
            Some(table) if threads > 1 => ops::hash_join_probe_parallel(
                &delta,
                table,
                &output,
                &compiled,
                store,
                threads,
                &options.cancel,
                stats,
            ),
            Some(table) => ops::hash_join_probe(&delta, table, &output, &compiled, store, stats),
            None => ops::join_auto(&delta, base, &output, &compiled, store, stats),
        };
        let fresh = joined.difference(&acc);
        if fresh.is_empty() {
            break;
        }
        acc = acc.union(&fresh);
        delta = fresh;
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::naive::NaiveEngine;
    use trial_core::builder::queries;
    use trial_core::{Expr, Pos, TriplestoreBuilder};

    fn chain(n: usize) -> Triplestore {
        let mut b = TriplestoreBuilder::new();
        for i in 0..n {
            b.add_triple("E", format!("n{i}"), "next", format!("n{}", i + 1));
        }
        b.finish()
    }

    fn run_star_with(
        expr: &Expr,
        store: &Triplestore,
        options: &EvalOptions,
    ) -> (TripleSet, EvalStats) {
        let mut stats = EvalStats::new();
        match expr {
            Expr::Star {
                input,
                output,
                cond,
                direction,
            } => {
                let base = NaiveEngine::new().run(input, store).unwrap();
                let result =
                    semi_naive_star(&base, output, cond, *direction, store, options, &mut stats)
                        .unwrap();
                (result, stats)
            }
            _ => panic!("expected a star expression"),
        }
    }

    fn run_star(expr: &Expr, store: &Triplestore) -> (TripleSet, EvalStats) {
        run_star_with(expr, store, &EvalOptions::default())
    }

    #[test]
    fn agrees_with_naive_on_chain_reachability() {
        let store = chain(12);
        let q = queries::reach_forward("E");
        let naive = NaiveEngine::new().run(&q, &store).unwrap();
        let (semi, stats) = run_star(&q, &store);
        assert_eq!(naive, semi);
        // A chain of 12 edges yields 12·13/2 = 78 reachability triples.
        assert_eq!(semi.len(), 78);
        assert!(stats.fixpoint_rounds >= 11);
    }

    #[test]
    fn agrees_with_naive_on_left_star() {
        let mut b = TriplestoreBuilder::new();
        b.add_triple("E", "a", "b", "c");
        b.add_triple("E", "c", "d", "e");
        b.add_triple("E", "d", "e", "f");
        let store = b.finish();
        let out = trial_core::output(Pos::L1, Pos::L2, Pos::R2);
        let cond = Conditions::new().obj_eq(Pos::L3, Pos::R1);
        let left = Expr::rel("E").left_star(out, cond.clone());
        let right = Expr::rel("E").right_star(out, cond);
        for q in [left, right] {
            let naive = NaiveEngine::new().run(&q, &store).unwrap();
            let (semi, _) = run_star(&q, &store);
            assert_eq!(naive, semi, "mismatch for {q}");
        }
    }

    #[test]
    fn build_once_tables_match_rebuild_per_round() {
        let store = chain(16);
        let q = queries::reach_forward("E");
        let reuse = EvalOptions::default();
        let rebuild = EvalOptions {
            optimize_plans: false,
            ..EvalOptions::default()
        };
        let (with_table, table_stats) = run_star_with(&q, &store, &reuse);
        let (without_table, rebuild_stats) = run_star_with(&q, &store, &rebuild);
        assert_eq!(with_table, without_table);
        // Rebuilding hashes the base every round; the build-once path scans
        // it exactly once.
        assert!(table_stats.triples_scanned < rebuild_stats.triples_scanned);
    }

    #[test]
    fn delta_iteration_does_less_work_than_naive() {
        let store = chain(24);
        let q = queries::reach_forward("E");
        let naive_eval = NaiveEngine::new().evaluate(&q, &store).unwrap();
        let (_, semi_stats) = run_star(&q, &store);
        assert!(
            semi_stats.pairs_considered < naive_eval.stats.pairs_considered,
            "semi-naive should inspect fewer pairs ({} vs {})",
            semi_stats.pairs_considered,
            naive_eval.stats.pairs_considered
        );
    }

    #[test]
    fn parallel_rounds_match_single_threaded_rounds() {
        let store = chain(32);
        let q = queries::reach_forward("E");
        let sequential = EvalOptions {
            threads: 1,
            ..EvalOptions::default()
        };
        let (seq, seq_stats) = run_star_with(&q, &store, &sequential);
        for threads in [2usize, 4] {
            let parallel = EvalOptions {
                threads,
                parallel_min_rows: 0,
                ..EvalOptions::default()
            };
            let (par, par_stats) = run_star_with(&q, &store, &parallel);
            assert_eq!(seq, par, "parallel fixpoint diverges at {threads} threads");
            // Delta partitioning changes nothing about the iteration shape.
            assert_eq!(seq_stats.fixpoint_rounds, par_stats.fixpoint_rounds);
            assert_eq!(seq_stats.pairs_considered, par_stats.pairs_considered);
            assert_eq!(seq_stats.parallel_morsels, 0);
            assert!(par_stats.parallel_morsels > 0, "morsels must actually run");
        }
    }

    #[test]
    fn respects_round_limit() {
        let store = chain(10);
        let q = queries::reach_forward("E");
        let options = EvalOptions {
            max_fixpoint_rounds: 2,
            ..EvalOptions::default()
        };
        let Expr::Star {
            input,
            output,
            cond,
            direction,
        } = &q
        else {
            unreachable!()
        };
        let base = NaiveEngine::new().run(input, &store).unwrap();
        let mut stats = EvalStats::new();
        let err = semi_naive_star(
            &base, output, cond, *direction, &store, &options, &mut stats,
        )
        .unwrap_err();
        assert!(matches!(err, Error::LimitExceeded(_)));
    }

    #[test]
    fn empty_base_terminates_immediately() {
        let mut b = TriplestoreBuilder::new();
        b.relation("E");
        let store = b.finish();
        let mut stats = EvalStats::new();
        let out = trial_core::output(Pos::L1, Pos::L2, Pos::R3);
        let cond = Conditions::new().obj_eq(Pos::L3, Pos::R1);
        let result = semi_naive_star(
            &TripleSet::new(),
            &out,
            &cond,
            StarDirection::Right,
            &store,
            &EvalOptions::default(),
            &mut stats,
        )
        .unwrap();
        assert!(result.is_empty());
        assert_eq!(stats.fixpoint_rounds, 0);
    }
}
