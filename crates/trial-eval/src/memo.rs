//! Memoisation of repeated sub-expressions.
//!
//! TriAL expressions routinely repeat sub-expressions — Example 2's
//! `e ∪ (e ✶ E)` evaluates `e` twice, the definable complement evaluates the
//! universal relation once per occurrence, and mechanically generated
//! expressions (e.g. the output of the Datalog translation of Proposition 2)
//! repeat whole sub-programs. The [`Memo`] cache stores results keyed by the
//! structural identity of the sub-expression so each distinct sub-expression
//! is evaluated once per query.

use std::collections::HashMap;
use trial_core::{Expr, TripleSet};

/// A per-query cache of sub-expression results.
///
/// The cache is only valid for a single store: the
/// [`SmartEngine`](crate::SmartEngine) creates a fresh memo for every
/// top-level evaluation.
#[derive(Debug, Default)]
pub struct Memo {
    entries: HashMap<Expr, TripleSet>,
    hits: u64,
    misses: u64,
}

impl Memo {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Memo::default()
    }

    /// Looks up a previously computed result.
    pub fn get(&mut self, expr: &Expr) -> Option<TripleSet> {
        match self.entries.get(expr) {
            Some(v) => {
                self.hits += 1;
                Some(v.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Records a computed result.
    pub fn insert(&mut self, expr: &Expr, result: &TripleSet) {
        self.entries.insert(expr.clone(), result.clone());
    }

    /// Number of cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of distinct expressions cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trial_core::{ObjectId, Triple};

    #[test]
    fn caches_by_structure() {
        let mut memo = Memo::new();
        let e1 = Expr::rel("E").union(Expr::rel("F"));
        let e2 = Expr::rel("E").union(Expr::rel("F")); // structurally equal
        let e3 = Expr::rel("F").union(Expr::rel("E")); // different
        let result: TripleSet = [Triple::new(ObjectId(0), ObjectId(1), ObjectId(2))]
            .into_iter()
            .collect();
        assert!(memo.get(&e1).is_none());
        memo.insert(&e1, &result);
        assert_eq!(memo.get(&e2), Some(result));
        assert!(memo.get(&e3).is_none());
        assert_eq!(memo.hits(), 1);
        assert_eq!(memo.misses(), 2);
        assert_eq!(memo.len(), 1);
        assert!(!memo.is_empty());
    }

    #[test]
    fn empty_cache() {
        let memo = Memo::new();
        assert!(memo.is_empty());
        assert_eq!(memo.len(), 0);
        assert_eq!(memo.hits(), 0);
    }
}
