//! The specialised reachability procedures of Proposition 5.
//!
//! reachTA⁼ restricts Kleene stars to the two graph-database reachability
//! shapes:
//!
//! * `(R ✶^{1,2,3'}_{3=1'})^*` — "reachable by an arbitrary path": treat
//!   every triple `(x, ℓ, y)` as an edge `x → y` and extend each triple's
//!   endpoint along arbitrary paths;
//! * `(R ✶^{1,2,3'}_{3=1', 2=2'})^*` — "reachable by a path labelled with the
//!   same element": as above, but every step must carry the same middle
//!   element as the original triple.
//!
//! The paper's Procedures 3 and 4 compute these with a reachability matrix
//! plus Warshall's transitive closure, giving `O(|e|·|O|·|T|)`. We obtain
//! the same bound with per-source BFS over [`Adjacency`] lists, which is also
//! far cheaper in practice on sparse data — the benchmark `prop5_reach`
//! compares both against the generic fixpoint engines.
//!
//! The adjacency lists are taken **by reference**: when the starred base is a
//! stored relation, the executor borrows the store's lazily-cached
//! [`trial_core::RelationIndex::adjacency`] lists, so repeated reachability
//! queries over the same relation never rebuild the graph.

use crate::cancel::CancelToken;
use crate::engine::EvalStats;
use crate::parallel;
use std::collections::{HashMap, HashSet, VecDeque};
use trial_core::{Adjacency, ObjectId, Triple, TripleSet};

/// Builds per-label adjacency lists for a base that is not a stored relation
/// (otherwise use the store's cached
/// [`trial_core::RelationIndex::adjacency_by_label`]).
pub fn label_adjacency(base: &TripleSet) -> HashMap<ObjectId, Adjacency> {
    let mut by_label: HashMap<ObjectId, Adjacency> = HashMap::new();
    for t in base.iter() {
        by_label.entry(t.p()).or_default().insert_edge(t.s(), t.o());
    }
    by_label
}

/// Objects reachable from `start` in **one or more** steps of `adj`.
fn reachable_from(start: ObjectId, adj: &Adjacency, stats: &mut EvalStats) -> Vec<ObjectId> {
    let mut seen: HashSet<ObjectId> = HashSet::new();
    let mut queue: VecDeque<ObjectId> = VecDeque::new();
    // Seed with the direct successors so that `start` itself is only included
    // if it lies on a cycle (the closure has no implicit ε step).
    for next in adj.successor_cursor(start) {
        stats.reach_edges_traversed += 1;
        if seen.insert(next) {
            queue.push_back(next);
        }
    }
    while let Some(node) = queue.pop_front() {
        for next in adj.successor_cursor(node) {
            stats.reach_edges_traversed += 1;
            if seen.insert(next) {
                queue.push_back(next);
            }
        }
    }
    let mut out: Vec<ObjectId> = seen.into_iter().collect();
    out.sort_unstable();
    out
}

/// Procedure 3: computes `(base ✶^{1,2,3'}_{3=1'})^*` over the given
/// adjacency lists (which must be the edge graph of `base`).
///
/// Every result triple is either an original triple `(x, ℓ, z)` or a triple
/// `(x, ℓ, w)` such that `(x, ℓ, z) ∈ base` and `w` is reachable from `z`
/// (in one or more steps) in the edge graph of `base`.
///
/// Checks `cancel` between BFS roots; on cancellation the partial set is
/// returned and the caller is expected to surface the error (the executor
/// re-checks the token after every closure).
pub fn reach_star_plain(
    base: &TripleSet,
    adj: &Adjacency,
    cancel: &CancelToken,
    stats: &mut EvalStats,
) -> TripleSet {
    // Group the base triples by their endpoint so each BFS is run once per
    // distinct endpoint rather than once per triple.
    let mut by_endpoint: HashMap<ObjectId, Vec<(ObjectId, ObjectId)>> = HashMap::new();
    for t in base.iter() {
        by_endpoint.entry(t.o()).or_default().push((t.s(), t.p()));
    }
    let mut out: Vec<Triple> = Vec::with_capacity(base.len());
    out.extend(base.iter().copied());
    for (endpoint, prefixes) in by_endpoint {
        // Discard the accumulation outright on cancellation: sorting a
        // partial set the caller is about to throw away only delays the
        // error.
        if cancel.is_cancelled() {
            return TripleSet::new();
        }
        let reach = reachable_from(endpoint, adj, stats);
        for &(s, p) in &prefixes {
            for &w in &reach {
                out.push(Triple::new(s, p, w));
                stats.triples_emitted += 1;
            }
        }
    }
    TripleSet::from_vec(out)
}

/// Morsel-parallel [`reach_star_plain`]: the distinct endpoints (one BFS
/// each) are partitioned across workers probing the shared read-only
/// adjacency lists. Each BFS is independent, so edge-traversal counts are
/// exact sums and the result set is identical to the sequential procedure.
pub fn reach_star_plain_parallel(
    base: &TripleSet,
    adj: &Adjacency,
    threads: usize,
    cancel: &CancelToken,
    stats: &mut EvalStats,
) -> TripleSet {
    let mut by_endpoint: HashMap<ObjectId, Vec<(ObjectId, ObjectId)>> = HashMap::new();
    for t in base.iter() {
        by_endpoint.entry(t.o()).or_default().push((t.s(), t.p()));
    }
    let entries: Vec<(ObjectId, Vec<(ObjectId, ObjectId)>)> = by_endpoint.into_iter().collect();
    let tasks: Vec<_> = parallel::chunk(&entries, threads)
        .into_iter()
        .map(|morsel| {
            move |stats: &mut EvalStats| {
                let mut out: Vec<Triple> = Vec::new();
                for (endpoint, prefixes) in morsel {
                    // One BFS per root: check between roots so a cancelled
                    // closure stops mid-morsel instead of finishing it.
                    if cancel.is_cancelled() {
                        break;
                    }
                    let reach = reachable_from(*endpoint, adj, stats);
                    for &(s, p) in prefixes {
                        for &w in &reach {
                            out.push(Triple::new(s, p, w));
                            stats.triples_emitted += 1;
                        }
                    }
                }
                out
            }
        })
        .collect();
    let parts = parallel::run_tasks(threads, tasks, cancel, stats);
    if cancel.is_cancelled() {
        return TripleSet::new();
    }
    let mut out: Vec<Triple> = Vec::with_capacity(base.len());
    out.extend(base.iter().copied());
    for part in parts {
        out.extend(part);
    }
    TripleSet::from_vec(out)
}

/// Procedure 4: computes `(base ✶^{1,2,3'}_{3=1', 2=2'})^*` over per-label
/// adjacency lists (which must be the label-split edge graph of `base`).
///
/// Like [`reach_star_plain`], but reachability is computed separately within
/// each "label" `ℓ` (the middle element): only edges whose middle element
/// equals the original triple's middle element may be followed.
///
/// Checks `cancel` between BFS roots, like [`reach_star_plain`].
pub fn reach_star_same_label(
    base: &TripleSet,
    adj_by_label: &HashMap<ObjectId, Adjacency>,
    cancel: &CancelToken,
    stats: &mut EvalStats,
) -> TripleSet {
    // Group base triples by (label, endpoint).
    let mut by_label_endpoint: HashMap<(ObjectId, ObjectId), Vec<ObjectId>> = HashMap::new();
    for t in base.iter() {
        by_label_endpoint
            .entry((t.p(), t.o()))
            .or_default()
            .push(t.s());
    }
    let empty = Adjacency::default();
    let mut out: Vec<Triple> = Vec::with_capacity(base.len());
    out.extend(base.iter().copied());
    for ((label, endpoint), sources) in by_label_endpoint {
        if cancel.is_cancelled() {
            return TripleSet::new();
        }
        let adj = adj_by_label.get(&label).unwrap_or(&empty);
        let reach = reachable_from(endpoint, adj, stats);
        for &s in &sources {
            for &w in &reach {
                out.push(Triple::new(s, label, w));
                stats.triples_emitted += 1;
            }
        }
    }
    TripleSet::from_vec(out)
}

/// Morsel-parallel [`reach_star_same_label`]: partitions the distinct
/// `(label, endpoint)` BFS roots across workers sharing the read-only
/// per-label adjacency lists.
pub fn reach_star_same_label_parallel(
    base: &TripleSet,
    adj_by_label: &HashMap<ObjectId, Adjacency>,
    threads: usize,
    cancel: &CancelToken,
    stats: &mut EvalStats,
) -> TripleSet {
    let mut by_label_endpoint: HashMap<(ObjectId, ObjectId), Vec<ObjectId>> = HashMap::new();
    for t in base.iter() {
        by_label_endpoint
            .entry((t.p(), t.o()))
            .or_default()
            .push(t.s());
    }
    let entries: Vec<((ObjectId, ObjectId), Vec<ObjectId>)> =
        by_label_endpoint.into_iter().collect();
    let empty = Adjacency::default();
    let empty = &empty;
    let tasks: Vec<_> = parallel::chunk(&entries, threads)
        .into_iter()
        .map(|morsel| {
            move |stats: &mut EvalStats| {
                let mut out: Vec<Triple> = Vec::new();
                for ((label, endpoint), sources) in morsel {
                    if cancel.is_cancelled() {
                        break;
                    }
                    let adj = adj_by_label.get(label).unwrap_or(empty);
                    let reach = reachable_from(*endpoint, adj, stats);
                    for &s in sources {
                        for &w in &reach {
                            out.push(Triple::new(s, *label, w));
                            stats.triples_emitted += 1;
                        }
                    }
                }
                out
            }
        })
        .collect();
    let parts = parallel::run_tasks(threads, tasks, cancel, stats);
    if cancel.is_cancelled() {
        return TripleSet::new();
    }
    let mut out: Vec<Triple> = Vec::with_capacity(base.len());
    out.extend(base.iter().copied());
    for part in parts {
        out.extend(part);
    }
    TripleSet::from_vec(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::naive::NaiveEngine;
    use trial_core::builder::queries;
    use trial_core::{Triplestore, TriplestoreBuilder};

    fn base(store: &Triplestore) -> TripleSet {
        store.require_relation("E").unwrap().clone()
    }

    fn plain(base: &TripleSet, stats: &mut EvalStats) -> TripleSet {
        let adj = Adjacency::from_triples(base.iter());
        reach_star_plain(base, &adj, &CancelToken::none(), stats)
    }

    fn same_label(base: &TripleSet, stats: &mut EvalStats) -> TripleSet {
        let by_label = label_adjacency(base);
        reach_star_same_label(base, &by_label, &CancelToken::none(), stats)
    }

    fn labelled_chain() -> Triplestore {
        let mut b = TriplestoreBuilder::new();
        // Two interleaved labelled chains plus a cycle.
        b.add_triple("E", "a", "red", "b");
        b.add_triple("E", "b", "red", "c");
        b.add_triple("E", "c", "blue", "d");
        b.add_triple("E", "d", "blue", "a");
        b.add_triple("E", "x", "red", "x"); // self-loop
        b.finish()
    }

    #[test]
    fn plain_reach_matches_generic_star() {
        let store = labelled_chain();
        let naive = NaiveEngine::new()
            .run(&queries::reach_forward("E"), &store)
            .unwrap();
        let mut stats = EvalStats::new();
        let fast = plain(&base(&store), &mut stats);
        assert_eq!(naive, fast);
        assert!(stats.reach_edges_traversed > 0);
    }

    #[test]
    fn same_label_reach_matches_generic_star() {
        let store = labelled_chain();
        let naive = NaiveEngine::new()
            .run(&queries::reach_same_label("E"), &store)
            .unwrap();
        let mut stats = EvalStats::new();
        let fast = same_label(&base(&store), &mut stats);
        assert_eq!(naive, fast);
    }

    #[test]
    fn cached_store_adjacency_gives_identical_results() {
        let store = labelled_chain();
        let (rel, index) = store.relation_with_index("E").unwrap();
        let mut s1 = EvalStats::new();
        let mut s2 = EvalStats::new();
        assert_eq!(
            reach_star_plain(rel, index.adjacency(rel), &CancelToken::none(), &mut s1),
            plain(&base(&store), &mut s2),
        );
        assert_eq!(
            reach_star_same_label(
                rel,
                index.adjacency_by_label(rel),
                &CancelToken::none(),
                &mut s1
            ),
            same_label(&base(&store), &mut s2),
        );
        assert_eq!(s1.reach_edges_traversed, s2.reach_edges_traversed);
    }

    #[test]
    fn plain_reach_follows_cycles() {
        let store = labelled_chain();
        let mut stats = EvalStats::new();
        let fast = plain(&base(&store), &mut stats);
        // a→b→c→d→a is a cycle, so (a, red, a) is derivable:
        // (a, red, b) extended along b→c→d→a.
        let t = store.triple_by_names("a", "red", "a").unwrap();
        assert!(fast.contains(&t));
        // The self-loop triple stays a self-loop.
        let x = store.triple_by_names("x", "red", "x").unwrap();
        assert!(fast.contains(&x));
    }

    #[test]
    fn same_label_reach_respects_labels() {
        let store = labelled_chain();
        let mut stats = EvalStats::new();
        let fast = same_label(&base(&store), &mut stats);
        // (a, red, c) is reachable entirely through red edges.
        assert!(fast.contains(&store.triple_by_names("a", "red", "c").unwrap()));
        // (a, red, d) would need the blue edge c→d, so it must be absent.
        assert!(!fast.contains(&store.triple_by_names("a", "red", "d").unwrap()));
        // But the plain closure does contain it.
        let mut stats = EvalStats::new();
        let all = plain(&base(&store), &mut stats);
        assert!(all.contains(&store.triple_by_names("a", "red", "d").unwrap()));
    }

    #[test]
    fn parallel_reachability_matches_sequential() {
        let store = labelled_chain();
        let b = base(&store);
        let adj = Adjacency::from_triples(b.iter());
        let by_label = label_adjacency(&b);
        let mut seq = EvalStats::new();
        let plain_seq = reach_star_plain(&b, &adj, &CancelToken::none(), &mut seq);
        let same_seq = reach_star_same_label(&b, &by_label, &CancelToken::none(), &mut seq);
        for threads in [1usize, 2, 4] {
            let mut par = EvalStats::new();
            assert_eq!(
                plain_seq,
                reach_star_plain_parallel(&b, &adj, threads, &CancelToken::none(), &mut par)
            );
            assert_eq!(
                same_seq,
                reach_star_same_label_parallel(
                    &b,
                    &by_label,
                    threads,
                    &CancelToken::none(),
                    &mut par
                )
            );
            // BFS partitioning changes nothing about the work performed.
            assert_eq!(seq.reach_edges_traversed, par.reach_edges_traversed);
            assert_eq!(seq.triples_emitted, par.triples_emitted);
            if threads > 1 {
                assert!(par.parallel_morsels > 0, "morsels must actually run");
            }
        }
        // Empty and singleton bases survive partitioning.
        let empty = TripleSet::new();
        let mut s = EvalStats::new();
        assert!(reach_star_plain_parallel(
            &empty,
            &Adjacency::default(),
            4,
            &CancelToken::none(),
            &mut s
        )
        .is_empty());
        let single: TripleSet = [b.as_slice()[0]].into_iter().collect();
        let adj1 = Adjacency::from_triples(single.iter());
        let mut s1 = EvalStats::new();
        let mut s2 = EvalStats::new();
        assert_eq!(
            reach_star_plain(&single, &adj1, &CancelToken::none(), &mut s1),
            reach_star_plain_parallel(&single, &adj1, 4, &CancelToken::none(), &mut s2)
        );
    }

    #[test]
    fn empty_base_yields_empty_result() {
        let mut stats = EvalStats::new();
        assert!(plain(&TripleSet::new(), &mut stats).is_empty());
        assert!(same_label(&TripleSet::new(), &mut stats).is_empty());
        assert_eq!(stats.reach_edges_traversed, 0);
    }

    #[test]
    fn star_base_is_always_contained() {
        let store = labelled_chain();
        let b = base(&store);
        let mut stats = EvalStats::new();
        let all = plain(&b, &mut stats);
        let same = same_label(&b, &mut stats);
        for t in b.iter() {
            assert!(all.contains(t));
            assert!(same.contains(t));
        }
        // The same-label closure is always a subset of the plain closure.
        assert!(same.iter().all(|t| all.contains(t)));
    }
}
