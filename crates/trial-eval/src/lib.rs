//! # trial-eval
//!
//! Query evaluation for TriAL and TriAL\* expressions (Section 5 of
//! *"TriAL for RDF"*, PODS 2013).
//!
//! The crate ships several interchangeable engines behind the [`Engine`]
//! trait so that the paper's complexity claims can be measured as ablations
//! on identical expressions and data:
//!
//! * [`NaiveEngine`] — the literal algorithms of Theorem 3: nested-loop
//!   joins (`O(|T|²)` per join) and naive fixpoint iteration of Kleene
//!   stars (`O(|T|³)` per star).
//! * [`SmartEngine`] — the production engine: a cost-based planner compiles
//!   every expression into a physical [`Plan`] executed against the store's
//!   permutation indexes (see *Query planning* below).
//!
//! # Query planning
//!
//! The [`SmartEngine`] never interprets the logical
//! [`Expr`](trial_core::Expr) tree directly. Each evaluation first runs
//! [`planner::plan`], which compiles the expression into a tree of physical
//! [`PlanNode`]s over the store's lazily-cached permutation indexes
//! ([`trial_core::index`]): selections with constants become index-scan
//! bindings, joins with cross equalities become hash joins (the
//! Proposition 4 optimisation) or index nested-loop joins probing a stored
//! relation — with the argument order chosen from relation cardinalities
//! and per-component distinct-value statistics — reachTA⁼ stars become the
//! Proposition 5 reachability procedures over cached adjacency lists, all
//! other stars become build-once semi-naive fixpoints, and repeated
//! sub-expressions are memoised. [`explain`] (or [`Plan::explain`]) renders
//! the chosen plan, e.g. for Example 2 of the paper
//! (`E ✶^{1,3',3}_{2=1'} E`) on the Figure 1 store — a sort-merge join of
//! the POS permutation against the SPO permutation on the shared component:
//!
//! ```text
//! MergeJoin [1,3',3 | 2=1'] on 2=1'  (~7 rows) [merge pos⋈spo]
//! ├─ IndexScan E order=pos  (7 rows)
//! ╰─ IndexScan E  (7 rows)
//! ```
//!
//! ```
//! use trial_core::builder::queries;
//! use trial_core::TriplestoreBuilder;
//!
//! let mut b = TriplestoreBuilder::new();
//! b.add_triple("E", "Edinburgh", "TrainOp1", "London");
//! b.add_triple("E", "TrainOp1", "part_of", "EastCoast");
//! let store = b.finish();
//!
//! let plan = trial_eval::explain(&queries::example2("E"), &store).unwrap();
//! assert!(plan.contains("MergeJoin"));
//! assert!(plan.contains("IndexScan E"));
//! ```
//!
//! The `examples/explain.rs` example at the repository root walks the
//! paper's running queries and prints each plan next to its work counters.
//!
//! # Execution model
//!
//! Plans execute as a **pull-based cursor pipeline** ([`cursor`]): every
//! physical operator is compiled into a [`Cursor`] that yields one triple
//! per pull and performs work only when pulled. The paper's Theorem 3 prices
//! evaluation per triple produced, and the pipeline makes that price real —
//! a consumer that stops after ten triples pays for ten triples, not for the
//! full intermediate relations.
//!
//! **Streaming operators** (first row costs O(1) beyond their children):
//! index scans (over the store's cached SPO/POS/OSP permutation runs,
//! zero-copy), selections, unions (merging when both inputs stream in
//! canonical order, concatenating otherwise), hash-join *probe* sides,
//! index nested-loop joins, complements (the universe `adom³` is enumerated
//! lazily), and limits.
//!
//! **Pipeline breakers** (materialise an input before the first row):
//! hash-join *build* sides, nested-loop / difference / intersection *right*
//! sides, complement inputs, Kleene-star fixpoints, and memo slots.
//! [`PlanNode::pipelined`] exposes the distinction and `explain()` tags
//! every node `[pipelined]` or `[breaker]`.
//!
//! **Limit pushdown** ([`plan_limited`]): a result-cardinality bound becomes
//! a [`PlanNode::Limit`] that folds into nested limits and distributes
//! through unions; the streaming executor then terminates the entire
//! pipeline after `k` *distinct* triples. Constant selections likewise
//! distribute through union/difference/intersection down to index-scan
//! bindings. [`SmartEngine::stream`] is the pull-based entry point
//! ([`QueryStream`]); `EvalOptions { streaming: false, .. }` restores the
//! materialize-everything reference interpreter that the differential suite
//! and the `streaming_vs_materialized` benchmark compare against.
//!
//! # Ordered execution
//!
//! Every operator advertises the sort order its output streams in —
//! [`PlanNode::ordering`] returns the [`trial_core::Permutation`]
//! (`spo`/`pos`/`osp`) whose key is strictly increasing across the emitted
//! rows, or `None`. Because permutation keys order all three components, an
//! ordered stream is automatically duplicate-free, which is what makes the
//! following cheap:
//!
//! * **Merge joins** ([`PlanNode::MergeJoin`]) — when both join inputs can
//!   stream sorted on the two sides of a cross equality *for free* (an
//!   unbound scan just picks the permutation keyed on the joined component:
//!   `E ✶_{2=1'} E` merges POS against SPO), the planner emits a fully
//!   pipelined sort-merge join: **no build side, no hash table**
//!   ([`EvalStats::hash_tables_built`] stays 0), only the current right-side
//!   key group buffered. Merge beats hash whenever both orders are free;
//!   an index nested-loop probe is still chosen when its outer side is ≫
//!   smaller than the two linear scans (factor 8 in the cost gate), and
//!   the planner never *inserts a sort* just to enable a merge join.
//!   The set-at-a-time executor runs merge joins morsel-parallel by carving
//!   the left run at key-run boundaries (aligned sorted runs), each worker
//!   binary-searching its matching right sub-run.
//! * **Order delivery** (`plan_query` with an order) — requesting an output
//!   order rewrites the plan so the root streams in that permutation's key
//!   order: unbound scans switch permutation, filters / difference and
//!   intersection left sides / merge unions pass the requirement down, and
//!   only when nothing below can deliver does an explicit
//!   [`PlanNode::Sort`] breaker materialise and re-sort. `explain()` tags
//!   the imposed orders (`[merge pos⋈spo]`, `[sort pos]`, `[topk osp]`).
//! * **Top-k pushdown** ([`PlanNode::TopK`]) — "the k smallest by component
//!   ordering" generalises the limit machinery: a bounded heap of at most
//!   `k` permutation keys (peak recorded in
//!   [`EvalStats::topk_buffered_peak`]) consumes the stream and re-emits the
//!   survivors in key order. Top-k bounds fold, distribute through unions,
//!   drop redundant same-order sorts, and collapse to a plain streaming
//!   [`PlanNode::Limit`] whenever the input already delivers the order —
//!   the first `k` rows of an ordered stream *are* the `k` smallest, so
//!   `?topk=` over a scan terminates early without any heap. Unlike a
//!   streamed limit, a top-k result is **deterministic** (permutation keys
//!   are total), so the streaming heap and the materialized reference are
//!   held to set equality by `tests/ordered_differential.rs`.
//!
//! Ordering metadata is deliberately conservative: joins never claim an
//! order (duplicate emissions break strictness even when the projection
//! wouldn't) — except the identity-output merge join, which the executor
//! runs as a semijoin (each left row emitted at most once) so its output is
//! a subsequence of the ordered left input. The differential suite's
//! `every_claimed_order_is_real` property streams each claimed-ordered root
//! and asserts the rows really arrive strictly key-ascending.
//!
//! Two further order sources feed the planner:
//!
//! * **secondary orders** — a bound index run (one component fixed) is
//!   strictly sorted under *two* permutations: the one it was read from and
//!   that permutation's [`trial_core::Permutation::secondary`] (a bound POS
//!   run is also OSP-sorted). Declaring the secondary order on a bound scan
//!   costs nothing physically and unlocks merge joins between two bound
//!   scans — shapes that previously always built hash tables — as well as
//!   sort-free `?order=` delivery over selections.
//! * **interesting orders** — [`plan_query`] pushes the requested root
//!   order down into join planning, so an identity-output join picks the
//!   merge key (and prefers a merge over an index probe) that makes the
//!   root stream in the requested order natively, dissolving the final
//!   [`PlanNode::Sort`].
//!
//! # Adaptive planning
//!
//! The planner's selectivity constants are only a cold-start default: a
//! [`SmartEngine`] built via [`SmartEngine::with_stats`] shares a
//! [`stats::StatsStore`] that closes the feedback loop. Every
//! `evaluate_analyzed` run ingests its per-node **actual** row counts,
//! keyed by a normalized plan-shape fingerprint ([`stats::fingerprint`]:
//! scanned relation + binding + condition shapes; estimates, scan orders
//! and physical join variants are deliberately excluded, and the two join
//! orientations are normalized together). Later plans substitute the
//! observed cardinality — exponentially decayed across observations —
//! wherever a fingerprint is known, which re-steers join strategy, build
//! sides, merge-vs-probe gates and morsel granularity. Statistics describe
//! one immutable snapshot: [`stats::StatsStore::invalidate`] atomically
//! clears them when the store's epoch moves (the server calls it under the
//! `/load` write gate), and observations recorded against a stale epoch are
//! dropped. The server surfaces the loop as `est_src=stats|heuristic` per
//! `/explain` node, a `?nostats=1` escape hatch, and planner counters on
//! `/metrics`.
//!
//! # Path queries
//!
//! [`rpq`] evaluates **regular path queries** — [`trial_parser::PathExpr`]
//! expressions built from label atoms, `/` concatenation, `|` alternation
//! and the `*`/`+`/`?` closures — over one edge relation, returning the
//! reachable node pairs `(x, y)` encoded as triples `(x, x, y)`. Two
//! strategies share that contract, selected by [`PathStrategy`]:
//!
//! * **Lowering** ([`rpq::lower`]) — a total translation into the TriAL
//!   algebra: atoms become label-bound selections self-joined to the
//!   `(x, x, y)` shape, concatenation becomes composition joins, closures
//!   become right-star fixpoints. The result is an ordinary
//!   [`Expr`](trial_core::Expr), so concatenation chains inherit the whole
//!   planner — merge/hash/index join selection, memoisation of repeated
//!   label scans, adaptive statistics, limit and order pushdown.
//! * **NFA product walk** ([`rpq::eval_on_store`]) — the expression compiles
//!   to a Thompson NFA ([`rpq::Nfa`]) and a BFS explores the product of the
//!   graph with the automaton over the store's cached adjacency, with
//!   optional per-walk hop bounds (`max_hops`, which the lowering cannot
//!   express), root-partitioned parallelism and cancellation checkpoints.
//!
//! `PathStrategy::Auto` (the `/path` endpoint default) lowers closure-free
//! expressions — those plans are exactly as optimisable as hand-written
//! TriAL — and walks the product for closures or bounded queries, where the
//! planner's plan is a [`PlanNode::PathNfa`] breaker leaf. The two
//! strategies are held to byte-identical result sets by
//! `tests/rpq_differential.rs` (against an independent reachability
//! reference) and the planner-level entry points are
//! [`SmartEngine::plan_path_query`] / [`SmartEngine::stream_path_query`]
//! (and [`plan_path`]).
//!
//! # Parallel execution
//!
//! [`EvalOptions::threads`]` = n` enables **morsel-driven intra-query
//! parallelism** ([`parallel`]): operator inputs are carved into contiguous
//! morsels — via [`trial_core::RelationIndex::partition_cursors`] at the
//! storage layer, [`parallel`]'s slice chunking above it — and executed on a
//! scoped `std::thread` worker pool, synchronising at the pipeline breakers
//! that already exist in the streaming model. The default is 1 (the
//! single-threaded path, unchanged, and the differential reference);
//! `TRIAL_EVAL_THREADS` overrides the process default, which is how CI runs
//! the suite a second time with parallelism on.
//!
//! **What parallelises** (tagged `[parallel×N]` by `explain()`):
//!
//! * **hash joins** — the build side is sharded across workers and merged
//!   shard-by-shard (bucket order identical to a sequential build); the
//!   set-at-a-time probe partitions the probe side against the shared
//!   read-only `JoinTable`;
//! * **index / plain nested-loop joins** — the outer side partitions;
//!   workers probe the store's cached permutation index concurrently;
//! * **filtered scans and selections** — the scanned run splits into
//!   morsels (order-preserving: morsel outputs concatenate in run order);
//! * **star fixpoints** — semi-naive rounds partition each round's delta
//!   across workers probing the build-once hash table; the Proposition 5
//!   procedures partition their BFS roots over the shared adjacency lists;
//! * **union / difference / intersection / complement** — the two sides
//!   (for complement: the excluded input and the universe) materialise
//!   concurrently on sibling executors sharing the memo slots, so a
//!   repeated sub-expression is still computed exactly once.
//!
//! **Fallback rules.** A [`PlanNode::Limit`] subtree always runs as one
//! sequential pull-based pipeline — racing workers past a limit would
//! forfeit early termination — and operators stay sequential beneath
//! [`EvalOptions::parallel_min_rows`] (morsel overhead beats the work on
//! small inputs; the heuristic default is a few thousand rows). Results are
//! **identical** at every degree: morsels are contiguous and their outputs
//! concatenate in input order, so even pre-deduplication row sequences match
//! the single-threaded run (`tests/parallel_differential.rs` proves result
//! equality across `threads ∈ {1, 2, 4}` against the materialized reference
//! and the naive engine; counter totals are exact sums, with
//! [`EvalStats::parallel_morsels`] recording the fan-out).
//!
//! # Instrumentation
//!
//! Every evaluation returns an [`Evaluation`] bundling the result
//! [`TripleSet`](trial_core::TripleSet) with [`EvalStats`] —
//! machine-readable counters (candidate pairs inspected, fixpoint rounds,
//! output sizes) that expose the *shape* of the computation independently of
//! wall-clock time; the benchmark harness uses them to check the paper's
//! asymptotic claims.
//!
//! ```
//! use trial_core::builder::queries;
//! use trial_core::TriplestoreBuilder;
//! use trial_eval::evaluate;
//!
//! let mut b = TriplestoreBuilder::new();
//! b.add_triple("E", "Edinburgh", "TrainOp1", "London");
//! b.add_triple("E", "TrainOp1", "part_of", "EastCoast");
//! let store = b.finish();
//!
//! let eval = evaluate(&queries::example2("E"), &store).unwrap();
//! assert_eq!(
//!     store.display_triples(&eval.result),
//!     vec!["(Edinburgh, EastCoast, London)".to_string()]
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cancel;
pub mod compile;
pub mod cursor;
pub mod engine;
pub mod exec;
pub mod naive;
pub mod ops;
pub mod parallel;
pub mod plan;
pub mod planner;
pub mod profile;
pub mod reach;
pub mod rpq;
pub mod seminaive;
pub mod stats;

pub use cancel::{CancelChecker, CancelReason, CancelToken, CANCEL_CHECK_STRIDE};
pub use cursor::{Cursor, QueryStream};
pub use engine::{
    default_profile_sample, default_threads, Engine, EvalOptions, EvalStats, Evaluation,
};
pub use naive::NaiveEngine;
pub use parallel::{available_threads, Exchange};
pub use plan::{Plan, PlanNode};
pub use planner::{
    evaluate, evaluate_with, explain, plan_limited, plan_path, plan_query, AnalyzedEvaluation,
    SmartEngine,
};
pub use profile::{NodeProfile, QueryProfile};
pub use rpq::PathStrategy;
pub use stats::{ObserveSummary, StatsStore};

// Compile-time thread-safety contract: `trial-server` evaluates queries with
// a shared `SmartEngine` from many worker threads and caches `Plan`s keyed by
// query text. Locking `Send + Sync` in here means a regression (e.g. a
// `RefCell` memo slot) is caught at the source, not in the server build.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SmartEngine>();
    assert_send_sync::<NaiveEngine>();
    assert_send_sync::<Plan>();
    assert_send_sync::<PlanNode>();
    assert_send_sync::<EvalOptions>();
    assert_send_sync::<Evaluation>();
};
