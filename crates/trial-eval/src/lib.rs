//! # trial-eval
//!
//! Query evaluation for TriAL and TriAL\* expressions (Section 5 of
//! *"TriAL for RDF"*, PODS 2013).
//!
//! The crate ships several interchangeable engines behind the [`Engine`]
//! trait so that the paper's complexity claims can be measured as ablations
//! on identical expressions and data:
//!
//! * [`NaiveEngine`] — the literal algorithms of Theorem 3: nested-loop
//!   joins (`O(|T|²)` per join) and naive fixpoint iteration of Kleene
//!   stars (`O(|T|³)` per star).
//! * [`SmartEngine`] — the production engine: hash joins keyed on the
//!   cross equalities of `θ`, semi-naive (delta) fixpoints for stars, the
//!   specialised reachability procedures of Proposition 5 when a star has
//!   one of the two reachTA⁼ shapes, and memoisation of repeated
//!   sub-expressions.
//!
//! Every evaluation returns an [`Evaluation`] bundling the result
//! [`TripleSet`](trial_core::TripleSet) with [`EvalStats`] —
//! machine-readable counters (candidate pairs inspected, fixpoint rounds,
//! output sizes) that expose the *shape* of the computation independently of
//! wall-clock time; the benchmark harness uses them to check the paper's
//! asymptotic claims.
//!
//! ```
//! use trial_core::builder::queries;
//! use trial_core::TriplestoreBuilder;
//! use trial_eval::evaluate;
//!
//! let mut b = TriplestoreBuilder::new();
//! b.add_triple("E", "Edinburgh", "TrainOp1", "London");
//! b.add_triple("E", "TrainOp1", "part_of", "EastCoast");
//! let store = b.finish();
//!
//! let eval = evaluate(&queries::example2("E"), &store).unwrap();
//! assert_eq!(
//!     store.display_triples(&eval.result),
//!     vec!["(Edinburgh, EastCoast, London)".to_string()]
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compile;
pub mod engine;
pub mod memo;
pub mod naive;
pub mod ops;
pub mod planner;
pub mod reach;
pub mod seminaive;

pub use engine::{Engine, EvalOptions, EvalStats, Evaluation};
pub use naive::NaiveEngine;
pub use planner::{evaluate, evaluate_with, SmartEngine};
