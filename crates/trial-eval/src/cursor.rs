//! Pull-based streaming operators: the cursor half of the executor.
//!
//! The materialize-everything interpreter in [`crate::exec`] computes every
//! intermediate [`TripleSet`] in full, so a `LIMIT 10` over a million-triple
//! join pays the whole join. This module provides the alternative: each
//! physical operator is compiled into a [`Cursor`] that yields one
//! [`Triple`] per [`Cursor::next`] call and performs work only when pulled.
//! Stopping early (a satisfied limit, a closed connection) abandons the
//! remaining work for free.
//!
//! # Pipeline breakers
//!
//! Not every operator can stream. The executor materialises exactly the
//! inputs that are consumed out of order ([`crate::plan::PlanNode::pipelined`]
//! is `false` on the operators that own one):
//!
//! * **hash-join build sides** — the probe side then streams;
//! * **nested-loop and difference/intersection right sides** — membership
//!   probes need the whole set;
//! * **complement inputs** — the complement then *streams* the universe,
//!   skipping members, without materialising `adom³`;
//! * **star fixpoints** — a Kleene closure is not known until it converges;
//! * **memo slots** — a shared sub-result must exist to be shared.
//!
//! Everything else — scans, selections, unions (merging when both inputs are
//! in canonical order, concatenating otherwise), index nested-loop joins and
//! hash-join probes, limits — streams.
//!
//! # Order and distinctness
//!
//! A cursor whose plan node is [`ordered`](crate::plan::PlanNode::ordered)
//! yields strictly increasing canonical-order triples and is therefore
//! duplicate-free. Unordered cursors may emit duplicates (joins project,
//! concatenating unions overlap); duplicates are resolved at the next
//! materialisation point, by [`LimitCursor`]s (which count *distinct*
//! triples), or by the final [`QueryStream`] / result-set assembly.

use crate::compile::{project, CompiledConditions};
use crate::engine::EvalStats;
use crate::ops::JoinTable;
use crate::plan::{Plan, PlanNode};
use std::collections::{BTreeSet, HashSet};
use std::sync::Arc;
use trial_core::{
    ObjectId, OutputSpec, Permutation, Pos, RangeCursor, RelationIndex, Triple, TripleSet,
    Triplestore,
};

/// A pull-based operator: yields one output triple per call, or `None` once
/// exhausted. Work counters accrue on the shared [`EvalStats`] exactly when
/// the work happens, so a partially-drained pipeline reports partial work.
pub trait Cursor {
    /// The next output triple, or `None` when the operator is exhausted.
    fn next(&mut self, stats: &mut EvalStats) -> Option<Triple>;
}

/// The boxed form every composite cursor holds its children in. The `Send`
/// bound is what lets a compiled pipeline migrate onto an exchange producer
/// thread ([`QueryStream::channel`]) — cursors only ever hold shared borrows
/// of the store plus owned state, so every operator satisfies it naturally.
pub(crate) type BoxCursor<'a> = Box<dyn Cursor + Send + 'a>;

/// The always-empty cursor.
pub(crate) struct EmptyCursor;

impl Cursor for EmptyCursor {
    fn next(&mut self, _stats: &mut EvalStats) -> Option<Triple> {
        None
    }
}

/// The cancellation shim the planner wraps around exchange morsel-producer
/// cursors when the evaluation carries an armed
/// [`CancelToken`](crate::CancelToken): each pull first consults a
/// stride-amortised [`CancelChecker`](crate::CancelChecker) and reports
/// exhaustion the moment the token latches. (The root pipeline is not
/// wrapped — [`QueryStream::next_triple`] carries the same checker without
/// the extra dispatch layer, which keeps the per-row cost of an armed token
/// at a counter decrement.)
///
/// Cursors are infallible, so cancellation surfaces here as an early `None`
/// — exactly like a satisfied limit. The owning `Result` layer (the planner
/// entry points, the server's drain loops) re-checks the shared token after
/// the stream ends and converts the latch into
/// [`trial_core::Error::Cancelled`], so a truncated stream is never mistaken
/// for a complete result.
pub(crate) struct CancelCursor<'a> {
    pub(crate) input: BoxCursor<'a>,
    pub(crate) checker: crate::cancel::CancelChecker,
}

impl Cursor for CancelCursor<'_> {
    fn next(&mut self, stats: &mut EvalStats) -> Option<Triple> {
        if self.checker.should_stop() {
            return None;
        }
        self.input.next(stats)
    }
}

/// The profiling shim wrapped around every compiled cursor when the
/// per-node profiler is active: counts rows pulled through the node and
/// times one in `stride` pulls (see [`crate::profile`]).
///
/// Measurements accumulate in **locals** and flush into the shared
/// [`NodeTimer`](crate::profile::NodeTimer) on exhaustion and on drop — the
/// hot path performs no atomic operations, only (sampled) clock reads.
pub(crate) struct ProfiledCursor<'a> {
    inner: BoxCursor<'a>,
    timer: Arc<crate::profile::NodeTimer>,
    stride: u32,
    tick: u32,
    local_rows: u64,
    local_ns: u64,
}

impl<'a> ProfiledCursor<'a> {
    pub(crate) fn new(
        inner: BoxCursor<'a>,
        timer: Arc<crate::profile::NodeTimer>,
        stride: u32,
    ) -> Self {
        ProfiledCursor {
            inner,
            timer,
            stride: stride.max(1),
            tick: 0,
            local_rows: 0,
            local_ns: 0,
        }
    }

    fn flush(&mut self) {
        if self.local_rows > 0 || self.tick > 0 {
            self.timer.add_cur_rows(self.local_rows);
            self.local_rows = 0;
        }
        if self.local_ns > 0 {
            let elapsed = std::time::Duration::from_nanos(self.local_ns);
            if self.stride == 1 {
                self.timer.add_full(elapsed);
            } else {
                self.timer.add_sampled(elapsed);
            }
            self.local_ns = 0;
        }
    }
}

impl Cursor for ProfiledCursor<'_> {
    fn next(&mut self, stats: &mut EvalStats) -> Option<Triple> {
        self.tick += 1;
        let t = if self.tick >= self.stride {
            self.tick = 0;
            let start = std::time::Instant::now();
            let t = self.inner.next(stats);
            self.local_ns += start.elapsed().as_nanos() as u64;
            t
        } else {
            self.inner.next(stats)
        };
        match t {
            Some(t) => {
                self.local_rows += 1;
                Some(t)
            }
            None => {
                // Exhausted: make the measurements visible now, so profiles
                // read after a drain (but before the drop) are complete.
                self.tick = 1; // mark touched so zero-row pulls still flush
                self.flush();
                None
            }
        }
    }
}

impl Drop for ProfiledCursor<'_> {
    fn drop(&mut self) {
        self.tick = self.tick.max(1);
        self.flush();
    }
}

/// Streams a borrowed run of an index permutation (a full relation scan or a
/// bounded `matching` run), applying residual selection conditions on the
/// fly. The storage layer's [`RangeCursor`] does the iteration; this adds
/// condition checks and instrumentation.
pub(crate) struct ScanCursor<'a> {
    /// Count scanned/emitted rows — set for indexed runs and filtered scans,
    /// clear for plain relation passthroughs, mirroring the materialized
    /// interpreter's instrumentation so both modes report comparable work.
    pub(crate) instrument: bool,
    pub(crate) run: RangeCursor<'a>,
    pub(crate) residual: Option<CompiledConditions>,
    pub(crate) store: &'a Triplestore,
}

impl Cursor for ScanCursor<'_> {
    fn next(&mut self, stats: &mut EvalStats) -> Option<Triple> {
        loop {
            let t = self.run.next()?;
            if self.instrument {
                stats.triples_scanned += 1;
            }
            if let Some(cond) = &self.residual {
                if !cond.check_single(self.store, &t) {
                    continue;
                }
            }
            if self.instrument {
                stats.triples_emitted += 1;
            }
            return Some(t);
        }
    }
}

/// Streams an owned, already-materialised [`TripleSet`] (star fixpoints,
/// pre-computed sub-results). Always ordered.
pub(crate) struct SetCursor {
    pub(crate) set: TripleSet,
    pub(crate) pos: usize,
}

impl SetCursor {
    pub(crate) fn new(set: TripleSet) -> Self {
        SetCursor { set, pos: 0 }
    }
}

impl Cursor for SetCursor {
    fn next(&mut self, _stats: &mut EvalStats) -> Option<Triple> {
        let t = self.set.as_slice().get(self.pos).copied()?;
        self.pos += 1;
        Some(t)
    }
}

/// Streams a shared memo slot without cloning the underlying set.
pub(crate) struct ArcSetCursor {
    pub(crate) set: Arc<TripleSet>,
    pub(crate) pos: usize,
}

impl Cursor for ArcSetCursor {
    fn next(&mut self, _stats: &mut EvalStats) -> Option<Triple> {
        let t = self.set.as_slice().get(self.pos).copied()?;
        self.pos += 1;
        Some(t)
    }
}

/// Filters a child cursor by compiled (left-only) conditions. Preserves the
/// child's order.
pub(crate) struct FilterCursor<'a> {
    pub(crate) input: BoxCursor<'a>,
    pub(crate) cond: CompiledConditions,
    pub(crate) store: &'a Triplestore,
}

impl Cursor for FilterCursor<'_> {
    fn next(&mut self, stats: &mut EvalStats) -> Option<Triple> {
        loop {
            let t = self.input.next(stats)?;
            stats.triples_scanned += 1;
            if self.cond.check_single(self.store, &t) {
                stats.triples_emitted += 1;
                return Some(t);
            }
        }
    }
}

/// Merge union of two cursors sharing a sort order: yields the sorted,
/// duplicate-free union one triple at a time. Requires both inputs ordered
/// on `perm`'s key (the output then is too — permutation keys order all
/// three components, so equal keys mean equal triples and deduplicate
/// in-line).
pub(crate) struct MergeUnionCursor<'a> {
    pub(crate) left: BoxCursor<'a>,
    pub(crate) right: BoxCursor<'a>,
    pub(crate) perm: Permutation,
    pub(crate) l_peek: Option<Triple>,
    pub(crate) r_peek: Option<Triple>,
    pub(crate) primed: bool,
}

impl Cursor for MergeUnionCursor<'_> {
    fn next(&mut self, stats: &mut EvalStats) -> Option<Triple> {
        if !self.primed {
            self.l_peek = self.left.next(stats);
            self.r_peek = self.right.next(stats);
            self.primed = true;
        }
        let out = match (self.l_peek, self.r_peek) {
            (None, None) => return None,
            (Some(l), None) => {
                self.l_peek = self.left.next(stats);
                l
            }
            (None, Some(r)) => {
                self.r_peek = self.right.next(stats);
                r
            }
            (Some(l), Some(r)) => match self.perm.key(&l).cmp(&self.perm.key(&r)) {
                std::cmp::Ordering::Less => {
                    self.l_peek = self.left.next(stats);
                    l
                }
                std::cmp::Ordering::Greater => {
                    self.r_peek = self.right.next(stats);
                    r
                }
                std::cmp::Ordering::Equal => {
                    self.l_peek = self.left.next(stats);
                    self.r_peek = self.right.next(stats);
                    l
                }
            },
        };
        stats.triples_scanned += 1;
        Some(out)
    }
}

/// Concatenating union for unordered inputs: drains the left cursor, then
/// the right. May emit duplicates (resolved downstream); fully pipelined.
pub(crate) struct ChainUnionCursor<'a> {
    pub(crate) left: BoxCursor<'a>,
    pub(crate) right: BoxCursor<'a>,
    pub(crate) on_right: bool,
}

impl Cursor for ChainUnionCursor<'_> {
    fn next(&mut self, stats: &mut EvalStats) -> Option<Triple> {
        if !self.on_right {
            if let Some(t) = self.left.next(stats) {
                stats.triples_scanned += 1;
                return Some(t);
            }
            self.on_right = true;
        }
        let t = self.right.next(stats)?;
        stats.triples_scanned += 1;
        Some(t)
    }
}

/// Streams the left input, dropping triples present in the materialised
/// right set (the difference's **pipeline-breaking** side). Preserves the
/// left input's order.
pub(crate) struct DiffCursor<'a> {
    pub(crate) input: BoxCursor<'a>,
    pub(crate) rhs: TripleSet,
}

impl Cursor for DiffCursor<'_> {
    fn next(&mut self, stats: &mut EvalStats) -> Option<Triple> {
        loop {
            let t = self.input.next(stats)?;
            stats.triples_scanned += 1;
            if !self.rhs.contains(&t) {
                return Some(t);
            }
        }
    }
}

/// Streams the left input, keeping triples present in the materialised
/// right set. Preserves the left input's order.
pub(crate) struct IntersectCursor<'a> {
    pub(crate) input: BoxCursor<'a>,
    pub(crate) rhs: TripleSet,
}

impl Cursor for IntersectCursor<'_> {
    fn next(&mut self, stats: &mut EvalStats) -> Option<Triple> {
        loop {
            let t = self.input.next(stats)?;
            stats.triples_scanned += 1;
            if self.rhs.contains(&t) {
                return Some(t);
            }
        }
    }
}

/// Lazily enumerates the universal relation `U = adom³` in canonical order
/// without materialising it. The `max_universe` guard is enforced by the
/// executor at construction time, so a full drain can never exceed it.
pub(crate) struct UniverseCursor {
    pub(crate) adom: Vec<ObjectId>,
    pub(crate) i: usize,
    pub(crate) j: usize,
    pub(crate) k: usize,
}

impl UniverseCursor {
    pub(crate) fn new(adom: Vec<ObjectId>) -> Self {
        UniverseCursor {
            adom,
            i: 0,
            j: 0,
            k: 0,
        }
    }

    fn advance(&mut self) -> Option<Triple> {
        let n = self.adom.len();
        if self.i >= n {
            return None;
        }
        let t = Triple::new(self.adom[self.i], self.adom[self.j], self.adom[self.k]);
        self.k += 1;
        if self.k == n {
            self.k = 0;
            self.j += 1;
            if self.j == n {
                self.j = 0;
                self.i += 1;
            }
        }
        Some(t)
    }
}

impl Cursor for UniverseCursor {
    fn next(&mut self, stats: &mut EvalStats) -> Option<Triple> {
        let t = self.advance()?;
        stats.triples_emitted += 1;
        Some(t)
    }
}

/// Streams `U − e`: the lazily-enumerated universe minus a materialised
/// input set. Ordered (the universe is) and duplicate-free.
pub(crate) struct ComplementCursor {
    pub(crate) universe: UniverseCursor,
    pub(crate) exclude: TripleSet,
}

impl Cursor for ComplementCursor {
    fn next(&mut self, stats: &mut EvalStats) -> Option<Triple> {
        loop {
            let t = self.universe.advance()?;
            stats.triples_scanned += 1;
            if !self.exclude.contains(&t) {
                stats.triples_emitted += 1;
                return Some(t);
            }
        }
    }
}

/// Streaming probe phase of a hash join: the build side was materialised
/// into a [`JoinTable`] at construction; each pulled probe triple is looked
/// up once and its (condition-checked, projected) matches buffered.
pub(crate) struct HashJoinCursor<'a> {
    pub(crate) probe: BoxCursor<'a>,
    pub(crate) table: JoinTable,
    pub(crate) output: OutputSpec,
    pub(crate) cond: CompiledConditions,
    pub(crate) store: &'a Triplestore,
    pub(crate) buf: Vec<Triple>,
    pub(crate) buf_pos: usize,
}

impl Cursor for HashJoinCursor<'_> {
    fn next(&mut self, stats: &mut EvalStats) -> Option<Triple> {
        loop {
            if self.buf_pos < self.buf.len() {
                let t = self.buf[self.buf_pos];
                self.buf_pos += 1;
                return Some(t);
            }
            let l = self.probe.next(stats)?;
            stats.triples_scanned += 1;
            self.buf.clear();
            self.buf_pos = 0;
            for r in self.table.probe(&l) {
                stats.pairs_considered += 1;
                if self.cond.check_pair(self.store, &l, r) {
                    self.buf.push(project(&l, r, &self.output));
                    stats.triples_emitted += 1;
                }
            }
        }
    }
}

/// Streaming index nested-loop join: pulls outer triples and walks the
/// matching run of the inner relation's permutation index — no build phase,
/// no buffering (the run is a borrowed slice of the store's index).
pub(crate) struct IndexJoinCursor<'a> {
    pub(crate) outer: BoxCursor<'a>,
    pub(crate) base: &'a TripleSet,
    pub(crate) index: &'a RelationIndex,
    pub(crate) probe: (Pos, Pos),
    pub(crate) output: OutputSpec,
    pub(crate) cond: CompiledConditions,
    pub(crate) store: &'a Triplestore,
    pub(crate) current: Option<Triple>,
    pub(crate) run: &'a [Triple],
    pub(crate) run_pos: usize,
}

impl Cursor for IndexJoinCursor<'_> {
    fn next(&mut self, stats: &mut EvalStats) -> Option<Triple> {
        loop {
            if let Some(l) = self.current {
                while self.run_pos < self.run.len() {
                    let r = &self.run[self.run_pos];
                    self.run_pos += 1;
                    stats.pairs_considered += 1;
                    if self.cond.check_pair(self.store, &l, r) {
                        stats.triples_emitted += 1;
                        return Some(project(&l, r, &self.output));
                    }
                }
            }
            let l = self.outer.next(stats)?;
            stats.triples_scanned += 1;
            let value = l.0[self.probe.0.component_index()];
            self.run = self
                .index
                .matching(self.base, self.probe.1.component_index(), value);
            self.run_pos = 0;
            self.current = Some(l);
        }
    }
}

/// Streaming nested-loop join: the right side is materialised (breaker),
/// the left side streams; every pair is inspected.
pub(crate) struct NestedLoopCursor<'a> {
    pub(crate) left: BoxCursor<'a>,
    pub(crate) right: TripleSet,
    pub(crate) output: OutputSpec,
    pub(crate) cond: CompiledConditions,
    pub(crate) store: &'a Triplestore,
    pub(crate) current: Option<Triple>,
    pub(crate) r_pos: usize,
}

impl Cursor for NestedLoopCursor<'_> {
    fn next(&mut self, stats: &mut EvalStats) -> Option<Triple> {
        loop {
            if let Some(l) = self.current {
                while self.r_pos < self.right.len() {
                    let r = &self.right.as_slice()[self.r_pos];
                    self.r_pos += 1;
                    stats.pairs_considered += 1;
                    if self.cond.check_pair(self.store, &l, r) {
                        stats.triples_emitted += 1;
                        return Some(project(&l, r, &self.output));
                    }
                }
            }
            let l = self.left.next(stats)?;
            self.r_pos = 0;
            self.current = Some(l);
        }
    }
}

/// Streaming sort-merge join: both inputs arrive sorted on their join-key
/// component, so the join is one synchronized forward pass — **no build
/// side, no hash table**, fully pipelined on the left input.
///
/// The only buffering is the current right-side *key group* (all right rows
/// sharing one key value), retained while consecutive left rows carry the
/// same key so duplicated left keys cross-product correctly. Memory is
/// bounded by the widest right duplicate run, not by the input size.
pub(crate) struct MergeJoinCursor<'a> {
    pub(crate) left: BoxCursor<'a>,
    pub(crate) right: BoxCursor<'a>,
    /// 0-based component of the left / right triples carrying the join key.
    pub(crate) lc: usize,
    pub(crate) rc: usize,
    pub(crate) output: OutputSpec,
    pub(crate) cond: CompiledConditions,
    pub(crate) store: &'a Triplestore,
    /// Identity-output semijoin mode: emit each left row at most once,
    /// skipping the rest of its right group after the first surviving
    /// partner. With the identity output every partner would project to the
    /// same left row, so the skip removes duplicates — which is what lets
    /// [`crate::PlanNode::ordering`] pass the left order claim through.
    pub(crate) emit_once: bool,
    pub(crate) l_cur: Option<Triple>,
    /// Buffered right rows of the current key group, and that key.
    pub(crate) group: Vec<Triple>,
    pub(crate) group_key: Option<ObjectId>,
    /// Cross-product progress of `l_cur` through `group`.
    pub(crate) group_pos: usize,
    /// The first right row *beyond* the buffered group.
    pub(crate) r_peek: Option<Triple>,
    pub(crate) primed: bool,
}

impl MergeJoinCursor<'_> {
    /// Buffers the right-side key group for `key`, discarding smaller keys.
    /// Returns `false` if the right input ran out before reaching `key`.
    fn load_group(&mut self, key: ObjectId, stats: &mut EvalStats) -> bool {
        // Skip right rows below the key.
        while let Some(r) = self.r_peek {
            if r.0[self.rc] >= key {
                break;
            }
            stats.triples_scanned += 1;
            self.r_peek = self.right.next(stats);
        }
        let Some(r) = self.r_peek else {
            return false;
        };
        if r.0[self.rc] != key {
            // The right side jumped past the key; the caller advances left.
            return true;
        }
        self.group.clear();
        self.group_key = Some(key);
        while let Some(r) = self.r_peek {
            if r.0[self.rc] != key {
                break;
            }
            stats.triples_scanned += 1;
            self.group.push(r);
            self.r_peek = self.right.next(stats);
        }
        true
    }
}

impl Cursor for MergeJoinCursor<'_> {
    fn next(&mut self, stats: &mut EvalStats) -> Option<Triple> {
        if !self.primed {
            self.l_cur = self.left.next(stats);
            self.r_peek = self.right.next(stats);
            self.primed = true;
        }
        loop {
            let l = self.l_cur?;
            let lk = l.0[self.lc];
            if self.group_key == Some(lk) {
                // Continue the cross product of the current left row with
                // the buffered right group.
                while self.group_pos < self.group.len() {
                    let r = self.group[self.group_pos];
                    self.group_pos += 1;
                    stats.pairs_considered += 1;
                    if self.cond.check_pair(self.store, &l, &r) {
                        if self.emit_once {
                            // Semijoin short-circuit: every partner projects
                            // to the same identity row, so skip the rest of
                            // the group.
                            self.group_pos = self.group.len();
                        }
                        stats.triples_emitted += 1;
                        return Some(project(&l, &r, &self.output));
                    }
                }
                // Group exhausted: next left row restarts the product (it
                // may share the key and reuse the same group).
                stats.triples_scanned += 1;
                self.l_cur = self.left.next(stats);
                self.group_pos = 0;
                continue;
            }
            if self.group_key.is_some_and(|gk| gk > lk) {
                // The buffered group is beyond this left key: no right
                // partner exists for it.
                stats.triples_scanned += 1;
                self.l_cur = self.left.next(stats);
                self.group_pos = 0;
                continue;
            }
            if !self.load_group(lk, stats) {
                // Right side exhausted: nothing further can join.
                return None;
            }
            if self.group_key != Some(lk) {
                // Right side skipped past lk (no partner); advance left.
                stats.triples_scanned += 1;
                self.l_cur = self.left.next(stats);
                self.group_pos = 0;
            }
        }
    }
}

/// Streams an owned vector of triples, already in the desired emit order —
/// the output side of sorts and top-k heaps (whose order is generally not
/// the canonical one a [`TripleSet`] could represent).
pub(crate) struct RowsCursor {
    pub(crate) rows: Vec<Triple>,
    pub(crate) pos: usize,
}

impl Cursor for RowsCursor {
    fn next(&mut self, _stats: &mut EvalStats) -> Option<Triple> {
        let t = self.rows.get(self.pos).copied()?;
        self.pos += 1;
        Some(t)
    }
}

/// The `k` smallest distinct triples of the input under a permutation key,
/// kept in a bounded ordered buffer of at most `k` keys.
///
/// The first pull drains the input completely (a top-k is unknowable
/// earlier), inserting each row's permutation key into a `BTreeSet` capped
/// at `k` entries: when full, a row beyond the current maximum is rejected
/// in O(1) peek + O(log k) otherwise, and the maximum is evicted. Keys are
/// permutations of all three components, so the set deduplicates exactly
/// and converts back to triples losslessly. Survivors then stream in key
/// order. Peak buffer size is recorded in
/// [`EvalStats::topk_buffered_peak`] — never more than `k`.
pub(crate) struct TopKCursor<'a> {
    pub(crate) input: BoxCursor<'a>,
    pub(crate) k: usize,
    pub(crate) order: Permutation,
    pub(crate) out: Vec<Triple>,
    pub(crate) pos: usize,
    pub(crate) drained: bool,
    /// The drain below happens inside one `next` call, so a root-level
    /// cancellation wrapper could not interrupt it: the heap build carries
    /// its own checker and abandons the drain when the token latches.
    pub(crate) cancel: crate::cancel::CancelChecker,
}

impl Cursor for TopKCursor<'_> {
    fn next(&mut self, stats: &mut EvalStats) -> Option<Triple> {
        if !self.drained {
            self.drained = true;
            let mut heap: BTreeSet<[ObjectId; 3]> = BTreeSet::new();
            while let Some(t) = self.input.next(stats) {
                if self.cancel.should_stop() {
                    return None;
                }
                stats.triples_scanned += 1;
                let key = self.order.key(&t);
                if heap.len() == self.k {
                    match heap.last() {
                        Some(max) if *max <= key => continue,
                        _ => {}
                    }
                    if heap.insert(key) {
                        heap.pop_last();
                    }
                } else {
                    heap.insert(key);
                }
                stats.topk_buffered_peak = stats.topk_buffered_peak.max(heap.len() as u64);
            }
            self.out = heap.into_iter().map(|k| self.order.from_key(k)).collect();
            stats.triples_emitted += self.out.len() as u64;
        }
        let t = self.out.get(self.pos).copied()?;
        self.pos += 1;
        Some(t)
    }
}

/// Emits at most `limit` **distinct** triples of the input, then reports
/// exhaustion without pulling further — the early-termination point.
///
/// Ordered inputs are duplicate-free by construction, so the countdown is
/// allocation-free; unordered inputs are deduplicated through a seen-set
/// (bounded by `limit` entries) so duplicates never eat into the budget.
pub(crate) struct LimitCursor<'a> {
    pub(crate) input: BoxCursor<'a>,
    pub(crate) remaining: usize,
    pub(crate) seen: Option<HashSet<Triple>>,
}

impl Cursor for LimitCursor<'_> {
    fn next(&mut self, stats: &mut EvalStats) -> Option<Triple> {
        loop {
            if self.remaining == 0 {
                return None;
            }
            let t = self.input.next(stats)?;
            if let Some(seen) = &mut self.seen {
                if !seen.insert(t) {
                    continue;
                }
            }
            self.remaining -= 1;
            return Some(t);
        }
    }
}

/// Drops input rows while their permutation key under `order` is `<= after`,
/// then streams the rest — the linear seek fallback of resumable pagination
/// for ordered roots that cannot push the seek into the storage layer
/// (sort and top-k outputs re-emit from owned buffers). Ordered inputs are
/// strictly increasing, so once one row passes the comparison stops.
pub(crate) struct SkipCursor<'a> {
    pub(crate) input: BoxCursor<'a>,
    pub(crate) order: Permutation,
    pub(crate) after: [ObjectId; 3],
    pub(crate) skipping: bool,
}

impl Cursor for SkipCursor<'_> {
    fn next(&mut self, stats: &mut EvalStats) -> Option<Triple> {
        loop {
            let t = self.input.next(stats)?;
            if self.skipping {
                if self.order.key(&t) <= self.after {
                    continue;
                }
                self.skipping = false;
            }
            return Some(t);
        }
    }
}

/// A fully-compiled streaming query: the chosen [`Plan`], the root cursor,
/// and the work counters accumulated so far.
///
/// This is the public face of the cursor pipeline, produced by
/// [`SmartEngine::stream`](crate::SmartEngine::stream): callers pull
/// *distinct* triples one at a time with [`QueryStream::next_triple`] and may
/// stop at any point, abandoning all remaining work. The stream borrows the
/// store (cursors walk its cached permutation indexes zero-copy) but owns
/// everything else.
pub struct QueryStream<'a> {
    plan: Plan,
    root: BoxCursor<'a>,
    stats: EvalStats,
    seen: Option<HashSet<Triple>>,
    /// Optional exchange fan-out: independently drainable morsel pipelines
    /// whose in-order concatenation equals the root's row sequence, plus the
    /// limit peeled off the root (morsel pipelines are limit-less — the
    /// consumer side enforces it). Only attached for ordered, morselizable
    /// roots (see `Executor::morsel_cursors`); `channel()` falls back to the
    /// single root pipeline otherwise.
    morsels: Option<(Vec<BoxCursor<'a>>, Option<usize>)>,
    /// Read handle onto the per-node profiler, when active (see
    /// [`QueryStream::profile`]).
    profile: Option<crate::profile::QueryProfile>,
    /// Cancellation token consulted every [`crate::CANCEL_CHECK_STRIDE`]
    /// pulls — directly in [`QueryStream::next_triple`] rather than through
    /// a wrapper cursor. The countdown is paid unconditionally (one u32
    /// decrement per row, identical for inert and armed tokens), so arming
    /// a deadline adds only the strided atomic load.
    cancel: crate::cancel::CancelToken,
    /// Rows until the next real [`CancelToken::is_cancelled`] consult.
    until_check: u32,
}

impl<'a> QueryStream<'a> {
    pub(crate) fn new(plan: Plan, root: BoxCursor<'a>, stats: EvalStats) -> Self {
        // Roots ordered under *any* permutation key are distinct by
        // construction (the key orders all three components), and limit /
        // top-k roots deduplicate internally; everything else needs a
        // seen-set so the stream's contract (distinct triples) holds.
        let distinct = plan.root.ordering().is_some()
            || matches!(plan.root, PlanNode::Limit { .. } | PlanNode::TopK { .. });
        QueryStream {
            seen: (!distinct).then(HashSet::new),
            plan,
            root,
            stats,
            morsels: None,
            profile: None,
            cancel: crate::cancel::CancelToken::none(),
            until_check: crate::cancel::CANCEL_CHECK_STRIDE,
        }
    }

    /// Installs the cancellation checkpoint the stream consults as it is
    /// pulled (see the `cancel` field). Cursors are infallible, so
    /// cancellation surfaces as an early `None` — exactly like a satisfied
    /// limit; the owning `Result` layer re-checks the shared token after
    /// the stream ends and converts the latch into
    /// [`trial_core::Error::Cancelled`].
    pub(crate) fn with_cancel(mut self, token: crate::cancel::CancelToken) -> Self {
        self.cancel = token;
        self
    }

    /// Attaches exchange morsel pipelines (see the `morsels` field).
    pub(crate) fn with_morsels(
        mut self,
        cursors: Vec<BoxCursor<'a>>,
        limit: Option<usize>,
    ) -> Self {
        self.morsels = Some((cursors, limit));
        self
    }

    /// Attaches the per-node profiler handle.
    pub(crate) fn with_profile(mut self, profile: Option<crate::profile::QueryProfile>) -> Self {
        self.profile = profile;
        self
    }

    /// A handle onto the stream's per-node wall-clock profiler, present when
    /// the compiling [`EvalOptions`](crate::EvalOptions) had
    /// `collect_node_stats` or a positive `profile_sample`. Clone it before
    /// consuming the stream (e.g. with [`QueryStream::channel`]) and read
    /// [`QueryProfile::snapshot`](crate::profile::QueryProfile::snapshot)
    /// once the stream has finished — cursors flush their measurements on
    /// exhaustion and drop.
    pub fn profile(&self) -> Option<crate::profile::QueryProfile> {
        self.profile.clone()
    }

    /// `true` when [`QueryStream::channel`] would run multiple producers —
    /// surfaced so callers can report whether a streamed response actually
    /// fanned out.
    pub fn parallelized(&self) -> bool {
        matches!(&self.morsels, Some((cursors, _)) if cursors.len() > 1)
    }

    /// The physical plan the stream executes (e.g. for `explain` output).
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// Work counters accumulated so far; grows as the stream is pulled.
    pub fn stats(&self) -> &EvalStats {
        &self.stats
    }

    /// The next distinct result triple, or `None` once the query is
    /// exhausted (or its limit reached).
    pub fn next_triple(&mut self) -> Option<Triple> {
        self.until_check -= 1;
        if self.until_check == 0 {
            self.until_check = crate::cancel::CANCEL_CHECK_STRIDE;
            if self.cancel.is_cancelled() {
                return None;
            }
        }
        loop {
            let t = self.root.next(&mut self.stats)?;
            if let Some(seen) = &mut self.seen {
                if !seen.insert(t) {
                    continue;
                }
            }
            return Some(t);
        }
    }

    /// Drains the stream, returning only the number of distinct triples —
    /// the counting path behind count-only queries. For ordered pipelines
    /// this allocates no per-row state at all.
    pub fn count(mut self) -> (u64, EvalStats) {
        let mut n = 0u64;
        while self.next_triple().is_some() {
            n += 1;
        }
        (n, self.stats)
    }

    /// Runs the stream through a bounded **exchange**: producer threads
    /// evaluate the pipeline and pump rows into lanes of `depth` batches
    /// while `consume` pulls them back out of the [`Exchange`] on the
    /// current thread — evaluation overlaps with whatever the consumer does
    /// (typically socket writes).
    ///
    /// The rows the exchange yields are exactly the rows
    /// [`QueryStream::next_triple`] would have yielded, in the same order:
    /// with attached morsel pipelines (ordered, morselizable roots under
    /// `EvalOptions::threads > 1`) one producer per morsel pumps its own
    /// lane and the consumer drains lanes in morsel order; otherwise a
    /// single producer runs the root pipeline. Returning from `consume`
    /// without draining — or dropping the exchange — disconnects the lanes
    /// and terminates every producer early, which is how a satisfied
    /// `Limit`/`TopK` (or a closed connection) stops the pipeline.
    ///
    /// Returns `consume`'s result plus the final merged work counters
    /// (exact sums across producers, with
    /// [`EvalStats::parallel_morsels`](crate::EvalStats) counting the
    /// fan-out). A panicking producer propagates after the scope joins.
    pub fn channel<R>(
        mut self,
        depth: usize,
        consume: impl FnOnce(&mut crate::parallel::Exchange) -> R,
    ) -> (R, EvalStats) {
        use std::sync::mpsc::sync_channel;
        let depth = depth.max(1);
        match self.morsels.take() {
            Some((cursors, limit)) if cursors.len() > 1 => {
                let count = cursors.len() as u64;
                let mut stats = self.stats;
                let (result, worker_stats) = std::thread::scope(|scope| {
                    let mut lanes = Vec::with_capacity(cursors.len());
                    let handles: Vec<_> = cursors
                        .into_iter()
                        .map(|mut cursor| {
                            let (tx, rx) = sync_channel(depth);
                            lanes.push(rx);
                            scope.spawn(move || {
                                let mut local = EvalStats::new();
                                crate::parallel::pump(|s| cursor.next(s), &tx, &mut local);
                                local
                            })
                        })
                        .collect();
                    let mut exchange = crate::parallel::Exchange::new(lanes, limit);
                    let result = consume(&mut exchange);
                    // Hang up before joining so blocked producers wind down.
                    drop(exchange);
                    let worker_stats: Vec<EvalStats> = handles
                        .into_iter()
                        .map(|handle| {
                            handle
                                .join()
                                .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
                        })
                        .collect();
                    (result, worker_stats)
                });
                for local in &worker_stats {
                    stats.merge(local);
                }
                stats.parallel_morsels += count;
                (result, stats)
            }
            _ => {
                // Single producer: the root pipeline (with its seen-set when
                // the plan needs one) moves onto one worker thread, so even
                // a sequential evaluation overlaps with the consumer.
                let QueryStream {
                    mut root,
                    stats,
                    mut seen,
                    cancel,
                    mut until_check,
                    ..
                } = self;
                std::thread::scope(|scope| {
                    let (tx, rx) = sync_channel(depth);
                    let handle = scope.spawn(move || {
                        let mut local = stats;
                        crate::parallel::pump(
                            |s| loop {
                                until_check -= 1;
                                if until_check == 0 {
                                    until_check = crate::cancel::CANCEL_CHECK_STRIDE;
                                    if cancel.is_cancelled() {
                                        return None;
                                    }
                                }
                                let t = root.next(s)?;
                                if let Some(seen) = &mut seen {
                                    if !seen.insert(t) {
                                        continue;
                                    }
                                }
                                return Some(t);
                            },
                            &tx,
                            &mut local,
                        );
                        local
                    });
                    let mut exchange = crate::parallel::Exchange::new(vec![rx], None);
                    let result = consume(&mut exchange);
                    drop(exchange);
                    let stats = handle
                        .join()
                        .unwrap_or_else(|payload| std::panic::resume_unwind(payload));
                    (result, stats)
                })
            }
        }
    }

    /// Drains the stream into a [`TripleSet`] (plus final counters).
    pub fn collect_set(mut self) -> (TripleSet, EvalStats) {
        let ordered = self.plan.root.ordered();
        let mut out = Vec::new();
        // Drain the raw root: a trailing `from_vec` deduplicates more
        // cheaply than the per-triple seen-set.
        while let Some(t) = self.root.next(&mut self.stats) {
            out.push(t);
        }
        let set = if ordered {
            TripleSet::from_sorted_vec(out)
        } else {
            TripleSet::from_vec(out)
        };
        (set, self.stats)
    }
}
