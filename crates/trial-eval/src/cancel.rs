//! Cooperative cancellation and deadlines for query evaluation.
//!
//! A [`CancelToken`] travels inside [`crate::EvalOptions`] and is observed
//! at every long-running boundary of the engine: cursor pulls (via a
//! stride-counting wrapper installed by the executor), morsel worker loops,
//! exchange producer pumps, star fixpoint rounds, reachability BFS
//! frontiers, and the drain loops that build hash tables, sorts and top-k
//! heaps. Cancellation is **cooperative**: nothing is interrupted
//! preemptively; instead every checkpoint either returns
//! [`trial_core::Error::Cancelled`] (Result-returning layers) or ends its
//! stream early (the infallible [`crate::Cursor`] pulls), after which the
//! owning Result layer converts the latched token into the structured
//! error.
//!
//! Tokens are cheap to clone (`Option<Arc<_>>`) and the no-token fast path
//! is a single `None` test, so evaluations without a deadline pay nothing.
//! With a token, hot loops amortise the clock read through a
//! [`CancelChecker`] that performs the real check once every
//! [`CANCEL_CHECK_STRIDE`] rows.
//!
//! Cancellation is **first-reason-wins**: once a token latches a
//! [`CancelReason`] (explicitly via [`CancelToken::cancel`] or implicitly
//! when the deadline passes), later cancels do not overwrite it, so the
//! error a client finally sees names the original cause.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How often (in checkpoint hits) a [`CancelChecker`] performs the real
/// token check. One clock read per 1024 rows keeps the overhead of an armed
/// token well under the 2% budget on full scans while still bounding the
/// reaction latency to microseconds of work.
pub const CANCEL_CHECK_STRIDE: u32 = 1024;

/// Why an evaluation was cancelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelReason {
    /// The deadline carried by the token passed.
    Deadline,
    /// The serving process is draining for shutdown.
    Shutdown,
    /// The consumer went away (client disconnect / dropped stream).
    Disconnected,
}

impl CancelReason {
    /// The machine-readable slug used as the structured error kind.
    pub fn as_str(self) -> &'static str {
        match self {
            CancelReason::Deadline => "deadline_exceeded",
            CancelReason::Shutdown => "shutdown",
            CancelReason::Disconnected => "disconnected",
        }
    }

    fn from_code(code: u8) -> Option<CancelReason> {
        match code {
            1 => Some(CancelReason::Deadline),
            2 => Some(CancelReason::Shutdown),
            3 => Some(CancelReason::Disconnected),
            _ => None,
        }
    }

    fn code(self) -> u8 {
        match self {
            CancelReason::Deadline => 1,
            CancelReason::Shutdown => 2,
            CancelReason::Disconnected => 3,
        }
    }
}

#[derive(Debug)]
struct CancelInner {
    /// Wall-clock point after which the token self-cancels with
    /// [`CancelReason::Deadline`]. `None` for manually-cancellable tokens.
    deadline: Option<Instant>,
    /// The latched reason code (0 = not cancelled). First write wins.
    reason: AtomicU8,
}

/// A shared, cloneable cancellation handle.
///
/// The default token ([`CancelToken::none`]) carries no state and never
/// cancels — the zero-overhead path every existing caller gets for free.
/// Armed tokens are created with a deadline ([`CancelToken::with_timeout`] /
/// [`CancelToken::with_deadline`]) or for manual cancellation
/// ([`CancelToken::manual`]), and every clone observes the same latch.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Option<Arc<CancelInner>>,
}

impl CancelToken {
    /// The inert token: never cancels, costs one `None` test per check.
    pub fn none() -> CancelToken {
        CancelToken { inner: None }
    }

    /// A token that self-cancels once `timeout` has elapsed from now.
    pub fn with_timeout(timeout: Duration) -> CancelToken {
        CancelToken::with_deadline(Instant::now() + timeout)
    }

    /// A token that self-cancels at `deadline`.
    pub fn with_deadline(deadline: Instant) -> CancelToken {
        CancelToken {
            inner: Some(Arc::new(CancelInner {
                deadline: Some(deadline),
                reason: AtomicU8::new(0),
            })),
        }
    }

    /// A token with no deadline that only cancels via [`CancelToken::cancel`]
    /// — what a server drain or an explicit kill switch holds.
    pub fn manual() -> CancelToken {
        CancelToken {
            inner: Some(Arc::new(CancelInner {
                deadline: None,
                reason: AtomicU8::new(0),
            })),
        }
    }

    /// `true` when the token can ever cancel (i.e. is not the inert token).
    pub fn is_armed(&self) -> bool {
        self.inner.is_some()
    }

    /// The deadline this token self-cancels at, if it carries one.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.as_ref().and_then(|inner| inner.deadline)
    }

    /// Latches `reason` onto the token. The first reason wins; cancelling an
    /// already-cancelled or inert token is a no-op.
    pub fn cancel(&self, reason: CancelReason) {
        if let Some(inner) = &self.inner {
            let _ = inner.reason.compare_exchange(
                0,
                reason.code(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            );
        }
    }

    /// Performs the full check: the latched flag first, then the deadline
    /// (latching [`CancelReason::Deadline`] when it has passed).
    pub fn is_cancelled(&self) -> bool {
        let Some(inner) = &self.inner else {
            return false;
        };
        if inner.reason.load(Ordering::Relaxed) != 0 {
            return true;
        }
        match inner.deadline {
            Some(deadline) if Instant::now() >= deadline => {
                self.cancel(CancelReason::Deadline);
                true
            }
            _ => false,
        }
    }

    /// The latched reason, performing the deadline check as a side effect.
    pub fn reason(&self) -> Option<CancelReason> {
        if !self.is_cancelled() {
            return None;
        }
        self.inner
            .as_ref()
            .and_then(|inner| CancelReason::from_code(inner.reason.load(Ordering::Relaxed)))
    }

    /// The Result-layer checkpoint: `Err(Error::Cancelled(reason))` once the
    /// token has cancelled, `Ok(())` otherwise (always for inert tokens).
    pub fn check(&self) -> trial_core::Result<()> {
        match self.reason() {
            Some(reason) => Err(trial_core::Error::Cancelled(reason.as_str().to_owned())),
            None => Ok(()),
        }
    }

    /// A stride-amortised checker for per-row hot loops.
    pub fn checker(&self) -> CancelChecker {
        CancelChecker {
            token: self.clone(),
            countdown: CANCEL_CHECK_STRIDE,
        }
    }

    /// `true` when this handle is the only live clone of an armed token —
    /// how the server's in-flight registry prunes finished requests.
    pub fn is_unique(&self) -> bool {
        self.inner
            .as_ref()
            .is_some_and(|inner| Arc::strong_count(inner) == 1)
    }

    /// `true` when two tokens share the same latch (or are both inert).
    pub fn same_token(&self, other: &CancelToken) -> bool {
        match (&self.inner, &other.inner) {
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            (None, None) => true,
            _ => false,
        }
    }
}

/// Tokens compare by identity: two armed tokens are equal only when they
/// share the same latch. This keeps `EvalOptions: PartialEq` meaningful —
/// options differing only in their (shared) token still compare equal.
impl PartialEq for CancelToken {
    fn eq(&self, other: &CancelToken) -> bool {
        self.same_token(other)
    }
}

impl Eq for CancelToken {}

/// Amortises [`CancelToken::is_cancelled`] over a hot loop: only one call in
/// [`CANCEL_CHECK_STRIDE`] performs the real (clock-reading) check. For
/// inert tokens every call is a single branch.
#[derive(Debug, Clone)]
pub struct CancelChecker {
    token: CancelToken,
    countdown: u32,
}

impl CancelChecker {
    /// `true` once the underlying token has cancelled. Checked for real only
    /// every [`CANCEL_CHECK_STRIDE`] calls; once the token latches, every
    /// subsequent call returns `true` immediately.
    #[inline]
    pub fn should_stop(&mut self) -> bool {
        if self.token.inner.is_none() {
            return false;
        }
        self.countdown -= 1;
        if self.countdown == 0 {
            self.countdown = CANCEL_CHECK_STRIDE;
            return self.token.is_cancelled();
        }
        false
    }

    /// The underlying token.
    pub fn token(&self) -> &CancelToken {
        &self.token
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_token_never_cancels() {
        let token = CancelToken::none();
        assert!(!token.is_armed());
        assert!(!token.is_cancelled());
        assert_eq!(token.reason(), None);
        assert!(token.check().is_ok());
        token.cancel(CancelReason::Shutdown); // no-op
        assert!(!token.is_cancelled());
        let mut checker = token.checker();
        for _ in 0..10 * CANCEL_CHECK_STRIDE {
            assert!(!checker.should_stop());
        }
    }

    #[test]
    fn manual_cancel_latches_first_reason() {
        let token = CancelToken::manual();
        assert!(token.is_armed());
        assert!(!token.is_cancelled());
        token.cancel(CancelReason::Shutdown);
        token.cancel(CancelReason::Disconnected); // first reason wins
        assert_eq!(token.reason(), Some(CancelReason::Shutdown));
        match token.check() {
            Err(trial_core::Error::Cancelled(reason)) => assert_eq!(reason, "shutdown"),
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }

    #[test]
    fn clones_share_the_latch() {
        let token = CancelToken::manual();
        let clone = token.clone();
        assert!(token.same_token(&clone));
        assert_eq!(token, clone);
        clone.cancel(CancelReason::Disconnected);
        assert!(token.is_cancelled());
        // Distinct armed tokens are never equal.
        assert_ne!(CancelToken::manual(), CancelToken::manual());
        assert_eq!(CancelToken::none(), CancelToken::none());
    }

    #[test]
    fn deadline_self_cancels_with_deadline_reason() {
        let token = CancelToken::with_timeout(Duration::from_millis(0));
        assert!(token.is_cancelled());
        assert_eq!(token.reason(), Some(CancelReason::Deadline));
        assert_eq!(
            token.check().unwrap_err().to_string(),
            "query cancelled: deadline_exceeded"
        );
        // A generous deadline does not fire.
        let token = CancelToken::with_timeout(Duration::from_secs(3600));
        assert!(!token.is_cancelled());
        assert!(token.deadline().is_some());
    }

    #[test]
    fn checker_reacts_within_one_stride() {
        let token = CancelToken::manual();
        let mut checker = token.checker();
        assert!(!checker.should_stop());
        token.cancel(CancelReason::Deadline);
        let mut stopped_after = None;
        for i in 0..2 * CANCEL_CHECK_STRIDE {
            if checker.should_stop() {
                stopped_after = Some(i);
                break;
            }
        }
        assert!(stopped_after.is_some_and(|i| i < CANCEL_CHECK_STRIDE));
    }

    #[test]
    fn uniqueness_tracks_live_clones() {
        let token = CancelToken::manual();
        assert!(token.is_unique());
        let clone = token.clone();
        assert!(!token.is_unique());
        drop(clone);
        assert!(token.is_unique());
        // Inert tokens are never "unique" (there is nothing to prune).
        assert!(!CancelToken::none().is_unique());
    }
}
