//! The baseline engine: the paper's Theorem 3 algorithms, verbatim.
//!
//! * joins are evaluated by inspecting every pair of input triples
//!   (Procedure 1), which is `O(|T|²)` per join;
//! * Kleene stars are evaluated by the naive fixpoint
//!   `Re := Re ∪ (Re ✶ R1)` iterated until saturation (Procedure 2), which
//!   is `O(|T|³)` per star since at most `|adom|³` triples can ever be added
//!   and each round costs a join.
//!
//! The engine exists as a faithful reference point: the benchmark suite
//! compares it against [`crate::SmartEngine`] to reproduce the shape of the
//! Theorem 3 bounds and to quantify how much the optimisations of
//! Propositions 4 and 5 help (the paper's Section 7 future-work question).

use crate::compile::CompiledConditions;
use crate::engine::{Engine, EvalOptions, EvalStats, Evaluation};
use crate::ops;
use trial_core::{Error, Expr, Result, StarDirection, TripleSet, Triplestore};

/// The literal Theorem-3 evaluation strategy.
#[derive(Debug, Clone, Default)]
pub struct NaiveEngine {
    /// Evaluation limits (the naive engine ignores the strategy switches).
    pub options: EvalOptions,
}

impl NaiveEngine {
    /// Creates the engine with default options.
    pub fn new() -> Self {
        NaiveEngine::default()
    }

    /// Creates the engine with explicit options.
    pub fn with_options(options: EvalOptions) -> Self {
        NaiveEngine { options }
    }

    fn eval(&self, expr: &Expr, store: &Triplestore, stats: &mut EvalStats) -> Result<TripleSet> {
        match expr {
            Expr::Rel(name) => Ok(store.require_relation(name)?.clone()),
            Expr::Universe => ops::universe(store, &self.options, stats),
            Expr::Empty => Ok(TripleSet::new()),
            Expr::Select { input, cond } => {
                let input = self.eval(input, store, stats)?;
                let cond = CompiledConditions::compile(cond, store);
                Ok(ops::select(&input, &cond, store, stats))
            }
            Expr::Union(a, b) => {
                let a = self.eval(a, store, stats)?;
                let b = self.eval(b, store, stats)?;
                stats.triples_scanned += (a.len() + b.len()) as u64;
                Ok(a.union(&b))
            }
            Expr::Diff(a, b) => {
                let a = self.eval(a, store, stats)?;
                let b = self.eval(b, store, stats)?;
                stats.triples_scanned += (a.len() + b.len()) as u64;
                Ok(a.difference(&b))
            }
            Expr::Intersect(a, b) => {
                let a = self.eval(a, store, stats)?;
                let b = self.eval(b, store, stats)?;
                stats.triples_scanned += (a.len() + b.len()) as u64;
                Ok(a.intersection(&b))
            }
            Expr::Complement(e) => {
                let e = self.eval(e, store, stats)?;
                let u = ops::universe(store, &self.options, stats)?;
                stats.triples_scanned += (e.len() + u.len()) as u64;
                Ok(u.difference(&e))
            }
            Expr::Join {
                left,
                right,
                output,
                cond,
            } => {
                let l = self.eval(left, store, stats)?;
                let r = self.eval(right, store, stats)?;
                let cond = CompiledConditions::compile(cond, store);
                Ok(ops::nested_loop_join(&l, &r, output, &cond, store, stats))
            }
            Expr::Star {
                input,
                output,
                cond,
                direction,
            } => {
                let base = self.eval(input, store, stats)?;
                let cond = CompiledConditions::compile(cond, store);
                self.naive_star(&base, output, &cond, *direction, store, stats)
            }
        }
    }

    /// Procedure 2: iterate `Re := Re ∪ (Re ✶ base)` (right closure) or
    /// `Re := Re ∪ (base ✶ Re)` (left closure) until no new triples appear.
    fn naive_star(
        &self,
        base: &TripleSet,
        output: &trial_core::OutputSpec,
        cond: &CompiledConditions,
        direction: StarDirection,
        store: &Triplestore,
        stats: &mut EvalStats,
    ) -> Result<TripleSet> {
        let mut acc = base.clone();
        let mut rounds: u64 = 0;
        loop {
            if rounds >= self.options.max_fixpoint_rounds {
                return Err(Error::LimitExceeded(format!(
                    "Kleene star exceeded {} fixpoint rounds",
                    self.options.max_fixpoint_rounds
                )));
            }
            rounds += 1;
            stats.fixpoint_rounds += 1;
            let joined = match direction {
                StarDirection::Right => {
                    ops::nested_loop_join(&acc, base, output, cond, store, stats)
                }
                StarDirection::Left => {
                    ops::nested_loop_join(base, &acc, output, cond, store, stats)
                }
            };
            let next = acc.union(&joined);
            if next.len() == acc.len() {
                return Ok(acc);
            }
            acc = next;
        }
    }
}

impl Engine for NaiveEngine {
    fn name(&self) -> &'static str {
        "naive (Theorem 3)"
    }

    fn evaluate(&self, expr: &Expr, store: &Triplestore) -> Result<Evaluation> {
        expr.validate()?;
        let mut stats = EvalStats::new();
        let result = self.eval(expr, store, &mut stats)?;
        Ok(Evaluation { result, stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trial_core::builder::queries;
    use trial_core::{Conditions, Pos, TriplestoreBuilder};

    /// The Figure-1 transport network.
    fn figure1() -> Triplestore {
        let mut b = TriplestoreBuilder::new();
        for (s, p, o) in [
            ("St.Andrews", "BusOp1", "Edinburgh"),
            ("Edinburgh", "TrainOp1", "London"),
            ("London", "TrainOp2", "Brussels"),
            ("BusOp1", "part_of", "NatExpress"),
            ("TrainOp1", "part_of", "EastCoast"),
            ("TrainOp2", "part_of", "Eurostar"),
            ("EastCoast", "part_of", "NatExpress"),
        ] {
            b.add_triple("E", s, p, o);
        }
        b.finish()
    }

    #[test]
    fn example2_matches_paper_result() {
        // Example 2: e = E ✶^{1,3',3}_{2=1'} E computes travel information
        // with operators lifted to their parent company (one step).
        let store = figure1();
        let engine = NaiveEngine::new();
        let eval = engine.evaluate(&queries::example2("E"), &store).unwrap();
        // The paper gives exactly this result table for Example 2.
        assert_eq!(
            store.display_triples(&eval.result),
            vec![
                "(Edinburgh, EastCoast, London)".to_string(),
                "(London, Eurostar, Brussels)".to_string(),
                "(St.Andrews, NatExpress, Edinburgh)".to_string(),
            ]
        );
        assert!(eval.stats.pairs_considered >= 49);
    }

    #[test]
    fn example3_left_vs_right_star_differ() {
        // Example 3: E = {(a,b,c), (c,d,e), (d,e,f)};
        // right closure of ✶^{1,2,2'}_{3=1'} adds (a,b,d) and (a,b,e),
        // the left closure only (a,b,d).
        let mut b = TriplestoreBuilder::new();
        b.add_triple("E", "a", "b", "c");
        b.add_triple("E", "c", "d", "e");
        b.add_triple("E", "d", "e", "f");
        let store = b.finish();
        let out = trial_core::output(Pos::L1, Pos::L2, Pos::R2);
        let cond = || Conditions::new().obj_eq(Pos::L3, Pos::R1);
        let right = Expr::rel("E").right_star(out, cond());
        let left = Expr::rel("E").left_star(out, cond());
        let engine = NaiveEngine::new();
        let r = engine.run(&right, &store).unwrap();
        let l = engine.run(&left, &store).unwrap();
        let base: Vec<String> = vec!["(a, b, c)".into(), "(c, d, e)".into(), "(d, e, f)".into()];
        let mut expect_r = base.clone();
        expect_r.extend(["(a, b, d)".to_string(), "(a, b, e)".to_string()]);
        expect_r.sort();
        let mut expect_l = base;
        expect_l.push("(a, b, d)".to_string());
        expect_l.sort();
        assert_eq!(store.display_triples(&r), expect_r);
        assert_eq!(store.display_triples(&l), expect_l);
    }

    #[test]
    fn query_q_on_figure1() {
        // Q: cities reachable using services of one company.
        // (Edinburgh, London) and (St.Andrews, London) qualify,
        // (St.Andrews, Brussels) does not (needs a company change).
        let store = figure1();
        let engine = NaiveEngine::new();
        let q = queries::same_company_reachability("E");
        let result = engine.run(&q, &store).unwrap();
        let rendered = store.display_triples(&result);
        let pairs: Vec<(String, String)> = result
            .iter()
            .map(|t| {
                (
                    store.object_name(t.s()).to_string(),
                    store.object_name(t.o()).to_string(),
                )
            })
            .collect();
        assert!(pairs.contains(&("Edinburgh".into(), "London".into())));
        assert!(pairs.contains(&("St.Andrews".into(), "London".into())));
        assert!(!pairs
            .iter()
            .any(|(s, o)| s == "St.Andrews" && o == "Brussels"));
        assert!(!rendered.is_empty());
    }

    #[test]
    fn set_operations_and_select() {
        let store = figure1();
        let engine = NaiveEngine::new();
        // Select part_of triples.
        let part_of = Expr::rel("E").select(Conditions::new().obj_eq_const(Pos::L2, "part_of"));
        let result = engine.run(&part_of, &store).unwrap();
        assert_eq!(result.len(), 4);
        // E minus part_of = travel triples.
        let travel = Expr::rel("E").minus(part_of.clone());
        assert_eq!(engine.run(&travel, &store).unwrap().len(), 3);
        // Union back = E.
        let back = travel.union(part_of.clone());
        assert_eq!(
            engine.run(&back, &store).unwrap(),
            *store.require_relation("E").unwrap()
        );
        // Intersection with E = part_of itself.
        let inter = part_of.clone().intersect(Expr::rel("E"));
        assert_eq!(engine.run(&inter, &store).unwrap().len(), 4);
        // Empty and unknown relation.
        assert!(engine.run(&Expr::Empty, &store).unwrap().is_empty());
        assert!(engine.run(&Expr::rel("missing"), &store).is_err());
    }

    #[test]
    fn complement_via_universe() {
        let mut b = TriplestoreBuilder::new();
        b.add_triple("E", "a", "b", "c");
        let store = b.finish();
        let engine = NaiveEngine::new();
        let compl = engine.run(&Expr::rel("E").complement(), &store).unwrap();
        // |adom|³ − |E| = 27 − 1.
        assert_eq!(compl.len(), 26);
        assert!(!compl.contains(&store.triple_by_names("a", "b", "c").unwrap()));
        // Complement twice gives back E (over the active domain).
        let twice = engine
            .run(&Expr::rel("E").complement().complement(), &store)
            .unwrap();
        assert_eq!(twice, *store.require_relation("E").unwrap());
    }

    #[test]
    fn fixpoint_round_limit_is_enforced() {
        let mut b = TriplestoreBuilder::new();
        // A long chain forces many fixpoint rounds.
        for i in 0..10 {
            b.add_triple("E", format!("n{i}"), "next", format!("n{}", i + 1));
        }
        let store = b.finish();
        let engine = NaiveEngine::with_options(EvalOptions {
            max_fixpoint_rounds: 2,
            ..EvalOptions::default()
        });
        let err = engine
            .run(&queries::reach_forward("E"), &store)
            .unwrap_err();
        assert!(matches!(err, Error::LimitExceeded(_)));
    }

    #[test]
    fn engine_reports_name_and_validates() {
        let engine = NaiveEngine::new();
        assert!(engine.name().contains("naive"));
        let store = figure1();
        let bad = Expr::rel("E").select(Conditions::new().obj_eq(Pos::L1, Pos::R1));
        assert!(engine.evaluate(&bad, &store).is_err());
    }
}
