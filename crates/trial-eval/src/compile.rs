//! Condition compilation: resolving constants and pre-splitting atoms.
//!
//! Join and selection conditions reference object constants by *name* and
//! data constants by value. Resolving those against the store once per
//! operator (rather than once per candidate pair) keeps the inner loops of
//! the engines branch-light, and mirrors lines 1–3 of the paper's
//! Procedure 1 ("filter R1 and R2 according to the constant comparisons").

use trial_core::condition::{Cmp, Conditions, DataOperand, ObjOperand};
use trial_core::{ObjectId, Pos, Side, Triple, Triplestore, Value};

/// A `θ` atom with its constant (if any) resolved to an [`ObjectId`].
#[derive(Debug, Clone)]
pub enum CompiledObjAtom {
    /// `lhs cmp rhs` between two positions.
    PosPos {
        /// Left position.
        lhs: Pos,
        /// Comparison.
        cmp: Cmp,
        /// Right position.
        rhs: Pos,
    },
    /// `lhs cmp c` against a resolved constant. `None` means the named
    /// object does not occur in the store, so no position can ever equal it.
    PosConst {
        /// Left position.
        lhs: Pos,
        /// Comparison.
        cmp: Cmp,
        /// Resolved constant (None = unknown object).
        rhs: Option<ObjectId>,
    },
}

/// An `η` atom with its constant (if any) kept as a [`Value`].
#[derive(Debug, Clone)]
pub enum CompiledDataAtom {
    /// `ρ(lhs) cmp ρ(rhs)`.
    PosPos {
        /// Left position.
        lhs: Pos,
        /// Comparison.
        cmp: Cmp,
        /// Right position.
        rhs: Pos,
    },
    /// `ρ(lhs) cmp v`.
    PosConst {
        /// Left position.
        lhs: Pos,
        /// Comparison.
        cmp: Cmp,
        /// Constant value.
        rhs: Value,
    },
}

/// Conditions compiled against a particular store.
#[derive(Debug, Clone, Default)]
pub struct CompiledConditions {
    theta: Vec<CompiledObjAtom>,
    eta: Vec<CompiledDataAtom>,
}

impl CompiledConditions {
    /// Compiles `cond` against `store`.
    ///
    /// Unknown object constants do not fail compilation: an equality with an
    /// unknown object is unsatisfiable and an inequality with it is always
    /// satisfied, exactly as if the constant denoted a fresh object outside
    /// the active domain.
    pub fn compile(cond: &Conditions, store: &Triplestore) -> Self {
        let theta = cond
            .theta
            .iter()
            .map(|atom| match &atom.rhs {
                ObjOperand::Pos(p) => CompiledObjAtom::PosPos {
                    lhs: atom.lhs,
                    cmp: atom.cmp,
                    rhs: *p,
                },
                ObjOperand::Const(name) => CompiledObjAtom::PosConst {
                    lhs: atom.lhs,
                    cmp: atom.cmp,
                    rhs: store.object_id(name),
                },
            })
            .collect();
        let eta = cond
            .eta
            .iter()
            .map(|atom| match &atom.rhs {
                DataOperand::Pos(p) => CompiledDataAtom::PosPos {
                    lhs: atom.lhs,
                    cmp: atom.cmp,
                    rhs: *p,
                },
                DataOperand::Const(v) => CompiledDataAtom::PosConst {
                    lhs: atom.lhs,
                    cmp: atom.cmp,
                    rhs: v.clone(),
                },
            })
            .collect();
        CompiledConditions { theta, eta }
    }

    /// Returns `true` if there are no atoms at all.
    pub fn is_empty(&self) -> bool {
        self.theta.is_empty() && self.eta.is_empty()
    }

    /// Checks the conditions against a pair of triples (`left` addressed by
    /// unprimed positions, `right` by primed ones).
    pub fn check_pair(&self, store: &Triplestore, left: &Triple, right: &Triple) -> bool {
        for atom in &self.theta {
            let ok = match atom {
                CompiledObjAtom::PosPos { lhs, cmp, rhs } => {
                    let a = Triple::from_pair(left, right, *lhs);
                    let b = Triple::from_pair(left, right, *rhs);
                    cmp.apply(&a, &b)
                }
                CompiledObjAtom::PosConst { lhs, cmp, rhs } => {
                    let a = Triple::from_pair(left, right, *lhs);
                    match rhs {
                        Some(c) => cmp.apply(&a, c),
                        // Unknown constant: never equal to any object.
                        None => *cmp == Cmp::Neq,
                    }
                }
            };
            if !ok {
                return false;
            }
        }
        for atom in &self.eta {
            let ok = match atom {
                CompiledDataAtom::PosPos { lhs, cmp, rhs } => {
                    let a = Triple::from_pair(left, right, *lhs);
                    let b = Triple::from_pair(left, right, *rhs);
                    cmp.apply(store.value(a), store.value(b))
                }
                CompiledDataAtom::PosConst { lhs, cmp, rhs } => {
                    let a = Triple::from_pair(left, right, *lhs);
                    cmp.apply(store.value(a), rhs)
                }
            };
            if !ok {
                return false;
            }
        }
        true
    }

    /// Checks conditions that only mention unprimed positions against a
    /// single triple (used by selections).
    pub fn check_single(&self, store: &Triplestore, t: &Triple) -> bool {
        self.check_pair(store, t, t)
    }

    /// The positions of cross equalities `(left, right)` usable as hash-join
    /// keys, after compilation. Mirrors
    /// [`Conditions::cross_equalities`](trial_core::Conditions::cross_equalities).
    pub fn cross_equalities(&self) -> Vec<(Pos, Pos)> {
        let mut out = Vec::new();
        for atom in &self.theta {
            if let CompiledObjAtom::PosPos {
                lhs,
                cmp: Cmp::Eq,
                rhs,
            } = atom
            {
                match (lhs.side(), rhs.side()) {
                    (Side::Left, Side::Right) => out.push((*lhs, *rhs)),
                    (Side::Right, Side::Left) => out.push((*rhs, *lhs)),
                    _ => {}
                }
            }
        }
        out
    }
}

/// Projects a joined pair of triples through an output specification.
#[inline]
pub fn project(left: &Triple, right: &Triple, output: &trial_core::OutputSpec) -> Triple {
    Triple::new(
        Triple::from_pair(left, right, output.get(0)),
        Triple::from_pair(left, right, output.get(1)),
        Triple::from_pair(left, right, output.get(2)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use trial_core::{Conditions, OutputSpec, TriplestoreBuilder};

    fn store() -> (Triplestore, Triple, Triple) {
        let mut b = TriplestoreBuilder::new();
        b.object_with_value("a", Value::int(1));
        b.object_with_value("b", Value::int(2));
        b.object_with_value("c", Value::int(1));
        b.add_triple("E", "a", "b", "c");
        b.add_triple("E", "c", "b", "a");
        let store = b.finish();
        let t1 = store.triple_by_names("a", "b", "c").unwrap();
        let t2 = store.triple_by_names("c", "b", "a").unwrap();
        (store, t1, t2)
    }

    #[test]
    fn pair_checks_object_equalities() {
        let (store, t1, t2) = store();
        // 3 = 1' holds: t1.o = c, t2.s = c.
        let c = CompiledConditions::compile(&Conditions::new().obj_eq(Pos::L3, Pos::R1), &store);
        assert!(c.check_pair(&store, &t1, &t2));
        assert!(!c.check_pair(&store, &t2, &t2)); // a != c
                                                  // Inequality flips it.
        let c = CompiledConditions::compile(&Conditions::new().obj_neq(Pos::L3, Pos::R1), &store);
        assert!(!c.check_pair(&store, &t1, &t2));
    }

    #[test]
    fn pair_checks_constants() {
        let (store, t1, t2) = store();
        let c = CompiledConditions::compile(&Conditions::new().obj_eq_const(Pos::L1, "a"), &store);
        assert!(c.check_single(&store, &t1));
        assert!(!c.check_single(&store, &t2));
        // Unknown constant: equality unsatisfiable, inequality always true.
        let c = CompiledConditions::compile(
            &Conditions::new().obj_eq_const(Pos::L1, "missing"),
            &store,
        );
        assert!(!c.check_single(&store, &t1));
        let c = CompiledConditions::compile(
            &Conditions::new().obj_neq_const(Pos::L1, "missing"),
            &store,
        );
        assert!(c.check_single(&store, &t1));
    }

    #[test]
    fn pair_checks_data_values() {
        let (store, t1, t2) = store();
        // ρ(1) = ρ(3'): ρ(a)=1, ρ(t2.o)=ρ(a)=1 → true.
        let c = CompiledConditions::compile(&Conditions::new().data_eq(Pos::L1, Pos::R3), &store);
        assert!(c.check_pair(&store, &t1, &t2));
        // ρ(1) = ρ(2): ρ(a)=1 vs ρ(b)=2 → false.
        let c = CompiledConditions::compile(&Conditions::new().data_eq(Pos::L1, Pos::L2), &store);
        assert!(!c.check_single(&store, &t1));
        // Constant data comparison.
        let c = CompiledConditions::compile(
            &Conditions::new().data_eq_const(Pos::L2, Value::int(2)),
            &store,
        );
        assert!(c.check_single(&store, &t1));
        let c = CompiledConditions::compile(
            &Conditions::new().data_neq_const(Pos::L2, Value::int(2)),
            &store,
        );
        assert!(!c.check_single(&store, &t1));
    }

    #[test]
    fn empty_conditions_always_hold() {
        let (store, t1, t2) = store();
        let c = CompiledConditions::compile(&Conditions::new(), &store);
        assert!(c.is_empty());
        assert!(c.check_pair(&store, &t1, &t2));
    }

    #[test]
    fn cross_equalities_survive_compilation() {
        let (store, _, _) = store();
        let c = CompiledConditions::compile(
            &Conditions::new()
                .obj_eq(Pos::L3, Pos::R1)
                .obj_eq(Pos::R2, Pos::L2)
                .obj_neq(Pos::L1, Pos::R3)
                .obj_eq(Pos::L1, Pos::L2),
            &store,
        );
        assert_eq!(
            c.cross_equalities(),
            vec![(Pos::L3, Pos::R1), (Pos::L2, Pos::R2)]
        );
    }

    #[test]
    fn projection_selects_positions() {
        let (store, t1, t2) = store();
        let out = OutputSpec::new(Pos::L1, Pos::R3, Pos::L3);
        let t = project(&t1, &t2, &out);
        assert_eq!(store.display_triple(&t), "(a, a, c)");
        let ident = project(&t1, &t2, &OutputSpec::IDENTITY);
        assert_eq!(ident, t1);
    }
}
