//! Regular path queries over the triplestore (Section 6 of the paper).
//!
//! The paper's central theorem is that TriAL* captures regular path
//! queries. This module makes the claim executable in both directions:
//!
//! * [`lower`] compiles every [`PathExpr`] into a plain TriAL\*
//!   [`Expr`](trial_core::Expr) — pairs `(x, y)` are encoded as triples
//!   `(x, x, y)`, concatenation becomes a triple join
//!   `✶^{1,1,3'}_{3=1'}`, alternation a union, and Kleene closures a right
//!   Kleene star of the same join shape. The lowering is **total**: the
//!   resulting expression goes through the ordinary cost-based planner, so
//!   star-free chains pick up merge/hash joins, statistics feedback and
//!   `explain()` for free.
//! * [`eval_product`] evaluates the same semantics directly, as a BFS over
//!   the product of the edge graph with a Thompson [`Nfa`] of the
//!   expression — the classic PTIME RPQ procedure. It reuses the
//!   store-cached per-label adjacency lists and the morsel fan-out of
//!   [`crate::reach`], checks the [`CancelToken`] between BFS roots, and is
//!   the only strategy that supports a `max_hops` bound (the product BFS is
//!   level-synchronous, so bounding path length is free).
//!
//! Both strategies return the identical [`TripleSet`] — the differential
//! suite (`tests/rpq_differential.rs`) proves it against an independent
//! reference on generated graphs.
//!
//! ## Pair encoding
//!
//! An RPQ answer is a set of node pairs, but every TriAL relation is
//! ternary. A pair `(x, y)` is stored as the triple `(x, x, y)`: the
//! duplicated subject keeps the encoding deterministic (no join artefacts in
//! the middle position), makes the subject/object components carry exactly
//! the pair, and keeps SPO/OSP orderings meaningful for `?order=`/top-k.
//! Identity pairs (matched by `p*` and `p?`) range over the **nodes of the
//! queried relation** — every object that occurs as a subject or object of
//! one of its triples.

use crate::cancel::CancelToken;
use crate::engine::EvalStats;
use crate::parallel;
use crate::reach::label_adjacency;
use std::collections::{HashMap, HashSet, VecDeque};
use trial_core::{
    Adjacency, Conditions, Expr, ObjectId, OutputSpec, Pos, Result, Triple, TripleSet, Triplestore,
};
use trial_parser::PathExpr;

/// Which execution strategy a path query runs under — the server's
/// `?algo=` knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathStrategy {
    /// Pick per query: star-free expressions take the [`lower`]ing (the
    /// planner then gets to choose merge/hash joins and apply statistics
    /// feedback), Kleene closures and `max_hops` bounds take the NFA walk.
    Auto,
    /// Always the product-NFA traversal.
    Nfa,
    /// Always the TriAL lowering. Incompatible with `max_hops` (a join
    /// plan has no hop counter); callers reject that combination up front.
    Lower,
}

impl PathStrategy {
    /// Parses the `?algo=` parameter value (case-insensitive).
    pub fn parse(name: &str) -> Option<PathStrategy> {
        match name.to_ascii_lowercase().as_str() {
            "auto" => Some(PathStrategy::Auto),
            "nfa" => Some(PathStrategy::Nfa),
            "lower" | "star" => Some(PathStrategy::Lower),
            _ => None,
        }
    }

    /// The strategy's canonical name.
    pub fn name(self) -> &'static str {
        match self {
            PathStrategy::Auto => "auto",
            PathStrategy::Nfa => "nfa",
            PathStrategy::Lower => "lower",
        }
    }

    /// Resolves `Auto` for a concrete query: `true` means the NFA walk runs,
    /// `false` means the query lowers onto TriAL.
    pub fn resolves_to_nfa(self, path: &PathExpr, max_hops: Option<usize>) -> bool {
        match self {
            PathStrategy::Nfa => true,
            PathStrategy::Lower => false,
            PathStrategy::Auto => path.has_closure() || max_hops.is_some(),
        }
    }
}

// ---------------------------------------------------------------------------
// Lowering onto TriAL*
// ---------------------------------------------------------------------------

/// The join condition equating all three components — used to pair each
/// triple of a relation with itself.
fn full_eq() -> Conditions {
    Conditions::new()
        .obj_eq(Pos::L1, Pos::R1)
        .obj_eq(Pos::L2, Pos::R2)
        .obj_eq(Pos::L3, Pos::R3)
}

/// Output spec for the pair encoding: `(x, x, y)` from a left row carrying
/// `x` and a right row carrying `y`.
fn pair_output() -> OutputSpec {
    OutputSpec::new(Pos::L1, Pos::L1, Pos::R3)
}

/// Composition of two pair relations: `(x,x,m) ✶^{1,1,3'}_{3=1'} (m,m,y)`
/// yields `(x,x,y)`.
fn compose(left: Expr, right: Expr) -> Expr {
    left.join(
        right,
        pair_output(),
        Conditions::new().obj_eq(Pos::L3, Pos::R1),
    )
}

/// The identity pair relation over the nodes of `relation`: `(n, n, n)` for
/// every object occurring as a subject or as an object of one of its
/// triples. Each side is a self-join pairing every triple with itself and
/// projecting one endpoint onto all three output positions.
fn ident(relation: &str) -> Expr {
    let subjects = Expr::rel(relation).join(
        Expr::rel(relation),
        OutputSpec::new(Pos::L1, Pos::L1, Pos::L1),
        full_eq(),
    );
    let objects = Expr::rel(relation).join(
        Expr::rel(relation),
        OutputSpec::new(Pos::L3, Pos::L3, Pos::L3),
        full_eq(),
    );
    subjects.union(objects)
}

/// One-or-more repetitions of a pair relation: the right Kleene star of the
/// composition join. The TriAL star includes its base, so this is exactly
/// the transitive closure `P⁺`.
fn plus(pairs: Expr) -> Expr {
    pairs.right_star(pair_output(), Conditions::new().obj_eq(Pos::L3, Pos::R1))
}

/// Compiles a path expression into a TriAL\* expression over `relation`,
/// producing the pair encoding `(x, x, y)` for every matching pair.
///
/// The lowering is total — every [`PathExpr`] shape has a TriAL\* image:
///
/// | path        | TriAL\* |
/// |-------------|---------|
/// | atom `a`    | `σ_{2=a}(E)` self-joined into pair form |
/// | `p/q`       | `P ✶^{1,1,3'}_{3=1'} Q` |
/// | `p\|q`      | `P ∪ Q` |
/// | `p+`        | `STAR(P ✶^{1,1,3'}_{3=1'})` (right star) |
/// | `p*`        | `ident ∪ p+` |
/// | `p?`        | `ident ∪ P` |
pub fn lower(path: &PathExpr, relation: &str) -> Expr {
    match path {
        PathExpr::Atom(label) => {
            let edges =
                Expr::rel(relation).select(Conditions::new().obj_eq_const(Pos::L2, label.clone()));
            edges.clone().join(edges, pair_output(), full_eq())
        }
        PathExpr::Seq(parts) => parts
            .iter()
            .map(|p| lower(p, relation))
            .reduce(compose)
            .expect("Seq has at least one part"),
        PathExpr::Alt(parts) => parts
            .iter()
            .map(|p| lower(p, relation))
            .reduce(Expr::union)
            .expect("Alt has at least one part"),
        PathExpr::Star(inner) => ident(relation).union(plus(lower(inner, relation))),
        PathExpr::Plus(inner) => plus(lower(inner, relation)),
        PathExpr::Opt(inner) => ident(relation).union(lower(inner, relation)),
    }
}

// ---------------------------------------------------------------------------
// Thompson NFA
// ---------------------------------------------------------------------------

/// A Thompson NFA over edge labels, with a single start and accept state.
///
/// States are dense indices; label transitions refer into [`Nfa::labels`]
/// (the distinct atom labels of the source expression). Epsilon closures are
/// precomputed per state — path expressions are tiny, the graphs are not.
#[derive(Debug)]
pub struct Nfa {
    labels: Vec<String>,
    /// Per state: `(label index, target state)` transitions.
    trans: Vec<Vec<(usize, usize)>>,
    /// Per state: its epsilon closure (always contains the state itself).
    closure: Vec<Vec<usize>>,
    start: usize,
    accept: usize,
}

/// NFA under construction: raw epsilon edges, closures not yet computed.
#[derive(Default)]
struct NfaBuilder {
    labels: Vec<String>,
    trans: Vec<Vec<(usize, usize)>>,
    eps: Vec<Vec<usize>>,
}

impl NfaBuilder {
    fn state(&mut self) -> usize {
        self.trans.push(Vec::new());
        self.eps.push(Vec::new());
        self.trans.len() - 1
    }

    fn label_index(&mut self, label: &str) -> usize {
        match self.labels.iter().position(|l| l == label) {
            Some(i) => i,
            None => {
                self.labels.push(label.to_owned());
                self.labels.len() - 1
            }
        }
    }

    /// Thompson construction: returns `(start, accept)` for the fragment.
    fn fragment(&mut self, path: &PathExpr) -> (usize, usize) {
        match path {
            PathExpr::Atom(label) => {
                let (s, t) = (self.state(), self.state());
                let l = self.label_index(label);
                self.trans[s].push((l, t));
                (s, t)
            }
            PathExpr::Seq(parts) => {
                let mut iter = parts.iter();
                let (s, mut t) = self.fragment(iter.next().expect("Seq has parts"));
                for p in iter {
                    let (ns, nt) = self.fragment(p);
                    self.eps[t].push(ns);
                    t = nt;
                }
                (s, t)
            }
            PathExpr::Alt(parts) => {
                let (s, t) = (self.state(), self.state());
                for p in parts {
                    let (ps, pt) = self.fragment(p);
                    self.eps[s].push(ps);
                    self.eps[pt].push(t);
                }
                (s, t)
            }
            PathExpr::Star(inner) => {
                let (s, t) = (self.state(), self.state());
                let (is, it) = self.fragment(inner);
                self.eps[s].push(is);
                self.eps[s].push(t);
                self.eps[it].push(is);
                self.eps[it].push(t);
                (s, t)
            }
            PathExpr::Plus(inner) => {
                let (is, it) = self.fragment(inner);
                let t = self.state();
                self.eps[it].push(is);
                self.eps[it].push(t);
                (is, t)
            }
            PathExpr::Opt(inner) => {
                let (s, t) = (self.state(), self.state());
                let (is, it) = self.fragment(inner);
                self.eps[s].push(is);
                self.eps[s].push(t);
                self.eps[it].push(t);
                (s, t)
            }
        }
    }
}

impl Nfa {
    /// Compiles a path expression via the Thompson construction.
    pub fn compile(path: &PathExpr) -> Nfa {
        let mut b = NfaBuilder::default();
        let (start, accept) = b.fragment(path);
        let n = b.trans.len();
        let mut closure = Vec::with_capacity(n);
        for state in 0..n {
            let mut seen = vec![false; n];
            let mut queue = VecDeque::from([state]);
            seen[state] = true;
            let mut out = Vec::new();
            while let Some(q) = queue.pop_front() {
                out.push(q);
                for &next in &b.eps[q] {
                    if !seen[next] {
                        seen[next] = true;
                        queue.push_back(next);
                    }
                }
            }
            out.sort_unstable();
            closure.push(out);
        }
        Nfa {
            labels: b.labels,
            trans: b.trans,
            closure,
            start,
            accept,
        }
    }

    /// Number of states (for explain labels and tests).
    pub fn state_count(&self) -> usize {
        self.trans.len()
    }

    /// The distinct atom labels, in first-use order.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// `true` if the empty word is accepted (start's closure reaches accept).
    pub fn accepts_empty(&self) -> bool {
        self.closure[self.start].contains(&self.accept)
    }
}

// ---------------------------------------------------------------------------
// Product-graph BFS evaluation
// ---------------------------------------------------------------------------

/// The distinct nodes of a relation — every object occurring as a subject or
/// object of one of its triples, sorted. These are the BFS roots and the
/// range of identity pairs, matching [`lower`]'s `ident` semantics.
pub fn node_universe(base: &TripleSet) -> Vec<ObjectId> {
    let mut nodes: Vec<ObjectId> = Vec::with_capacity(base.len() * 2);
    for t in base.iter() {
        nodes.push(t.s());
        nodes.push(t.o());
    }
    nodes.sort_unstable();
    nodes.dedup();
    nodes
}

/// BFS over the product of the edge graph with the NFA, from a single root.
/// Appends `(root, root, y)` to `out` for every node `y` reachable in an
/// accepting product state within `max_hops` graph edges (unbounded when
/// `None`). BFS explores by edge count, so the first visit to a product
/// state is at its minimum hop depth — a plain visited set implements the
/// bound exactly.
fn product_bfs(
    root: ObjectId,
    nfa: &Nfa,
    adj: &[Option<&Adjacency>],
    max_hops: Option<usize>,
    stats: &mut EvalStats,
    out: &mut Vec<Triple>,
) {
    let mut visited: HashSet<(ObjectId, usize)> = HashSet::new();
    let mut accepted: Vec<ObjectId> = Vec::new();
    // `frontier` holds the product states first reached after `depth` edges,
    // already expanded through epsilon closures.
    let mut frontier: Vec<(ObjectId, usize)> = Vec::new();
    for &q in &nfa.closure[nfa.start] {
        if visited.insert((root, q)) {
            if q == nfa.accept {
                accepted.push(root);
            }
            frontier.push((root, q));
        }
    }
    let mut depth = 0;
    while !frontier.is_empty() && max_hops.is_none_or(|h| depth < h) {
        let mut next: Vec<(ObjectId, usize)> = Vec::new();
        for (node, q) in frontier {
            for &(label, q2) in &nfa.trans[q] {
                let Some(adj) = adj[label] else { continue };
                for succ in adj.successor_cursor(node) {
                    stats.reach_edges_traversed += 1;
                    for &q3 in &nfa.closure[q2] {
                        if visited.insert((succ, q3)) {
                            if q3 == nfa.accept {
                                accepted.push(succ);
                            }
                            next.push((succ, q3));
                        }
                    }
                }
            }
        }
        frontier = next;
        depth += 1;
    }
    accepted.sort_unstable();
    accepted.dedup();
    for y in accepted {
        out.push(Triple::new(root, root, y));
        stats.triples_emitted += 1;
    }
}

/// Evaluates a path expression as a product-graph BFS over per-label
/// adjacency lists, fanning the roots out across `threads` workers exactly
/// like [`crate::reach::reach_star_plain_parallel`].
///
/// `label_ids` resolves atom labels to object ids; labels absent from the
/// map (or without adjacency lists) simply have no transitions. Checks
/// `cancel` between BFS roots; on cancellation the empty set is returned and
/// the caller is expected to surface the error.
#[allow(clippy::too_many_arguments)] // the product walk's full knob set, one internal call site
pub fn eval_product(
    base: &TripleSet,
    adj_by_label: &HashMap<ObjectId, Adjacency>,
    label_ids: &HashMap<String, ObjectId>,
    path: &PathExpr,
    max_hops: Option<usize>,
    threads: usize,
    cancel: &CancelToken,
    stats: &mut EvalStats,
) -> TripleSet {
    let nfa = Nfa::compile(path);
    let adj: Vec<Option<&Adjacency>> = nfa
        .labels
        .iter()
        .map(|l| label_ids.get(l).and_then(|id| adj_by_label.get(id)))
        .collect();
    let roots = node_universe(base);
    let nfa = &nfa;
    let adj = &adj;
    let tasks: Vec<_> = parallel::chunk(&roots, threads)
        .into_iter()
        .map(|morsel| {
            move |stats: &mut EvalStats| {
                let mut out: Vec<Triple> = Vec::new();
                for &root in morsel {
                    // One product BFS per root: check between roots so a
                    // cancelled query stops mid-morsel.
                    if cancel.is_cancelled() {
                        break;
                    }
                    product_bfs(root, nfa, adj, max_hops, stats, &mut out);
                }
                out
            }
        })
        .collect();
    let parts = parallel::run_tasks(threads, tasks, cancel, stats);
    if cancel.is_cancelled() {
        return TripleSet::new();
    }
    let mut out: Vec<Triple> = Vec::new();
    for part in parts {
        out.extend(part);
    }
    TripleSet::from_vec(out)
}

/// Evaluates a path expression against a stored relation, borrowing the
/// store's cached per-label adjacency lists (so repeated path queries over
/// the same relation never rebuild the graph) and falling back to an ad-hoc
/// build only if the relation has no index entry.
pub fn eval_on_store(
    store: &Triplestore,
    relation: &str,
    path: &PathExpr,
    max_hops: Option<usize>,
    threads: usize,
    cancel: &CancelToken,
    stats: &mut EvalStats,
) -> Result<TripleSet> {
    let base = store.require_relation(relation)?;
    let label_ids: HashMap<String, ObjectId> = path
        .labels()
        .into_iter()
        .filter_map(|l| store.object_id(l).map(|id| (l.to_owned(), id)))
        .collect();
    let result = match store.relation_with_index(relation) {
        Some((rel, index)) => eval_product(
            rel,
            index.adjacency_by_label(rel),
            &label_ids,
            path,
            max_hops,
            threads,
            cancel,
            stats,
        ),
        None => eval_product(
            base,
            &label_adjacency(base),
            &label_ids,
            path,
            max_hops,
            threads,
            cancel,
            stats,
        ),
    };
    cancel.check()?;
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::NaiveEngine;
    use crate::Engine;
    use trial_core::TriplestoreBuilder;
    use trial_parser::parse_path;

    fn store() -> Triplestore {
        let mut b = TriplestoreBuilder::new();
        // red chain a→b→c, blue edge c→d, blue back-edge d→a (a cycle),
        // green shortcut a→c, plus an isolated red self-loop.
        b.add_triple("E", "a", "red", "b");
        b.add_triple("E", "b", "red", "c");
        b.add_triple("E", "c", "blue", "d");
        b.add_triple("E", "d", "blue", "a");
        b.add_triple("E", "a", "green", "c");
        b.add_triple("E", "x", "red", "x");
        b.finish()
    }

    fn nfa_pairs(
        store: &Triplestore,
        text: &str,
        max_hops: Option<usize>,
    ) -> Vec<(String, String)> {
        let path = parse_path(text).unwrap();
        let mut stats = EvalStats::new();
        let result = eval_on_store(
            store,
            "E",
            &path,
            max_hops,
            1,
            &CancelToken::none(),
            &mut stats,
        )
        .unwrap();
        pair_names(store, &result)
    }

    fn lowered_pairs(store: &Triplestore, text: &str) -> Vec<(String, String)> {
        let path = parse_path(text).unwrap();
        let expr = lower(&path, "E");
        let result = NaiveEngine::new().run(&expr, store).unwrap();
        pair_names(store, &result)
    }

    fn pair_names(store: &Triplestore, result: &TripleSet) -> Vec<(String, String)> {
        result
            .iter()
            .map(|t| {
                assert_eq!(t.s(), t.p(), "pair encoding must duplicate the subject");
                (
                    store.object_name(t.s()).to_owned(),
                    store.object_name(t.o()).to_owned(),
                )
            })
            .collect()
    }

    fn pairs(entries: &[(&str, &str)]) -> Vec<(String, String)> {
        let mut out: Vec<(String, String)> = entries
            .iter()
            .map(|&(a, b)| (a.to_owned(), b.to_owned()))
            .collect();
        out.sort();
        out
    }

    #[test]
    fn atom_matches_single_edges() {
        let s = store();
        let mut got = nfa_pairs(&s, "green", None);
        got.sort();
        assert_eq!(got, pairs(&[("a", "c")]));
    }

    #[test]
    fn concatenation_composes() {
        let s = store();
        let mut got = nfa_pairs(&s, "red/red", None);
        got.sort();
        assert_eq!(got, pairs(&[("a", "c"), ("x", "x")]));
    }

    #[test]
    fn alternation_unions() {
        let s = store();
        let mut got = nfa_pairs(&s, "green|blue", None);
        got.sort();
        assert_eq!(got, pairs(&[("a", "c"), ("c", "d"), ("d", "a")]));
    }

    #[test]
    fn star_includes_identity() {
        let s = store();
        let got = nfa_pairs(&s, "green*", None);
        // Identity on all five nodes, plus the green edge.
        assert_eq!(got.len(), 6);
        assert!(got.contains(&("d".to_owned(), "d".to_owned())));
        assert!(got.contains(&("a".to_owned(), "c".to_owned())));
    }

    #[test]
    fn max_hops_bounds_path_length() {
        let s = store();
        // (red|blue|green)+ within 1 hop = exactly the edge set.
        let got = nfa_pairs(&s, "(red|blue|green)+", Some(1));
        assert_eq!(got.len(), 6);
        // Unbounded closure on the a→b→c→d→a cycle reaches everywhere.
        let unbounded = nfa_pairs(&s, "(red|blue|green)+", None);
        assert!(unbounded.contains(&("a".to_owned(), "a".to_owned())));
        assert!(unbounded.len() > got.len());
        // A bound at least as long as any simple path is the same as none.
        let wide = nfa_pairs(&s, "(red|blue|green)+", Some(64));
        assert_eq!(wide, unbounded);
        // Zero hops: only the empty word can match, and `+` rejects it.
        assert!(nfa_pairs(&s, "(red|blue|green)+", Some(0)).is_empty());
        assert_eq!(nfa_pairs(&s, "red*", Some(0)).len(), 5);
    }

    #[test]
    fn unknown_labels_match_nothing() {
        let s = store();
        assert!(nfa_pairs(&s, "purple", None).is_empty());
        // ...but closures over them still produce identity pairs.
        assert_eq!(nfa_pairs(&s, "purple*", None).len(), 5);
    }

    #[test]
    fn lowering_agrees_with_nfa() {
        let s = store();
        for text in [
            "red",
            "red/red",
            "red/blue",
            "green|blue",
            "red*",
            "red+",
            "blue?",
            "(red|blue)+",
            "green/(red|blue)*",
            "(red/red)?",
            "red+/blue",
        ] {
            let mut nfa = nfa_pairs(&s, text, None);
            let mut lowered = lowered_pairs(&s, text);
            nfa.sort();
            lowered.sort();
            assert_eq!(nfa, lowered, "strategies disagree on `{text}`");
        }
    }

    #[test]
    fn parallel_roots_match_sequential() {
        let s = store();
        let path = parse_path("(red|blue)+/green?").unwrap();
        let mut seq_stats = EvalStats::new();
        let seq = eval_on_store(
            &s,
            "E",
            &path,
            None,
            1,
            &CancelToken::none(),
            &mut seq_stats,
        )
        .unwrap();
        for threads in [2usize, 4] {
            let mut par_stats = EvalStats::new();
            let par = eval_on_store(
                &s,
                "E",
                &path,
                None,
                threads,
                &CancelToken::none(),
                &mut par_stats,
            )
            .unwrap();
            assert_eq!(seq, par);
            assert_eq!(
                seq_stats.reach_edges_traversed,
                par_stats.reach_edges_traversed
            );
        }
    }

    #[test]
    fn cancelled_token_surfaces_error() {
        let s = store();
        let cancel = CancelToken::manual();
        cancel.cancel(crate::cancel::CancelReason::Shutdown);
        let mut stats = EvalStats::new();
        let err = eval_on_store(
            &s,
            "E",
            &parse_path("red*").unwrap(),
            None,
            1,
            &cancel,
            &mut stats,
        );
        assert!(err.is_err());
    }

    #[test]
    fn unknown_relation_errors() {
        let s = store();
        let mut stats = EvalStats::new();
        assert!(eval_on_store(
            &s,
            "nope",
            &parse_path("red").unwrap(),
            None,
            1,
            &CancelToken::none(),
            &mut stats
        )
        .is_err());
    }

    #[test]
    fn nfa_shape_sanity() {
        let nfa = Nfa::compile(&parse_path("a/(b|c)*").unwrap());
        assert_eq!(nfa.labels(), &["a", "b", "c"]);
        assert!(!nfa.accepts_empty());
        assert!(Nfa::compile(&parse_path("a*").unwrap()).accepts_empty());
        assert!(Nfa::compile(&parse_path("a?").unwrap()).accepts_empty());
        assert!(!Nfa::compile(&parse_path("a+").unwrap()).accepts_empty());
    }
}
